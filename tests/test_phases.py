"""Phase model construction and ordering."""

import numpy as np
import pytest

from repro.core.model import Phase
from repro.core.phases import PhaseModel, detect_phases, phases_from_labels
from repro.core.kselect import choose_k
from repro.util.errors import ValidationError


def blobs(sizes, seed=0):
    rng = np.random.default_rng(seed)
    points, labels = [], []
    for idx, size in enumerate(sizes):
        center = np.array([idx * 20.0, -idx * 20.0])
        points.append(rng.normal(center, 0.1, size=(size, 2)))
        labels.extend([idx] * size)
    return np.vstack(points), np.array(labels)


def test_detect_phases_counts_and_labels():
    points, _true = blobs([30, 20, 10])
    model = detect_phases(points, seed=0)
    assert model.n_phases == 3
    assert model.labels.shape == (60,)
    assert model.n_intervals == 60


def test_phases_ordered_by_size_desc():
    points, _true = blobs([10, 30, 20], seed=1)
    model = detect_phases(points, seed=0)
    assert model.sizes() == [30, 20, 10]
    assert model.phases[0].phase_id == 0


def test_phase_membership_consistent_with_labels():
    points, _ = blobs([15, 15], seed=2)
    model = detect_phases(points, seed=0)
    for phase in model.phases:
        for interval in phase.interval_indices:
            assert model.phase_of_interval(interval) == phase.phase_id


def test_phase_fraction():
    phase = Phase(phase_id=0, interval_indices=(0, 1, 2))
    assert phase.fraction_of(12) == pytest.approx(0.25)
    assert phase.fraction_of(0) == 0.0
    assert len(phase) == 3


def test_centroid_stored_per_phase():
    points, _ = blobs([20, 20], seed=3)
    model = detect_phases(points, seed=0)
    for phase in model.phases:
        members = points[list(phase.interval_indices)]
        assert np.allclose(phase.centroid, members.mean(axis=0), atol=0.2)


def test_empty_features_rejected():
    with pytest.raises(ValidationError):
        detect_phases(np.zeros((0, 2)))
    with pytest.raises(ValidationError):
        detect_phases(np.zeros(5))


def test_phases_from_labels_tie_broken_by_first_appearance():
    points = np.array([[0.0, 0], [0, 0], [10, 10], [10, 10]])
    selection = choose_k(points, kmax=2, seed=0)
    model = phases_from_labels(selection.best.labels, selection.best.centroids, selection)
    # Equal sizes: the cluster containing interval 0 becomes phase 0.
    assert 0 in model.phases[0].interval_indices


def test_merged_by_site_equivalence():
    points, _ = blobs([10, 10], seed=4)
    model = detect_phases(points, seed=0)
    groups = model.merged_by_site_equivalence(
        {0: frozenset({"f"}), 1: frozenset({"f"})}
    )
    assert groups == [[0, 1]]
    groups = model.merged_by_site_equivalence(
        {0: frozenset({"f"}), 1: frozenset({"g"})}
    )
    assert sorted(groups) == [[0], [1]]
