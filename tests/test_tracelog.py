"""Trace logging and Chrome trace export."""

import json

import pytest

from repro.apps import get_app
from repro.simulate.engine import Engine, SimFunction
from repro.simulate.tracelog import TraceLogger


def run_traced(body, **kwargs):
    engine = Engine()
    logger = TraceLogger(**kwargs)
    engine.add_observer(logger)
    engine.run(SimFunction("main", body))
    return engine, logger


def test_nested_begin_end_events():
    child = SimFunction("child", lambda ctx: ctx.work(0.1))

    def main(ctx):
        ctx.work(0.1)
        ctx.call(child)

    _engine, logger = run_traced(main)
    kinds = [(e.kind, e.name) for e in logger.events]
    assert kinds == [
        ("B", "main"), ("B", "child"), ("E", "child"), ("E", "main")
    ]
    assert logger.validate_nesting()


def test_batch_rendered_as_annotated_span():
    leaf = SimFunction("leaf")

    def main(ctx):
        ctx.call_batch(leaf, 42, 0.2)

    _engine, logger = run_traced(main)
    names = [e.name for e in logger.events]
    assert "leaf (x42)" in names


def test_ticks_optional():
    def main(ctx):
        ctx.work(0.1)
        ctx.loop_tick()

    _e, quiet = run_traced(main)
    assert all(e.kind != "i" for e in quiet.events)
    _e, chatty = run_traced(main, include_ticks=True)
    assert any(e.kind == "i" for e in chatty.events)


def test_event_cap():
    def main(ctx):
        for _ in range(50):
            ctx.call(SimFunction("noop", lambda c: None))

    _e, logger = run_traced(main, max_events=10)
    assert len(logger.events) == 10
    assert logger.dropped > 0


def test_chrome_trace_format(tmp_path):
    child = SimFunction("child", lambda ctx: ctx.work(0.5))
    _e, logger = run_traced(lambda ctx: ctx.call(child))
    path = logger.write_chrome_trace(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert all({"name", "ph", "ts", "pid", "tid"} <= set(e) for e in events)
    begin = next(e for e in events if e["name"] == "child" and e["ph"] == "B")
    end = next(e for e in events if e["name"] == "child" and e["ph"] == "E")
    assert end["ts"] - begin["ts"] == pytest.approx(0.5e6)


def test_real_app_trace_validates(tmp_path):
    app = get_app("miniamr")
    engine = Engine(params={"scale": 0.05})
    logger = TraceLogger()
    engine.add_observer(logger)
    engine.run(app.build_main(0.05))
    assert logger.validate_nesting()
    assert len(logger.events) > 10
