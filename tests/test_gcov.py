"""gcov-style coverage source: format, collection, pipeline adapter."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.features import FeatureConfig
from repro.core.pipeline import AnalysisConfig, analyze_intervals
from repro.gprof.gcov import (
    CoverageData,
    CoverageProfiler,
    intervals_from_coverage,
)
from repro.incprof.collector import VirtualSnapshotCollector
from repro.profiler.sampling import SamplingProfiler
from repro.simulate.engine import Engine
from repro.util.errors import FormatError, ProfileDataError
from repro.util.rng import rng_stream


def test_counter_accumulation():
    data = CoverageData()
    data.bump("f", 3)
    data.bump("f")
    data.bump("g", 0)  # no-op
    assert data.counters == {"f": 4}


def test_text_roundtrip(tmp_path):
    data = CoverageData(counters={"alpha": 12, "beta": 3}, timestamp=2.5)
    path = tmp_path / "cov.igcov"
    data.write(path)
    loaded = CoverageData.read(path)
    assert loaded.counters == data.counters
    assert loaded.timestamp == pytest.approx(2.5)


def test_parse_rejects_garbage():
    with pytest.raises(FormatError):
        CoverageData.parse("hello world")
    with pytest.raises(FormatError):
        CoverageData.parse("# igcov 1\nnot-a-count: f\n")


def test_profiler_counts_engine_calls():
    from repro.simulate.engine import SimFunction

    engine = Engine()
    profiler = CoverageProfiler()
    engine.add_observer(profiler)
    leaf = SimFunction("leaf")

    def main(ctx):
        ctx.call_batch(leaf, 250, 0.1)

    engine.run(SimFunction("main", main))
    snap = profiler.snapshot(engine.clock.now)
    assert snap.counters["leaf"] == 250
    assert snap.counters["main"] == 1


def test_intervals_from_coverage_differencing():
    snaps = []
    cum = CoverageData()
    for i, increments in enumerate([{"a": 100}, {"a": 50, "b": 50}, {"b": 100}]):
        for func, count in increments.items():
            cum.bump(func, count)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    data = intervals_from_coverage(snaps)
    assert data.functions == ["a", "b"]
    assert data.calls[0].tolist() == [100, 0]
    assert data.calls[2].tolist() == [0, 100]
    # Intensity rows are activity shares scaled to the interval.
    assert data.self_time[1].tolist() == pytest.approx([0.5, 0.5])


def test_needs_two_snapshots():
    with pytest.raises(ProfileDataError):
        intervals_from_coverage([CoverageData()])


def test_phase_detection_on_coverage_data():
    """End to end: the same pipeline runs on counter-only data (the
    paper's gcov proof of concept)."""
    app = get_app("graph500")
    engine = Engine(rank=0, rng=rng_stream(111, "graph500", "rank", 0),
                    params={"scale": 0.5})
    coverage = CoverageProfiler()
    engine.add_observer(coverage)
    # Reuse the IncProf trigger machinery for periodic coverage dumps.
    snaps = []
    engine.clock.schedule_every(
        1.0, lambda t: snaps.append(coverage.snapshot(t))
    )
    engine.run(app.build_main(0.5))
    snaps.append(coverage.snapshot(engine.clock.now))

    data = intervals_from_coverage(snaps)
    analysis = analyze_intervals(data, AnalysisConfig())
    assert analysis.n_phases >= 2
    discovered = {s.function for s in analysis.sites()}
    # Counter data sees the high-frequency functions of each phase.
    assert discovered & {"make_one_edge", "run_bfs", "validate_bfs_result",
                         "bitmap_set"}
