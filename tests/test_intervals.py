"""Interval differencing: cumulative snapshots -> interval profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intervals import (
    IntervalData,
    intervals_from_flat_profiles,
    intervals_from_snapshots,
)
from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData
from repro.util.errors import ProfileDataError


def make_snaps(series):
    """Build cumulative snapshots from per-interval (hist, arcs) specs."""
    snaps = []
    cum = GmonData()
    for i, (hist, arcs) in enumerate(series):
        for func, ticks in hist.items():
            cum.add_ticks(func, ticks)
        for arc, count in arcs.items():
            cum.add_arc(*arc, count)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    return snaps


BASIC = [
    ({"a": 100}, {("m", "a"): 1}),
    ({"a": 50, "b": 50}, {("m", "b"): 2}),
    ({"b": 100}, {}),
]


def test_differencing_recovers_increments():
    data = intervals_from_snapshots(make_snaps(BASIC))
    assert data.functions == ["a", "b"]
    assert data.self_time[0].tolist() == [1.0, 0.0]
    assert data.self_time[1].tolist() == pytest.approx([0.5, 0.5])
    assert data.self_time[2].tolist() == [0.0, 1.0]
    assert data.calls[1].tolist() == [0, 2]


def test_interval_inferred_from_timestamps():
    data = intervals_from_snapshots(make_snaps(BASIC))
    assert data.interval == pytest.approx(1.0)
    assert data.n_intervals == 3


def test_needs_two_snapshots():
    with pytest.raises(ProfileDataError):
        intervals_from_snapshots(make_snaps(BASIC)[:1])


def test_out_of_order_snapshots_rejected():
    snaps = make_snaps(BASIC)
    snaps[1].timestamp = 99.0
    with pytest.raises(ProfileDataError):
        intervals_from_snapshots(snaps)


def test_short_final_interval_dropped():
    snaps = make_snaps(BASIC)
    tail = snaps[-1].copy()
    tail.timestamp = 3.1  # 0.1s partial: below the 50% default
    snaps.append(tail)
    data = intervals_from_snapshots(snaps)
    assert data.n_intervals == 3


def test_short_final_interval_kept_when_disabled():
    snaps = make_snaps(BASIC)
    tail = snaps[-1].copy()
    tail.timestamp = 3.1
    snaps.append(tail)
    data = intervals_from_snapshots(snaps, drop_short_final=False)
    assert data.n_intervals == 4


def test_active_matrix():
    data = intervals_from_snapshots(make_snaps(BASIC))
    assert data.active().tolist() == [[True, False], [True, True], [False, True]]


def test_drop_inactive_functions():
    series = BASIC + [({}, {("m", "ghost"): 5})]  # ghost: calls only
    data = intervals_from_snapshots(make_snaps(series), drop_short_final=False)
    assert "ghost" in data.functions
    trimmed = data.drop_inactive_functions()
    assert "ghost" not in trimmed.functions
    assert trimmed.self_time.shape[1] == 2


def test_spontaneous_excluded():
    series = [({"f": 10}, {("<spontaneous>", "f"): 1})]
    data = intervals_from_snapshots(make_snaps(series + series))
    assert "<spontaneous>" not in data.functions


def test_interval_gmons_kept():
    data = intervals_from_snapshots(make_snaps(BASIC))
    assert data.interval_gmons is not None
    assert len(data.interval_gmons) == 3
    assert data.interval_gmons[0].hist == {"a": 100}


def test_function_total_seconds():
    data = intervals_from_snapshots(make_snaps(BASIC))
    assert data.function_total_seconds().tolist() == pytest.approx([1.5, 1.5])


def test_shape_validation():
    with pytest.raises(ProfileDataError):
        IntervalData(
            functions=["a"],
            self_time=np.zeros((2, 1)),
            calls=np.zeros((3, 1), dtype=np.int64),
            timestamps=np.array([1.0, 2.0]),
            interval=1.0,
        )


# ----------------------------------------------------------------------
# text-report path
# ----------------------------------------------------------------------
def test_intervals_from_flat_profiles_matches_binary_path():
    snaps = make_snaps(BASIC)
    profiles = []
    for snap in snaps:
        profile = FlatProfile.from_gmon(snap)
        profile.timestamp = snap.timestamp
        profiles.append(profile)
    text_data = intervals_from_flat_profiles(profiles, interval=1.0)
    bin_data = intervals_from_snapshots(snaps)
    assert text_data.functions == bin_data.functions
    assert np.allclose(text_data.self_time, bin_data.self_time, atol=0.01)


def test_flat_profiles_requires_two():
    with pytest.raises(ProfileDataError):
        intervals_from_flat_profiles([FlatProfile([], 0.01)])


@settings(max_examples=40, deadline=None)
@given(
    increments=st.lists(
        st.dictionaries(st.sampled_from(["f", "g", "h"]),
                        st.integers(min_value=0, max_value=200), max_size=3),
        min_size=2, max_size=10,
    )
)
def test_differencing_property(increments):
    """Interval matrices are non-negative and sum to the final cumulative."""
    snaps = make_snaps([(inc, {}) for inc in increments])
    data = intervals_from_snapshots(snaps, drop_short_final=False)
    assert (data.self_time >= 0).all()
    final = snaps[-1]
    for j, func in enumerate(data.functions):
        assert data.self_time[:, j].sum() == pytest.approx(final.self_seconds(func))


def test_matrix_differencing_matches_pairwise_reference():
    """The single aligned-matrix subtraction reproduces per-pair
    ``GmonData.subtract`` exactly, including the lazy interval gmons."""
    from repro.core.intervals import _snapshot_pairs

    rng = np.random.default_rng(13)
    names = [f"fn{i}" for i in range(12)]
    snapshots = []
    hist = {n: 0 for n in names}
    arcs = {}
    for step in range(6):
        for n in names:
            hist[n] += int(rng.integers(0, 9))
        for _ in range(8):
            a, b = rng.choice(len(names), size=2, replace=False)
            key = (names[a], names[b])
            arcs[key] = arcs.get(key, 0) + int(rng.integers(1, 5))
        snapshots.append(GmonData(
            sample_period=0.01,
            timestamp=float(step + 1),
            hist={n: t for n, t in hist.items() if t},
            arcs=dict(arcs),
        ))

    data = intervals_from_snapshots(snapshots, keep_gmons=True)
    ref_deltas = _snapshot_pairs(snapshots)

    for got, want in zip(data.interval_gmons, ref_deltas):
        assert got.hist == want.hist
        assert got.arcs == want.arcs
        assert got.timestamp == want.timestamp
        assert got.sample_period == want.sample_period
    for i, delta in enumerate(ref_deltas):
        for j, func in enumerate(data.functions):
            assert data.self_time[i, j] == pytest.approx(
                delta.hist.get(func, 0) * delta.sample_period)
            assert data.calls[i, j] == delta.calls_into(func)
