"""ASCII plots and sparklines."""

import pytest

from repro.util.asciiplot import AsciiPlot, sparkline
from repro.util.errors import ValidationError


def test_sparkline_monotone():
    assert sparkline([0, 1, 2, 3]) == "▁▃▆█"


def test_sparkline_constant():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_downsamples_to_width():
    line = sparkline(range(100), width=10)
    assert len(line) == 10


def test_sparkline_downsample_keeps_spikes():
    values = [0.0] * 50
    values[25] = 10.0
    line = sparkline(values, width=10)
    assert "█" in line


def test_plot_requires_matching_lengths():
    plot = AsciiPlot()
    with pytest.raises(ValidationError):
        plot.add_series("s", [1, 2], [1])


def test_plot_renders_legend_and_title():
    plot = AsciiPlot(title="the title", width=40, height=6)
    plot.add_series("alpha", [0, 1, 2], [0, 1, 2])
    plot.add_series("beta", [0, 1, 2], [2, 1, 0])
    text = plot.render()
    assert text.startswith("the title")
    assert "o = alpha" in text
    assert "x = beta" in text


def test_plot_empty_series_ok():
    plot = AsciiPlot()
    plot.add_series("empty", [], [])
    assert "(no data)" in plot.render()


def test_plot_no_series():
    assert "(no data)" in AsciiPlot(title="t").render()


def test_plot_dimensions():
    plot = AsciiPlot(width=30, height=5)
    plot.add_series("s", [0, 1], [0, 1])
    lines = plot.render().splitlines()
    grid_lines = [l for l in lines if "|" in l]
    assert len(grid_lines) == 5


def test_plot_single_point():
    plot = AsciiPlot(width=20, height=4)
    plot.add_series("s", [5], [7])
    assert "o" in plot.render()
