"""IncProf collectors: virtual interval snapshots and the live thread."""

import time

import pytest

from repro.incprof.collector import LiveCollector, VirtualSnapshotCollector
from repro.store.loose import LooseStore
from repro.profiler.sampling import SamplingProfiler
from repro.profiler.tracing import TracingProfiler
from repro.simulate.engine import Engine, SimFunction
from repro.simulate.overhead import CostModel
from repro.util.errors import CollectorError, ValidationError


def run_collected(duration: float, interval: float = 1.0, cost=None):
    engine = Engine(cost_model=cost or CostModel.disabled())
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    collector = VirtualSnapshotCollector(engine, profiler, interval=interval)
    engine.run(SimFunction("main", lambda ctx: ctx.work(duration)))
    return engine, collector.finalize()


def test_snapshot_per_interval():
    _engine, samples = run_collected(5.0)
    assert len(samples) == 5
    assert [s.timestamp for s in samples] == pytest.approx([1, 2, 3, 4, 5])


def test_snapshots_cumulative_and_monotone():
    _engine, samples = run_collected(4.0)
    ticks = [s.hist.get("main", 0) for s in samples]
    assert ticks == sorted(ticks)
    assert ticks[-1] == 400


def test_final_partial_snapshot_appended():
    _engine, samples = run_collected(3.6)
    assert len(samples) == 4
    assert samples[-1].timestamp == pytest.approx(3.6)


def test_no_duplicate_final_on_boundary():
    _engine, samples = run_collected(3.0)
    assert len(samples) == 3


def test_finalize_idempotent():
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    collector = VirtualSnapshotCollector(engine, profiler)
    engine.run(SimFunction("main", lambda ctx: ctx.work(2.0)))
    first = collector.finalize()
    assert collector.finalize() is first


def test_dump_cost_charged():
    cost = CostModel(per_call=0.0, sampling_fraction=0.0, per_dump=0.1,
                     per_heartbeat_event=0.0)
    engine, samples = run_collected(3.0, cost=cost)
    # 3 work seconds + dumps pushing the timeline out.
    assert engine.clock.now > 3.0
    assert engine.total_overhead > 0.0


def test_store_persists_samples(tmp_path):
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    store = LooseStore(tmp_path)
    collector = VirtualSnapshotCollector(engine, profiler, store=store)
    engine.run(SimFunction("main", lambda ctx: ctx.work(2.5)))
    samples = collector.finalize()
    loaded = [s for _, s in store.scan("0")]
    assert len(loaded) == len(samples)
    assert loaded[-1].hist == samples[-1].hist


def test_invalid_interval():
    engine = Engine()
    profiler = SamplingProfiler()
    with pytest.raises(ValidationError):
        VirtualSnapshotCollector(engine, profiler, interval=0.0)


# ----------------------------------------------------------------------
# live collector
# ----------------------------------------------------------------------
def test_live_collector_snapshots_periodically():
    profiler = TracingProfiler(sample_period=0.001)
    collector = LiveCollector(profiler, interval=0.05)
    end = time.perf_counter() + 0.3

    collector.start()
    with profiler:
        while time.perf_counter() < end:
            pass
    samples = collector.stop()
    assert len(samples) >= 3
    # Cumulative growth across snapshots.
    totals = [s.total_seconds() for s in samples]
    assert totals == sorted(totals)


def test_live_collector_stop_without_start():
    collector = LiveCollector(TracingProfiler())
    with pytest.raises(CollectorError):
        collector.stop()


def test_live_collector_double_start():
    collector = LiveCollector(TracingProfiler(), interval=0.05)
    collector.start()
    try:
        with pytest.raises(CollectorError):
            collector.start()
    finally:
        collector.stop()


def test_live_collector_context_manager():
    profiler = TracingProfiler(sample_period=0.001)
    with LiveCollector(profiler, interval=0.05) as collector:
        with profiler:
            time.sleep(0.12)
    assert len(collector.samples) >= 1
