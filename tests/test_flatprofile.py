"""Flat profile construction, gprof-style rendering and parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData
from repro.util.errors import FormatError


def sample_gmon():
    data = GmonData(sample_period=0.01)
    data.add_ticks("solve", 300)
    data.add_ticks("assemble", 100)
    data.add_arc("main", "solve", 1)
    data.add_arc("main", "assemble", 50)
    data.add_arc("main", "setup", 2)  # calls but never sampled
    return data


def test_ordered_by_self_time():
    profile = FlatProfile.from_gmon(sample_gmon())
    assert profile.function_names()[:2] == ["solve", "assemble"]


def test_self_seconds_and_calls():
    profile = FlatProfile.from_gmon(sample_gmon())
    assert profile.self_seconds("solve") == pytest.approx(3.0)
    assert profile.calls("assemble") == 50
    assert profile.calls("nonexistent") == 0


def test_pct_time_sums_to_100():
    profile = FlatProfile.from_gmon(sample_gmon())
    assert sum(e.pct_time for e in profile) == pytest.approx(100.0)


def test_cumulative_column_monotone():
    profile = FlatProfile.from_gmon(sample_gmon())
    cums = [e.cum_seconds for e in profile]
    assert cums == sorted(cums)
    assert cums[-1] == pytest.approx(profile.total_seconds())


def test_call_only_function_included_with_zero_time():
    profile = FlatProfile.from_gmon(sample_gmon())
    setup = profile.get("setup")
    assert setup is not None
    assert setup.self_seconds == 0.0
    assert setup.calls == 2


def test_sampled_only_function_has_blank_calls():
    data = GmonData()
    data.add_ticks("orphan", 10)
    entry = FlatProfile.from_gmon(data).get("orphan")
    assert entry.calls is None


def test_render_contains_gprof_header():
    text = FlatProfile.from_gmon(sample_gmon()).render()
    assert text.startswith("Flat profile:")
    assert "Each sample counts as 0.01 seconds." in text
    assert "name" in text


def test_parse_roundtrip():
    profile = FlatProfile.from_gmon(sample_gmon())
    parsed = FlatProfile.parse(profile.render())
    assert parsed.function_names() == profile.function_names()
    for entry in profile:
        back = parsed.get(entry.name)
        assert back.self_seconds == pytest.approx(entry.self_seconds, abs=0.01)
        assert back.calls == entry.calls


def test_parse_rejects_garbage():
    with pytest.raises(FormatError):
        FlatProfile.parse("not a profile at all")


def test_parse_reads_sample_period():
    profile = FlatProfile.from_gmon(sample_gmon())
    assert FlatProfile.parse(profile.render()).sample_period == pytest.approx(0.01)


def test_empty_gmon_gives_empty_profile():
    profile = FlatProfile.from_gmon(GmonData())
    assert len(profile) == 0
    # Rendering and re-parsing an empty profile is still well-formed.
    assert len(FlatProfile.parse(profile.render())) == 0


simple_names = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                                              whitelist_characters="_:"),
                       min_size=1, max_size=20)


@settings(max_examples=50, deadline=None)
@given(hist=st.dictionaries(simple_names, st.integers(min_value=1, max_value=10**6),
                            min_size=1, max_size=10))
def test_text_roundtrip_property(hist):
    """Render->parse preserves names, ordering, and 2-decimal self time."""
    data = GmonData()
    for func, ticks in hist.items():
        data.add_ticks(func, ticks)
        data.add_arc("main", func, 1)
    profile = FlatProfile.from_gmon(data)
    parsed = FlatProfile.parse(profile.render())
    assert parsed.function_names() == profile.function_names()
    for entry in profile:
        assert parsed.get(entry.name).self_seconds == pytest.approx(
            entry.self_seconds, abs=0.005
        )
