"""The tiered segment store: round trips, compaction, crash safety."""

import random
import tracemalloc

import pytest

from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.incprof.storage import SampleStore
from repro.store import layout
from repro.store.loose import LooseStore
from repro.store.segments import (
    TIER_RAW,
    TIER_SKETCH,
    TIER_VECTOR,
    SegmentStore,
    open_store,
)
from repro.util.errors import (
    CollectorError,
    SampleFileError,
    SegmentManifestError,
)


def make_series(n, funcs=24, rank=0, seed=7, with_arcs=False):
    """Cumulative snapshots with a rotating 3-phase tick pattern.

    Mimics a phased workload: each phase drives a fixed third of the
    functions at per-function rates (small noise on top), and arcs —
    when requested — accumulate along a fixed synthetic call graph,
    like the real tool's gmon dumps.
    """
    rng = random.Random(seed)
    names = [f"pkg.module_{j // 8}.func_{j:03d}" for j in range(funcs)]
    rates = [[rng.randint(8, 60) if j % 3 == p else 0
              for j in range(funcs)] for p in range(3)]
    cum = [0] * funcs
    arcs = {}
    out = []
    for i in range(n):
        phase = (i // 25) % 3
        for j in range(funcs):
            rate = rates[phase][j]
            if rate:
                cum[j] += max(0, rate + rng.randint(-2, 2))
                if with_arcs:
                    key = (names[(j + 7) % funcs], names[j])
                    arcs[key] = arcs.get(key, 0) + rate
        snap = GmonData(rank=rank, timestamp=float(i + 1))
        for j, name in enumerate(names):
            if cum[j]:
                snap.add_ticks(name, cum[j])
        for (caller, callee), count in arcs.items():
            snap.add_arc(caller, callee, count)
        out.append(snap)
    return out


def canonical(snap):
    """The parsed form of a snapshot (sorted hist, exactly as stored)."""
    return loads_gmon(dumps_gmon(snap))


def assert_same_snapshot(got, want):
    want = canonical(want)
    assert got.hist == want.hist
    assert got.timestamp == want.timestamp
    assert got.sample_period == want.sample_period
    assert got.rank == want.rank


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_append_scan_round_trip_across_reopen(tmp_path):
    series = make_series(40)
    with SegmentStore(tmp_path, segment_intervals=16) as store:
        for i, snap in enumerate(series):
            store.append("0", i, snap)
    store = SegmentStore(tmp_path)
    assert store.streams() == ["0"]
    got = list(store.scan("0"))
    assert [i for i, _ in got] == list(range(40))
    for (_i, snap), want in zip(got, series):
        assert_same_snapshot(snap, want)


def test_scan_since_watermark(tmp_path):
    with SegmentStore(tmp_path, segment_intervals=8) as store:
        for i, snap in enumerate(make_series(20)):
            store.append("0", i, snap)
        assert [i for i, _ in store.scan("0", since=14)] == [15, 16, 17, 18, 19]


def test_appends_must_be_monotone(tmp_path):
    store = SegmentStore(tmp_path)
    series = make_series(3)
    store.append("0", 0, series[0])
    store.append("0", 5, series[1])  # gaps are fine
    with pytest.raises(CollectorError):
        store.append("0", 5, series[2])
    with pytest.raises(CollectorError):
        store.append("0", 2, series[2])


def test_window_selects_by_timestamp(tmp_path):
    with SegmentStore(tmp_path, segment_intervals=8) as store:
        for i, snap in enumerate(make_series(30)):
            store.append("0", i, snap)
        got = [snap.timestamp for _i, snap in store.window("0", 10.0, 20.0)]
    assert got == [float(t) for t in range(10, 20)]


# ----------------------------------------------------------------------
# tiers + compaction
# ----------------------------------------------------------------------
def test_vector_tier_preserves_classification_fields(tmp_path):
    series = make_series(64)
    store = SegmentStore(tmp_path, segment_intervals=16)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()
    report = store.compact("0", raw_keep=0)
    assert report["segments_compacted"] >= 3
    tiers = store.describe()["tiers"]
    assert tiers[str(TIER_VECTOR)]["segments"] >= 3
    # hist/period/timestamps survive downsampling exactly (arcs are the
    # only thing the vector tier drops, and classification never reads
    # them) — so the phase timeline is untouched.
    for (_i, snap), want in zip(store.scan("0"), series):
        assert_same_snapshot(snap, want)


def test_compaction_reduces_disk_bytes_3x_on_10k_intervals(tmp_path):
    """The acceptance criterion: raw -> vector compaction wins >= 3x.

    The win comes from two designed-in properties: arcs (which phase
    classification never reads) are dropped, and the cumulative tick
    matrix is row-delta encoded before deflate.
    """
    store = SegmentStore(tmp_path, segment_intervals=512)
    for i, snap in enumerate(make_series(10_000, funcs=64, with_arcs=True)):
        store.append("0", i, snap)
    store.flush()
    report = store.compact("0", raw_keep=0)
    assert report["segments_compacted"] >= 19
    assert report["bytes_before"] >= 3 * report["bytes_after"]
    # Every interval is still scannable after the migration.
    count = sum(1 for _ in store.scan("0"))
    assert count == 10_000


def test_sketch_tier_is_summary_only(tmp_path):
    series = make_series(60)
    store = SegmentStore(tmp_path, segment_intervals=16)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()
    store.compact("0", raw_keep=0)           # raw -> vector
    store.compact("0", raw_keep=0, vector_keep=0)  # vector -> sketch
    tiers = store.describe()["tiers"]
    assert tiers[str(TIER_SKETCH)]["segments"] >= 1
    # Sketch-covered history cannot be re-driven interval by interval:
    # scanning it is an honest error, not silently empty output.
    with pytest.raises(CollectorError):
        list(store.scan("0"))
    sketches = store.sketches("0")
    assert sketches and all(s["centroids"].shape[0] >= 1 for s in sketches)
    # The newest (still-replayable) region is advertised.
    after = store.replayable_after("0")
    assert after is not None and after > series[0].timestamp


def test_window_replay_works_past_sketch_history(tmp_path):
    series = make_series(80)
    store = SegmentStore(tmp_path, segment_intervals=16)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()
    store.compact("0", raw_keep=0)
    store.compact("0", raw_keep=0, vector_keep=30)
    after = store.replayable_after("0")
    got = [snap.timestamp for _i, snap in store.window("0", after, None)]
    assert got and got[0] == after


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------
def test_crash_before_manifest_commit_keeps_old_segments(tmp_path):
    """A compaction that dies after writing the new segment but before
    the manifest commit leaves the *old* set authoritative; the orphan
    new file is reaped on the next open and nothing is torn."""
    series = make_series(48)
    store = SegmentStore(tmp_path, segment_intervals=16)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()

    real = store._write_manifest
    def exploding_manifest():
        raise OSError("simulated crash before manifest commit")
    store._write_manifest = exploding_manifest
    with pytest.raises(OSError):
        store.compact("0", raw_keep=0)
    store._write_manifest = real

    reopened = SegmentStore(tmp_path)
    tiers = reopened.describe()["tiers"]
    assert tiers[str(TIER_RAW)]["intervals"] == 48  # old set won
    got = list(reopened.scan("0"))
    assert len(got) == 48
    for (_i, snap), want in zip(got, series):
        assert_same_snapshot(snap, want)
    # No stray files beyond what the manifest references.
    on_disk = {f"{d.name}/{p.name}"
               for d in reopened.segments_dir.iterdir() if d.is_dir()
               for p in d.iterdir()}
    referenced = {seg.name for segs in reopened._streams.values()
                  for seg in segs}
    assert on_disk == referenced


def test_crash_after_manifest_commit_keeps_new_segments(tmp_path):
    """The mirror crash — manifest committed, old file never unlinked —
    resolves the other way: the new set is authoritative and the stale
    old file is reaped on open."""
    series = make_series(48)
    store = SegmentStore(tmp_path, segment_intervals=16)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()
    old_files = {p: p.read_bytes()
                 for d in store.segments_dir.iterdir() if d.is_dir()
                 for p in d.iterdir()}
    store.compact("0", raw_keep=0)
    # Resurrect the unlinked raw segments: exactly the post-crash state.
    for path, blob in old_files.items():
        if not path.exists():
            path.write_bytes(blob)

    reopened = SegmentStore(tmp_path)
    tiers = reopened.describe()["tiers"]
    assert tiers[str(TIER_VECTOR)]["intervals"] >= 32  # new set won
    got = list(reopened.scan("0"))
    assert len(got) == 48
    for (_i, snap), want in zip(got, series):
        assert_same_snapshot(snap, want)
    stale = [p for p in old_files if p.exists()
             and layout.parse_segment(p.name)
             and f"{p.parent.name}/{p.name}" not in
             {s.name for segs in reopened._streams.values() for s in segs}]
    assert stale == []  # orphans reaped


def test_torn_manifest_raises_typed_error(tmp_path):
    store = SegmentStore(tmp_path, segment_intervals=4)
    for i, snap in enumerate(make_series(8)):
        store.append("0", i, snap)
    store.flush()
    blob = store.manifest_path.read_bytes()
    store.manifest_path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SegmentManifestError):
        SegmentStore(tmp_path)


def test_corrupt_segment_fails_checksum(tmp_path):
    store = SegmentStore(tmp_path, segment_intervals=4)
    for i, snap in enumerate(make_series(8)):
        store.append("0", i, snap)
    store.flush()
    seg = store._streams["0"][0]
    path = store._segment_path(seg.name)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SampleFileError):
        list(SegmentStore(tmp_path).scan("0"))


def test_interrupted_append_flush_leaves_no_tmp_residue(tmp_path):
    store = SegmentStore(tmp_path, segment_intervals=4)
    for i, snap in enumerate(make_series(10)):
        store.append("0", i, snap)
    store.close()
    stray = [p for p in tmp_path.rglob("*") if layout.is_tmp_name(p.name)]
    assert stray == []


# ----------------------------------------------------------------------
# backend auto-detection + legacy interop
# ----------------------------------------------------------------------
def test_open_store_detects_each_layout(tmp_path):
    loose_dir = tmp_path / "loose"
    seg_dir = tmp_path / "segments"
    LooseStore(loose_dir).append("0", 0, make_series(1)[0])
    with SegmentStore(seg_dir) as seg:
        seg.append("0", 0, make_series(1)[0])
    assert isinstance(open_store(loose_dir), LooseStore)
    assert isinstance(open_store(seg_dir), SegmentStore)
    fresh = open_store(tmp_path / "new", create=True)
    assert isinstance(fresh, SegmentStore)
    with pytest.raises(CollectorError):
        open_store(tmp_path / "missing")


def test_legacy_loose_store_reads_through_unified_scan(tmp_path):
    """Old on-disk sample dirs keep loading through the deprecated shim
    and through the new interface alike."""
    series = make_series(6)
    legacy = SampleStore(tmp_path)
    for i, snap in enumerate(series):
        legacy.save(snap, i)
    store = open_store(tmp_path)
    assert store.streams() == ["0"]
    for (_i, snap), want in zip(store.scan("0"), series):
        assert_same_snapshot(snap, want)
    with pytest.warns(DeprecationWarning):
        loaded = legacy.load_rank(0)
    assert len(loaded) == 6


# ----------------------------------------------------------------------
# lazy load_all memory regression
# ----------------------------------------------------------------------
def test_load_all_is_lazy_and_caps_peak_memory(tmp_path):
    """load_all() must stream: consuming rank-by-rank, one snapshot at a
    time, must peak far below materializing the whole store."""
    store = SampleStore(tmp_path)
    series = make_series(300, funcs=80)
    for i, snap in enumerate(series):
        store.save(snap, i)

    with pytest.warns(DeprecationWarning):
        lazy = store.load_all()
    assert not isinstance(lazy[0], list)  # an iterator, not a load

    tracemalloc.start()
    count = 0
    for samples in lazy.values():
        for snap in samples:
            count += 1  # consume and drop — no refs kept
    _size, lazy_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == 300

    tracemalloc.start()
    with pytest.warns(DeprecationWarning):
        eager = {rank: list(samples)
                 for rank, samples in store.load_all().items()}
    _size, eager_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert sum(len(v) for v in eager.values()) == 300

    assert lazy_peak < eager_peak / 3
