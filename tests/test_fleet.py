"""The fleet subsystem: ring, routing protocol, merging, and the
router/worker dance — everything that can run in one process.

The subprocess chaos path (SIGKILL a real worker under a real
supervisor) lives in ``test_chaos.py``; here every server is in-process
so the routing, ownership, adoption, and merge logic is exercised
deterministically and fast.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.fleet import HashRing, FleetRouter, RouterConfig
from repro.fleet.ring import _point
from repro.service import (
    Endpoint,
    PhaseClient,
    PhaseMonitorServer,
    RetryPolicy,
    ServerConfig,
    SyntheticLoadGenerator,
    publish_samples,
)
from repro.service.checkpoint import FleetManifest, worker_checkpoint_dir
from repro.service.metrics import (
    ServiceMetrics,
    aggregate_worker_stats,
    merged_latency_percentiles,
)
from repro.service.protocol import (
    ROUTE_REDIRECT,
    ROUTE_UNAVAILABLE,
    ROUTE_WRONG_WORKER,
    Reply,
    redirect_reply,
    routing_directive,
    worker_unavailable_reply,
    wrong_worker_reply,
)
from repro.service.registry import StreamRegistry, StreamState
from repro.util.errors import ServiceError, ValidationError

from repro.api import AnalysisConfig, OnlinePhaseTracker, analyze_snapshots

FAST_RETRY = RetryPolicy(base_delay=0.01, max_delay=0.1, request_timeout=5.0)


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        members = ["w0", "w1", "w2"]
        a = HashRing(members)
        b = HashRing(reversed(members))  # insertion order must not matter
        for i in range(200):
            sid = f"stream-{i}"
            assert a.lookup(sid) == b.lookup(sid)

    def test_wire_roundtrip_preserves_every_lookup(self):
        ring = HashRing(["w0", "w1", "w2"], virtual_nodes=32, generation=7)
        clone = HashRing.from_obj(ring.to_obj())
        assert clone.generation == 7
        assert clone.members() == ring.members()
        for i in range(100):
            assert clone.lookup(f"s{i}") == ring.lookup(f"s{i}")

    def test_removal_only_moves_the_dead_workers_streams(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        streams = [f"load-{i}" for i in range(400)]
        before = ring.assignments(streams)
        ring.remove_worker("w2")
        after = ring.assignments(streams)
        for sid in streams:
            if before[sid] != "w2":
                assert after[sid] == before[sid], (
                    f"{sid} moved {before[sid]} -> {after[sid]} although "
                    "its owner survived")
            else:
                assert after[sid] != "w2"

    def test_virtual_nodes_spread_the_load(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        load = ring.load([f"s{i}" for i in range(4000)])
        assert sum(load.values()) == 4000
        # 64 virtual nodes per worker keeps the imbalance modest.
        assert min(load.values()) > 0.4 * 1000
        assert max(load.values()) < 2.0 * 1000

    def test_generation_bumps_on_every_membership_change(self):
        ring = HashRing()
        assert ring.add_worker("w0") == 1
        assert ring.add_worker("w1") == 2
        assert ring.remove_worker("w0") == 3
        assert ring.generation == 3

    def test_membership_errors_are_typed(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValidationError):
            ring.add_worker("w0")
        with pytest.raises(ValidationError):
            ring.remove_worker("ghost")
        with pytest.raises(ValidationError):
            HashRing(virtual_nodes=0)
        with pytest.raises(ValidationError):
            HashRing([""])

    def test_empty_ring_lookup(self):
        ring = HashRing()
        assert ring.lookup_or_none("s") is None
        with pytest.raises(ValidationError):
            ring.lookup("s")

    def test_point_is_stable(self):
        # PYTHONHASHSEED-independent: the routing table must agree across
        # the router, supervisor, and every worker process.
        assert _point("w0#0") == _point("w0#0")
        assert _point("w0#0") != _point("w0#1")

    def test_from_obj_rejects_garbage(self):
        with pytest.raises(ValidationError):
            HashRing.from_obj({"virtual_nodes": 8})  # no members


# ----------------------------------------------------------------------
# routing replies: the "not processed, resend elsewhere" contract
# ----------------------------------------------------------------------
class TestRoutingReplies:
    def test_redirect_reply_carries_the_owner_address(self):
        reply = redirect_reply(Endpoint.tcp("127.0.0.1", 9000), "w1", 3)
        assert not reply.ok
        directive = routing_directive(reply)
        assert directive is not None
        assert directive.code == ROUTE_REDIRECT
        assert directive.worker_id == "w1"
        assert directive.ring_generation == 3
        assert directive.endpoint == Endpoint.tcp("127.0.0.1", 9000)

    def test_wrong_worker_names_the_real_owner(self):
        reply = wrong_worker_reply("w2", "w0", 5)
        directive = routing_directive(reply)
        assert directive.code == ROUTE_WRONG_WORKER
        assert directive.worker_id == "w2"  # the owner, not the refuser
        assert directive.endpoint is None

    def test_worker_unavailable_is_a_routing_reply(self):
        directive = routing_directive(worker_unavailable_reply("w1", "died"))
        assert directive.code == ROUTE_UNAVAILABLE

    def test_non_routing_replies_parse_to_none(self):
        assert routing_directive(Reply(ok=True)) is None
        assert routing_directive(
            Reply(ok=False, error="x", data={"code": "unknown-stream"})) is None

    def test_malformed_redirect_endpoint_drops_the_address(self):
        # The routing code still holds (not processed, resend), but an
        # unparseable address must not be dialed — the client falls back
        # to its home endpoint instead.
        reply = Reply(ok=False, error="go away",
                      data={"code": ROUTE_REDIRECT, "endpoint": ":::bad:::"})
        directive = routing_directive(reply)
        assert directive.code == ROUTE_REDIRECT
        assert directive.endpoint is None


# ----------------------------------------------------------------------
# latency merging: exact vs upper bound, and the labels telling them apart
# ----------------------------------------------------------------------
class TestStatsMerging:
    def test_single_daemon_percentiles_are_labelled_exact(self):
        metrics = ServiceMetrics()
        for v in (0.001, 0.002, 0.003):
            metrics.classify_latency.record(v)
        snap = metrics.snapshot()
        assert snap["classify_latency_source"]["kind"] == "exact"

    def test_merged_window_percentiles_are_exact_over_the_union(self):
        w0 = [0.001] * 90 + [0.100] * 10   # one slow worker
        w1 = [0.001] * 100                  # one fast worker
        merged = aggregate_worker_stats({
            "w0": {"latency_window": w0, "classify_latency": {}},
            "w1": {"latency_window": w1, "classify_latency": {}},
        })
        assert merged["classify_latency_source"]["kind"] == "merged-window"
        assert merged["classify_latency_source"]["workers"] == 2
        assert merged["classify_latency_source"]["samples"] == 200
        expected = merged_latency_percentiles([w0, w1])
        assert merged["classify_latency"] == expected
        # ... and exactness matters: max-of-p99s would claim 0.1 for the
        # fleet p90, while the true union p90 is still the fast path.
        union = np.array(w0 + w1)
        assert merged["classify_latency"]["p90"] == pytest.approx(
            float(np.quantile(union, 0.9)))

    def test_missing_window_falls_back_to_labelled_upper_bound(self):
        merged = aggregate_worker_stats({
            "w0": {"latency_window": [0.001],
                   "classify_latency": {"p99": 0.002}},
            "w1": {"classify_latency": {"p99": 0.050}},  # no raw window
        })
        assert (merged["classify_latency_source"]["kind"]
                == "merged-upper-bound")
        assert merged["classify_latency"]["p99"] == 0.050  # max per key

    def test_counters_sum_and_per_worker_section_survives(self):
        merged = aggregate_worker_stats({
            "w0": {"processed": 10, "streams": 2, "latency_window": []},
            "w1": {"processed": 32, "streams": 1, "latency_window": []},
        })
        assert merged["processed"] == 42
        assert merged["streams"] == 3
        assert merged["n_workers"] == 2
        assert set(merged["per_worker"]) == {"w0", "w1"}


# ----------------------------------------------------------------------
# bounded finished-stream history (and its visibility)
# ----------------------------------------------------------------------
class TestFinishedHistoryBound:
    def _registry(self, cap):
        return StreamRegistry(idle_timeout=30.0, finished_capacity=cap)

    def test_drop_oldest_beyond_cap_is_counted(self):
        registry = self._registry(cap=3)
        for i in range(5):
            registry.register(f"s{i}")
            registry.close(f"s{i}")
        rows = registry.finished_rows()
        assert [r["stream_id"] for r in rows] == ["s2", "s3", "s4"]
        assert registry.finished_evicted == 2

    def test_expired_streams_count_against_the_same_cap(self):
        registry = StreamRegistry(idle_timeout=0.001, finished_capacity=2)
        for i in range(4):
            registry.register(f"e{i}")
        time.sleep(0.01)
        expired = registry.expire_idle()
        assert len(expired) == 4
        assert len(registry.finished_rows()) == 2
        assert registry.finished_evicted == 2

    def test_restore_under_a_smaller_cap_drops_oldest_and_counts(self):
        registry = self._registry(cap=2)
        rows = [{"stream_id": f"old{i}"} for i in range(5)]
        registry.restore_finished(rows, registered=5, expired=0,
                                  finished_evicted=7)
        kept = [r["stream_id"] for r in registry.finished_rows()]
        assert kept == ["old3", "old4"]
        assert registry.finished_evicted == 7 + 3

    def test_capacity_is_validated(self):
        with pytest.raises(ValidationError):
            StreamRegistry(finished_capacity=0)


class TestExpireRaces:
    def test_expire_idle_racing_touch_never_corrupts(self):
        """Concurrent expiry + touch must neither crash nor leave a
        stream both active and finished."""
        registry = StreamRegistry(idle_timeout=0.005, finished_capacity=256)
        stop = threading.Event()
        errors = []

        def toucher():
            i = 0
            while not stop.is_set():
                sid = f"t{i % 8}"
                try:
                    registry.register(sid)
                except ServiceError:
                    pass
                try:
                    registry.touch(sid)
                except ServiceError:
                    pass  # expired between register and touch: fine
                except Exception as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)
                i += 1

        def expirer():
            while not stop.is_set():
                try:
                    registry.expire_idle(now=registry._clock() + 1.0)
                except Exception as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)

        threads = [threading.Thread(target=toucher) for _ in range(2)]
        threads.append(threading.Thread(target=expirer))
        for t in threads:
            t.start()
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert not errors
        active = {s.stream_id for s in registry.active()}
        for state in registry.active():
            assert not state.closed
        assert registry.expired == len(
            [r for r in registry.finished_rows()]) + registry.finished_evicted
        assert len(active) <= 8

    def test_adopt_racing_expiry_keeps_the_adopted_stream_fresh(self):
        registry = StreamRegistry(idle_timeout=0.01, finished_capacity=16)
        stop = threading.Event()
        errors = []

        def adopter():
            while not stop.is_set():
                state = StreamState("migrant", "app", 0, now=0.0)
                try:
                    registry.adopt(state)
                except Exception as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)

        thread = threading.Thread(target=adopter)
        thread.start()
        for _ in range(200):
            registry.expire_idle()
        stop.set()
        thread.join(timeout=5.0)
        assert not errors
        # adopt() stamps the clock, so the last adoption is never stale
        state = registry.get_or_none("migrant")
        if state is not None:
            assert not state.closed


# ----------------------------------------------------------------------
# fleet manifest + per-worker checkpoint layout
# ----------------------------------------------------------------------
class TestFleetDurableState:
    def test_worker_checkpoint_dirs_are_disjoint(self, tmp_path):
        a = worker_checkpoint_dir(tmp_path, "w0")
        b = worker_checkpoint_dir(tmp_path, "w1")
        assert a != b and a.parent == b.parent == tmp_path

    def test_worker_id_must_be_path_safe(self, tmp_path):
        for bad in ("", "..", "a/b"):
            with pytest.raises(ValidationError):
                worker_checkpoint_dir(tmp_path, bad)

    def test_manifest_roundtrip(self, tmp_path):
        manifest = FleetManifest(tmp_path)
        assert manifest.load() is None
        ring = HashRing(["w0", "w1"])
        manifest.write(ring.to_obj(), {"w0": {"endpoint": "unix:/x"}})
        loaded = manifest.load()
        assert loaded["ring"]["members"] == ["w0", "w1"]
        assert loaded["workers"]["w0"]["endpoint"] == "unix:/x"

    def test_corrupt_manifest_raises_typed(self, tmp_path):
        from repro.util.errors import CheckpointError

        manifest = FleetManifest(tmp_path)
        manifest.path.write_text("{not json")
        with pytest.raises(CheckpointError):
            manifest.load()


# ----------------------------------------------------------------------
# in-process fleet: real workers + real router, no subprocesses
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained():
    gen = SyntheticLoadGenerator()
    analysis = analyze_snapshots(gen.stream(0, 24),
                                 AnalysisConfig(kmax=4,
                                                drop_short_final=False))
    return gen, OnlinePhaseTracker.from_analysis(analysis)


def worker_config(worker_id: str, **overrides) -> ServerConfig:
    defaults = dict(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=2,
                    queue_capacity=64, policy="block",
                    housekeeping_interval=0.05, worker_id=worker_id)
    defaults.update(overrides)
    return ServerConfig(**defaults)


def owned_stream(ring: HashRing, worker_id: str, prefix: str = "s") -> str:
    for i in range(10_000):
        sid = f"{prefix}{i}"
        if ring.lookup(sid) == worker_id:
            return sid
    raise AssertionError(f"no stream hashes to {worker_id}")


class FakeHandle:
    def __init__(self, worker_id, server):
        self.worker_id = worker_id
        self.server = server
        self.evicted = False

    @property
    def endpoint(self):
        return self.server.endpoint


class FakeSupervisor:
    """Duck-typed supervisor over in-process servers (no subprocesses)."""

    def __init__(self, servers, ring, policy="block"):
        self.ring = ring
        self.handles = {wid: FakeHandle(wid, s) for wid, s in servers.items()}
        self.config = SimpleNamespace(policy=policy)
        self.failures = []

    def endpoint_of(self, worker_id):
        handle = self.handles.get(worker_id)
        if handle is None or handle.evicted:
            raise ServiceError(f"no live worker {worker_id!r}")
        return handle.endpoint

    def live_workers(self):
        return [h for h in self.handles.values() if not h.evicted]

    def handle_failure(self, worker_id):
        self.failures.append(worker_id)
        return "noted"

    def status(self):
        return {"generation": self.ring.generation,
                "members": self.ring.members(), "workers": {},
                "restarts_total": 0, "evictions_total": 0,
                "migrations_total": 0}

    def stop(self):
        pass


@pytest.mark.socket
class TestWorkerFleetMode:
    def test_single_daemon_replies_carry_no_fleet_fields(self, trained):
        _, template = trained
        with PhaseMonitorServer(template, worker_config("")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY) as client:
                reply = client.hello("solo")
                assert "worker_id" not in reply.data
                assert "ring_generation" not in reply.data
                assert "worker_id" not in client.ping().data

    def test_ring_update_installs_and_refuses_stale(self, trained):
        _, template = trained
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                new = HashRing(["w0", "w1"], generation=5)
                reply = client.control("ring-update", ring=new.to_obj())
                assert reply.ok and reply.data["generation"] == 5
                assert reply.data["worker_id"] == "w0"
                stale = HashRing(["w0"], generation=3)
                reply = client.control("ring-update", ring=stale.to_obj())
                assert not reply.ok and "stale" in reply.error

    def test_worker_refuses_streams_the_ring_assigns_away(self, trained):
        gen, template = trained
        ring = HashRing(["w0", "w1"], generation=1)
        mine = owned_stream(ring, "w0")
        theirs = owned_stream(ring, "w1")
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY, check=False,
                             follow_routing=False) as client:
                assert client.control("ring-update", ring=ring.to_obj()).ok
                assert client.hello(mine).ok
                denial = client.hello(theirs)
                assert not denial.ok
                directive = routing_directive(denial)
                assert directive.code == ROUTE_WRONG_WORKER
                assert directive.worker_id == "w1"
                # snapshots for unowned streams refuse identically
                sample = gen.stream(1, 1)[0]
                refused = client.snapshot(theirs, 0, sample)
                assert routing_directive(refused).code == ROUTE_WRONG_WORKER
            assert server.metrics.snapshot()["wrong_worker"] >= 2

    def test_ring_update_reports_misplaced_streams(self, trained):
        _, template = trained
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                solo = HashRing(["w0"], generation=1)
                client.control("ring-update", ring=solo.to_obj())
                sid = owned_stream(HashRing(["w0", "w1"]), "w1")
                assert client.hello(sid).ok  # owned while alone
                grown = HashRing(["w0", "w1"], generation=2)
                reply = client.control("ring-update", ring=grown.to_obj())
                assert reply.ok and sid in reply.data["misplaced"]

    def test_adopt_stream_installs_state_and_resume_anchor(self, trained):
        gen, template = trained
        obj = {"stream_id": "orphan", "app": "x", "rank": 3,
               "last_seq": 9, "processed_seq": 9, "enqueued": 10,
               "processed": 10, "novel": 1}
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                reply = client.control("adopt-stream", stream=obj)
                assert reply.ok and reply.data["adopted"] is True
                assert reply.data["resume_from"] == 10
                # the publisher resumes exactly past the adopted anchor
                hello = client.hello("orphan", resume=True)
                assert hello.data["resumed"] is True
                assert hello.data["resume_from"] == 10
                sample = gen.stream(2, 11)[10]
                assert client.snapshot("orphan", 10, sample).ok

    def test_adoption_never_rolls_back_live_state(self, trained):
        gen, template = trained
        samples = gen.stream(3, 5)
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                client.hello("racer")
                for i, sample in enumerate(samples):
                    client.snapshot("racer", i, sample)
                # Acks mean *admitted*, not classified — wait for the
                # worker to drain so the live state is genuinely newer
                # than the stale record (the scenario under test).
                deadline = time.monotonic() + 10.0
                state = server.registry.get("racer")
                while (state.processed_seq < len(samples) - 1
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                stale = {"stream_id": "racer", "last_seq": 1,
                         "processed_seq": 1, "processed": 2}
                reply = client.control("adopt-stream", stream=stale)
                assert reply.ok and reply.data["adopted"] is False
                assert reply.data["reason"] == "live-state-newer"
                assert reply.data["resume_from"] == len(samples)

    def test_adopt_stream_rejects_garbage(self, trained):
        _, template = trained
        with PhaseMonitorServer(template, worker_config("w0")) as server:
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                assert not client.control("adopt-stream").ok
                bad = client.control("adopt-stream",
                                     stream={"stream_id": "x",
                                             "last_seq": "NaN?"})
                assert not bad.ok


@pytest.mark.socket
class TestFleetRouterInProcess:
    @pytest.fixture()
    def fleet(self, trained):
        """Two in-process fleet-mode workers with the ring installed."""
        _, template = trained
        ring = HashRing(["w0", "w1"], generation=1)
        servers = {}
        clients = []
        for wid in ("w0", "w1"):
            server = PhaseMonitorServer(template, worker_config(wid))
            server.start()
            servers[wid] = server
            client = PhaseClient(server.endpoint, retry=FAST_RETRY,
                                 check=False)
            assert client.control("ring-update", ring=ring.to_obj()).ok
            clients.append(client)
        supervisor = FakeSupervisor(servers, ring)
        yield servers, ring, supervisor
        for client in clients:
            client.close()
        for server in servers.values():
            server.stop()

    def test_proxy_mode_routes_each_stream_to_its_ring_owner(self, trained,
                                                             fleet):
        gen, _ = trained
        servers, ring, supervisor = fleet
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="proxy",
                                      log_level="error")) as router:
            load = gen.run(router.endpoint, 4, 12, retry=FAST_RETRY)
            assert load.sent == 48 and load.processed == 48
            assert all(r.drained and not r.error
                       for r in load.streams.values())
            # every stream landed on the worker the ring names
            for sid in load.streams:
                owner = ring.lookup(sid)
                other = "w1" if owner == "w0" else "w0"
                owner_rows = servers[owner].registry.fleet_status()
                other_rows = servers[other].registry.fleet_status()
                finished_on = [r["stream_id"] for r in owner_rows["finished"]]
                assert sid in finished_on
                assert sid not in [r["stream_id"]
                                   for r in other_rows["finished"]]
            assert router.routed > 0

    def test_router_merges_stats_exactly_and_labels_them(self, trained,
                                                         fleet):
        gen, _ = trained
        _, _, supervisor = fleet
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      log_level="error")) as router:
            gen.run(router.endpoint, 4, 10, retry=FAST_RETRY)
            with PhaseClient(router.endpoint, retry=FAST_RETRY) as viewer:
                stats = viewer.stats().data
                status = viewer.fleet_status().data
                metrics_text = viewer.metrics()
        assert stats["processed"] == 40
        assert stats["n_workers"] == 2
        assert stats["classify_latency_source"]["kind"] == "merged-window"
        assert stats["role"] == "router"
        assert status["service"]["processed"] == 40
        assert {row["worker_id"] for row in status["finished"]} == {"w0", "w1"}
        assert "incprofd_processed_total 40" in metrics_text

    def test_redirect_mode_hands_the_client_to_the_owner(self, trained,
                                                         fleet):
        gen, _ = trained
        servers, ring, supervisor = fleet
        sid = owned_stream(ring, "w1", prefix="redir-")
        samples = gen.stream(11, 8)
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="redirect",
                                      log_level="error")) as router:
            client = PhaseClient(router.endpoint, retry=FAST_RETRY)
            reply = client.hello(sid)
            assert reply.ok
            assert client.redirects >= 1
            assert client.endpoint == servers["w1"].endpoint  # now direct
            assert client.home == router.endpoint
            for i, sample in enumerate(samples):
                assert client.snapshot(sid, i, sample).ok
            assert client.bye(sid).ok
            client.close()

    def test_rebalance_mid_stream_rehomes_through_the_router(self, trained,
                                                             fleet):
        """Satellite: the owner changes between requests — the direct
        worker refuses (wrong-worker), the client re-resolves via its
        home endpoint and lands on the new owner, without losing the
        request."""
        gen, _ = trained
        servers, ring, supervisor = fleet
        sid = owned_stream(ring, "w0", prefix="move-")
        samples = gen.stream(12, 6)
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="redirect",
                                      log_level="error")) as router:
            client = PhaseClient(router.endpoint, retry=FAST_RETRY)
            assert client.hello(sid, resume=True).ok
            assert client.endpoint == servers["w0"].endpoint
            client.snapshot(sid, 0, samples[0])

            # w0 leaves the fleet: the shared ring rebalances and the
            # survivors learn the new membership.
            ring.remove_worker("w0")
            supervisor.handles["w0"].evicted = True
            for wid in ("w0", "w1"):
                with PhaseClient(servers[wid].endpoint, retry=FAST_RETRY,
                                 check=False) as push:
                    push.control("ring-update", ring=ring.to_obj())

            # The next request hits w0 directly, is refused with
            # wrong-worker, rehomes through the router, and the resume
            # handshake lands the stream on w1.
            reply = client.hello(sid, resume=True)
            assert reply.ok
            assert reply.data["worker_id"] == "w1"
            assert client.endpoint == servers["w1"].endpoint
            assert client.redirects >= 2  # wrong-worker hop + new redirect
            start = int(reply.data["resume_from"])
            for i in range(start, len(samples)):
                assert client.snapshot(sid, i, samples[i]).ok
            bye = client.bye(sid)
            assert bye.ok and bye.data["worker_id"] == "w1"
            client.close()

    def test_forward_failure_reports_to_the_supervisor(self, trained, fleet):
        gen, _ = trained
        servers, ring, supervisor = fleet
        sid = owned_stream(ring, "w1", prefix="dead-")
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="proxy",
                                      log_level="error")) as router:
            servers["w1"].stop()  # the owner dies; router must not hang
            with PhaseClient(router.endpoint, retry=FAST_RETRY, check=False,
                             follow_routing=False) as client:
                reply = client.hello(sid)
            assert not reply.ok
            assert routing_directive(reply).code == ROUTE_UNAVAILABLE
            assert router.forward_failures >= 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and "w1" not in supervisor.failures:
            time.sleep(0.01)
        assert "w1" in supervisor.failures

    def test_router_rejects_worker_controls(self, trained, fleet):
        _, _, supervisor = fleet
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      log_level="error")) as router:
            with PhaseClient(router.endpoint, retry=FAST_RETRY,
                             check=False) as client:
                ping = client.ping()
                assert ping.data["role"] == "router"
                assert not client.control("ring-update", ring={}).ok
                assert not client.control("adopt-stream", stream={}).ok

    def test_empty_ring_answers_worker_unavailable(self, trained):
        _, template = trained
        supervisor = FakeSupervisor({}, HashRing())
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      log_level="error")) as router:
            with PhaseClient(router.endpoint, retry=FAST_RETRY, check=False,
                             follow_routing=False) as client:
                reply = client.hello("nobody")
            assert routing_directive(reply).code == ROUTE_UNAVAILABLE


@pytest.mark.socket
class TestPublishThroughFleet:
    def test_publish_samples_survives_a_mid_stream_rebalance(self, trained):
        """End-to-end: a stream's worker leaves mid-replay; the stalls
        path re-resolves and the replay finishes on the new owner."""
        gen, template = trained
        ring = HashRing(["w0", "w1"], generation=1)
        servers = {}
        for wid in ("w0", "w1"):
            server = PhaseMonitorServer(template, worker_config(wid))
            server.start()
            servers[wid] = server
            with PhaseClient(server.endpoint, retry=FAST_RETRY,
                             check=False) as push:
                assert push.control("ring-update", ring=ring.to_obj()).ok
        supervisor = FakeSupervisor(servers, ring)
        sid = owned_stream(ring, "w0", prefix="mid-")
        samples = gen.stream(13, 40)
        try:
            with FleetRouter(supervisor,
                             RouterConfig(
                                 endpoint=Endpoint.tcp("127.0.0.1", 0),
                                 mode="proxy",
                                 log_level="error")) as router:
                def rebalance():
                    time.sleep(0.15)
                    ring.remove_worker("w0")
                    for wid in ("w0", "w1"):
                        with PhaseClient(servers[wid].endpoint,
                                         retry=FAST_RETRY,
                                         check=False) as push:
                            push.control("ring-update", ring=ring.to_obj())

                flip = threading.Thread(target=rebalance)
                flip.start()
                report = publish_samples(router.endpoint, sid, samples,
                                         delay=0.02, retry=FAST_RETRY)
                flip.join(timeout=5.0)
            assert report.error == "" and report.drained
            # the stream finished on the surviving owner
            finished = [r["stream_id"] for r in
                        servers["w1"].registry.fleet_status()["finished"]]
            assert sid in finished
            # versions the client observed never went backwards
            assert report.model_versions == sorted(report.model_versions)
        finally:
            for server in servers.values():
                server.stop()
