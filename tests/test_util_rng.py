"""Seed-derivation determinism and independence."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, rng_stream


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_distinct_keys():
    seeds = {derive_seed(42, key) for key in ["a", "b", "c", 1, 2, 3.5, b"x"]}
    assert len(seeds) == 7


def test_derive_seed_distinct_base():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derive_seed_order_sensitive():
    assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")


def test_derive_seed_in_63_bit_range():
    value = derive_seed(2**62, "huge")
    assert 0 <= value < 2**63


def test_rng_stream_reproducible():
    a = rng_stream(5, "stream").normal(size=8)
    b = rng_stream(5, "stream").normal(size=8)
    assert np.allclose(a, b)


def test_rng_stream_independent():
    a = rng_stream(5, "one").normal(size=8)
    b = rng_stream(5, "two").normal(size=8)
    assert not np.allclose(a, b)


def test_key_types_do_not_collide():
    # int 1 vs string "1" must be distinct streams.
    assert derive_seed(0, 1) != derive_seed(0, "1")
