"""Virtual clock semantics: ordering, periodic triggers, monotonicity."""

import math

import pytest

from repro.simulate.clock import VirtualClock
from repro.util.errors import ValidationError


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_set_time_forward_only():
    clock = VirtualClock()
    clock.set_time(5.0)
    with pytest.raises(ValidationError):
        clock.set_time(4.0)


def test_schedule_in_past_rejected():
    clock = VirtualClock()
    clock.set_time(10.0)
    with pytest.raises(ValidationError):
        clock.schedule_at(9.0, lambda t: None)


def test_once_trigger_fires_once():
    clock = VirtualClock()
    fired = []
    clock.schedule_at(1.0, fired.append)
    clock.set_time(2.0)
    assert clock.fire_due() == 1
    clock.set_time(3.0)
    assert clock.fire_due() == 0
    assert fired == [1.0]


def test_periodic_trigger_reschedules():
    clock = VirtualClock()
    fired = []
    clock.schedule_every(1.0, fired.append)
    for t in (1.0, 2.0, 3.0):
        clock.set_time(t)
        clock.fire_due()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_first_fire_defaults_to_one_period():
    clock = VirtualClock()
    clock.set_time(5.0)
    clock.schedule_every(2.0, lambda t: None)
    assert clock.next_trigger_time() == pytest.approx(7.0)


def test_periodic_custom_start():
    clock = VirtualClock()
    fired = []
    clock.schedule_every(1.0, fired.append, start=0.5)
    clock.set_time(2.6)
    clock.fire_due()
    assert fired == [0.5, 1.5, 2.5]


def test_triggers_fire_in_time_order():
    clock = VirtualClock()
    fired = []
    clock.schedule_at(2.0, lambda t: fired.append(("b", t)))
    clock.schedule_at(1.0, lambda t: fired.append(("a", t)))
    clock.set_time(3.0)
    clock.fire_due()
    assert fired == [("a", 1.0), ("b", 2.0)]


def test_same_time_triggers_fifo():
    clock = VirtualClock()
    fired = []
    clock.schedule_at(1.0, lambda t: fired.append("first"))
    clock.schedule_at(1.0, lambda t: fired.append("second"))
    clock.set_time(1.0)
    clock.fire_due()
    assert fired == ["first", "second"]


def test_next_trigger_time_inf_when_empty():
    assert math.isinf(VirtualClock().next_trigger_time())


def test_cancel_all():
    clock = VirtualClock()
    clock.schedule_every(1.0, lambda t: None)
    clock.cancel_all()
    assert math.isinf(clock.next_trigger_time())


def test_nonpositive_period_rejected():
    with pytest.raises(ValidationError):
        VirtualClock().schedule_every(0.0, lambda t: None)
