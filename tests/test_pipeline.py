"""End-to-end analysis pipeline on collected runs."""

import numpy as np
import pytest

from repro.core.model import InstType
from repro.core.pipeline import AnalysisConfig, analyze_intervals, analyze_snapshots
from repro.core.report import kcurve_table, phases_summary_table, render_full_report, sites_table
from repro.apps import get_app


def test_analyze_snapshots_end_to_end(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    assert analysis.n_phases == 4
    assert analysis.sites()
    # Every selected function is a real attribute dimension.
    for selected in analysis.sites():
        assert selected.function in analysis.interval_data.functions


def test_site_labels(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    labels = analysis.site_labels()
    assert set(labels) == {s.hb_id for s in analysis.sites()}


def test_phase_fractions_sum_to_one(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    total = sum(analysis.phase_fraction(p) for p in range(analysis.n_phases))
    assert total == pytest.approx(1.0)


def test_via_text_reports_path_agrees(graph500_samples):
    binary = analyze_snapshots(graph500_samples)
    text = analyze_snapshots(graph500_samples, AnalysisConfig(via_text_reports=True))
    assert text.n_phases == binary.n_phases
    assert {s.site for s in text.sites()} == {s.site for s in binary.sites()}


def test_deterministic_given_seed(graph500_samples):
    a = analyze_snapshots(graph500_samples)
    b = analyze_snapshots(graph500_samples)
    assert np.array_equal(a.phase_model.labels, b.phase_model.labels)
    assert [s.site for s in a.sites()] == [s.site for s in b.sites()]


def test_coverage_threshold_flows_through(graph500_samples):
    strict = analyze_snapshots(graph500_samples, AnalysisConfig(coverage_threshold=1.0))
    default = analyze_snapshots(graph500_samples)
    assert len(strict.sites()) >= len(default.sites())


def test_kmax_limits_phase_count(graph500_samples):
    analysis = analyze_snapshots(graph500_samples, AnalysisConfig(kmax=2))
    assert analysis.n_phases <= 2


def test_analyze_intervals_direct(graph500_samples):
    from repro.core.intervals import intervals_from_snapshots

    data = intervals_from_snapshots(graph500_samples)
    analysis = analyze_intervals(data)
    assert analysis.n_phases == 4


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def test_sites_table_contains_all_rows(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    app = get_app("graph500")
    text = sites_table(analysis, manual_sites=app.manual_sites).render()
    for selected in analysis.sites():
        assert selected.function in text
    assert "Manual Instrumentation Sites" in text
    assert "generate_kronecker_range" in text


def test_phase_summary_table(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    text = phases_summary_table(analysis).render()
    assert text.count("\n") >= analysis.n_phases


def test_kcurve_table_marks_chosen(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    text = kcurve_table(analysis).render()
    assert "<--" in text


def test_full_report(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    text = render_full_report(analysis, "graph500")
    assert "GRAPH500" in text
    assert "k-means sweep" in text


def test_inst_types_valid(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    for selected in analysis.sites():
        assert selected.inst_type in (InstType.BODY, InstType.LOOP)


def test_parallel_sweep_identical_to_serial(graph500_samples):
    """Acceptance: for a fixed AnalysisConfig, parallel and serial sweeps
    yield identical chosen k, labels, and selected sites."""
    config = AnalysisConfig()
    serial = analyze_snapshots(graph500_samples, config)
    parallel = analyze_snapshots(graph500_samples, config, workers=2)
    assert (serial.phase_model.kselection.chosen_k
            == parallel.phase_model.kselection.chosen_k)
    assert np.array_equal(serial.phase_model.labels, parallel.phase_model.labels)
    assert ([(s.function, s.hb_id) for s in serial.sites()]
            == [(s.function, s.hb_id) for s in parallel.sites()])
    serial_wcss = {k: r.inertia for k, r in serial.phase_model.kselection.results.items()}
    parallel_wcss = {k: r.inertia for k, r in parallel.phase_model.kselection.results.items()}
    assert serial_wcss == parallel_wcss
