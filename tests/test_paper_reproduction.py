"""Headline reproduction assertions: the paper's published shape.

These tests encode what DESIGN.md declares reproducible: per-app phase
counts (Table I), the discovered site sets and designations (Tables
II-VI, modulo the deviations recorded in EXPERIMENTS.md), overhead signs
and magnitudes, and the figures' qualitative features.
"""

import pytest

from repro.core.model import InstType
from repro.eval import paperdata
from repro.eval.figures import heartbeat_figure


PAPER_PHASES = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}


@pytest.mark.parametrize("name", list(PAPER_PHASES))
def test_phase_counts_match_paper(experiments, name):
    assert experiments[name].n_phases == PAPER_PHASES[name]


def test_graph500_sites_match_table2(experiments):
    sites = {(s.function, s.inst_type) for s in experiments["graph500"].analysis.sites()}
    assert sites == {
        ("validate_bfs_result", InstType.LOOP),
        ("run_bfs", InstType.BODY),
        ("run_bfs", InstType.LOOP),
        ("make_one_edge", InstType.BODY),
    }


def test_graph500_validate_dominates(experiments):
    """Table II shape: validate covers the largest share of the app."""
    shares = {}
    for s in experiments["graph500"].analysis.sites():
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert max(shares, key=shares.get) == "validate_bfs_result"
    assert shares["make_one_edge"] == pytest.approx(10.8, abs=3.0)


def test_minife_sites_match_table3(experiments):
    sites = {(s.function, s.inst_type) for s in experiments["minife"].analysis.sites()}
    assert sites == {
        ("cg_solve", InstType.LOOP),
        ("sum_in_symm_elem_matrix", InstType.BODY),
        ("init_matrix", InstType.LOOP),
        ("generate_matrix_structure", InstType.LOOP),
        ("impose_dirichlet", InstType.LOOP),
        ("make_local_matrix", InstType.LOOP),
    }


def test_minife_cg_split_across_two_phases(experiments):
    """Table III: cg_solve covers two distinct phases (1 and 4)."""
    cg_phases = {s.phase_id for s in experiments["minife"].analysis.sites()
                 if s.function == "cg_solve"}
    assert len(cg_phases) == 2


def test_minife_shares_close_to_paper(experiments):
    shares = {}
    for s in experiments["minife"].analysis.sites():
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert shares["cg_solve"] == pytest.approx(64.2, abs=6.0)
    assert shares["sum_in_symm_elem_matrix"] == pytest.approx(19.5, abs=4.0)
    assert shares["init_matrix"] == pytest.approx(10.1, abs=3.0)
    assert shares["impose_dirichlet"] == pytest.approx(4.4, abs=2.0)


def test_miniamr_checksum_dominates(experiments):
    """Table IV: check_sum (body) covers ~89% of the run on its own."""
    sites = experiments["miniamr"].analysis.sites()
    top = max(sites, key=lambda s: s.app_pct)
    assert top.function == "check_sum"
    assert top.inst_type is InstType.BODY
    assert top.app_pct == pytest.approx(89.1, abs=7.0)


def test_miniamr_deviation_phase_sites(experiments):
    """Table IV phase 1: allocate (loop) + pack/unpack (body) all present."""
    sites = {(s.function, s.inst_type) for s in experiments["miniamr"].analysis.sites()}
    assert ("allocate", InstType.LOOP) in sites
    assert ("pack_block", InstType.BODY) in sites
    assert ("unpack_block", InstType.BODY) in sites


def test_lammps_compute_two_phases_build_velocity(experiments):
    """Table V: compute dominates two phases; build and velocity appear."""
    sites = experiments["lammps"].analysis.sites()
    compute_phases = {s.phase_id for s in sites if s.function == "PairLJCut::compute"
                      and s.phase_pct == pytest.approx(100.0)}
    assert len(compute_phases) == 2
    functions = {s.function for s in sites}
    assert "NPairHalfBinNewtonTri::build" in functions
    assert "Velocity::create" in functions


def test_lammps_compute_share_near_90(experiments):
    shares = {}
    for s in experiments["lammps"].analysis.sites():
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    # Paper: phases 0+2 make up "almost 90% of the execution".
    assert shares["PairLJCut::compute"] == pytest.approx(89.8, abs=7.0)


def test_gadget2_sites_all_body(experiments):
    """Table VI: every discovered Gadget2 site is body-instrumented."""
    sites = experiments["gadget2"].analysis.sites()
    assert all(s.inst_type is InstType.BODY for s in sites)
    functions = {s.function for s in sites}
    assert functions == {
        "force_treeevaluate_shortrange",
        "pm_setup_nonperiodic_kernel",
        "force_update_node_recursive",
    }


def test_gadget2_tree_split_across_two_phases(experiments):
    tree_phases = {s.phase_id for s in experiments["gadget2"].analysis.sites()
                   if s.function == "force_treeevaluate_shortrange"}
    assert len(tree_phases) == 2


def test_gadget2_manual_sites_not_discovered(experiments):
    """Section VI-E: the four main-loop functions are invisible to
    discovery (their time lives in callees)."""
    discovered = {s.function for s in experiments["gadget2"].analysis.sites()}
    for site in ("find_next_sync_point_and_drift", "domain_decomposition",
                 "compute_accelerations", "advance_and_find_timesteps"):
        assert site not in discovered


# ----------------------------------------------------------------------
# Table I: overheads
# ----------------------------------------------------------------------
def test_incprof_overhead_at_most_10ish_everywhere(experiments):
    """The paper's headline: IncProf overhead is 10% or less."""
    for result in experiments.values():
        assert result.overheads.incprof_overhead_pct <= 12.0


def test_graph500_overhead_largest(experiments):
    """Graph500's call volume makes it the worst case (10.1% in Table I)."""
    g5 = experiments["graph500"].overheads.incprof_overhead_pct
    assert g5 == pytest.approx(10.1, abs=2.5)
    assert g5 == max(r.overheads.incprof_overhead_pct for r in experiments.values())


def test_minife_overhead_negative(experiments):
    """MiniFE's -O3/-pg anomaly: consistently negative overhead."""
    assert experiments["minife"].overheads.incprof_overhead_pct < 0


def test_lammps_heartbeat_overhead_high(experiments):
    """LAMMPS is the heartbeat outlier (8.1% in Table I)."""
    hb = {n: r.overheads.heartbeat_overhead_pct for n, r in experiments.items()}
    assert hb["lammps"] == max(hb.values())
    assert hb["lammps"] > 4.0
    # Every other app is "extremely low" (< ~2%).
    assert all(v < 2.5 for n, v in hb.items() if n != "lammps")


def test_runtimes_within_paper_band(experiments):
    for name, result in experiments.items():
        paper = paperdata.TABLE1[name].uninstrumented_runtime_s
        assert result.overheads.uninstrumented_s == pytest.approx(paper, rel=0.1)


# ----------------------------------------------------------------------
# figures: qualitative features the paper narrates
# ----------------------------------------------------------------------
def test_fig2_manual_heartbeats_have_gaps(experiments):
    """Paper: manual Graph500 sites run longer than the interval, so
    their series show gaps; counts never exceed one per interval."""
    manual = experiments["graph500"].manual_series()
    labels = {b.hb_id: b.function for b in experiments["graph500"].manual_bindings}
    validate_id = next(i for i, f in labels.items() if f == "validate_bfs_result")
    assert manual.counts[validate_id].max() <= 1.0 + 1e-9
    assert manual.gaps(validate_id)


def test_fig2_discovered_init_site_denser_than_manual(experiments):
    """The discovered init site (make_one_edge) has no gaps in its span,
    unlike the manual coarse-grained init sites."""
    result = experiments["graph500"]
    discovered = result.discovered_series()
    labels = {b.hb_id: b.function for b in result.discovered_bindings}
    moe_id = next(i for i, f in labels.items() if f == "make_one_edge")
    span = discovered.activity_span(moe_id)
    assert span is not None
    assert not discovered.gaps(moe_id)
    assert span[0] <= 2  # initialization phase: starts at the beginning


def test_fig4_adaptation_deviation_visible(experiments):
    """MiniAMR's allocate heartbeat appears only around mid-run."""
    result = experiments["miniamr"]
    series = result.discovered_series()
    labels = {b.hb_id: b.function for b in result.discovered_bindings}
    alloc_id = next(i for i, f in labels.items() if f == "allocate")
    span = series.activity_span(alloc_id)
    n = series.n_intervals
    assert span is not None
    assert n * 0.3 < span[0] and span[1] < n * 0.7


def test_fig6_gadget_manual_sites_overlap(experiments):
    """Paper: all four manual Gadget2 heartbeats essentially overlap
    (each main function is called once per timestep)."""
    manual = experiments["gadget2"].manual_series()
    ids = manual.hb_ids()
    assert len(ids) == 4
    rates = [manual.mean_rate(i) for i in ids]
    assert max(rates) <= 2.0 * min(rates)


def test_fig5_lammps_velocity_only_at_start(experiments):
    result = experiments["lammps"]
    series = result.discovered_series()
    labels = {b.hb_id: b.function for b in result.discovered_bindings}
    vel_ids = [i for i, f in labels.items() if f == "Velocity::create"]
    assert vel_ids
    span = series.activity_span(vel_ids[0])
    assert span is not None and span[1] < series.n_intervals * 0.1
