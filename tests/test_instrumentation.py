"""Algorithm 1: instrumentation-site identification semantics.

Handcrafted interval datasets pin down each rule of the paper's
algorithm: centroid-ordered processing, coverage skipping, the
(calls asc, rank desc) candidate sort, body/loop designation, the 95 %
threshold, and the Phase %/App % attribution used in Tables II-VI.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.instrumentation import SiteSelection, function_ranks, select_sites
from repro.core.intervals import IntervalData
from repro.core.kselect import KSelection
from repro.core.model import InstType, Phase, Site
from repro.core.phases import PhaseModel
from repro.util.errors import ValidationError


def make_data(functions, self_time, calls):
    self_time = np.asarray(self_time, dtype=float)
    calls = np.asarray(calls, dtype=np.int64)
    return IntervalData(
        functions=list(functions),
        self_time=self_time,
        calls=calls,
        timestamps=np.arange(1.0, self_time.shape[0] + 1),
        interval=1.0,
    )


def one_phase_model(data, indices=None):
    indices = tuple(range(data.n_intervals)) if indices is None else tuple(indices)
    members = data.self_time[list(indices)]
    phase = Phase(phase_id=0, interval_indices=indices, centroid=members.mean(axis=0))
    labels = np.zeros(data.n_intervals, dtype=int)
    dummy = KSelection(method="elbow", chosen_k=1, results={}, scores={})
    return PhaseModel(phases=(phase,), labels=labels, kselection=dummy)


def test_ranks_fraction_of_active_intervals():
    data = make_data(["f", "g"], [[1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0]],
                     np.zeros((4, 2)))
    model = one_phase_model(data)
    ranks = function_ranks(data, model.phases)
    assert ranks[0].tolist() == pytest.approx([0.75, 0.5])


def test_single_dominant_function_selected_once():
    data = make_data(["f"], [[1.0]] * 5, [[1]] * 5)
    selection = select_sites(data, one_phase_model(data))
    sites = selection.per_phase[0]
    assert len(sites) == 1
    assert sites[0].function == "f"
    assert sites[0].phase_pct == pytest.approx(100.0)


def test_body_when_called_in_covering_interval():
    data = make_data(["f"], [[1.0]] * 4, [[2]] * 4)
    selection = select_sites(data, one_phase_model(data))
    assert selection.per_phase[0][0].inst_type is InstType.BODY


def test_loop_when_zero_calls_in_covering_interval():
    data = make_data(["f"], [[1.0]] * 4, [[0]] * 4)
    selection = select_sites(data, one_phase_model(data))
    assert selection.per_phase[0][0].inst_type is InstType.LOOP


def test_fewer_calls_preferred():
    """Line 10: among active functions, the fewest-calls one wins —
    avoiding chatty utility functions (the paper's getter/setter case)."""
    data = make_data(
        ["big_kernel", "tiny_util"],
        [[0.6, 0.4]] * 6,
        [[1, 5000]] * 6,
    )
    selection = select_sites(data, one_phase_model(data))
    assert selection.per_phase[0][0].function == "big_kernel"


def test_zero_calls_sorts_before_called():
    """A still-running function (calls 0) outranks a called one."""
    data = make_data(["running", "called"], [[0.5, 0.5]] * 4,
                     [[0, 1]] * 4)
    selection = select_sites(data, one_phase_model(data))
    top = selection.per_phase[0][0]
    assert top.function == "running"
    assert top.inst_type is InstType.LOOP


def test_rank_breaks_call_ties():
    """Equal calls: the function active in more of the phase wins."""
    self_time = [[0.5, 0.5]] * 4 + [[0.5, 0.0]] * 4  # f active in all 8, g in 4
    calls = [[1, 1]] * 8
    data = make_data(["f", "g"], self_time, calls)
    selection = select_sites(data, one_phase_model(data))
    assert selection.per_phase[0][0].function == "f"


def test_covered_interval_skipped_second_site_for_rest():
    """Intervals already covered by a selected function are skipped; the
    remaining intervals nominate their own site (MiniFE's phase 2)."""
    # Intervals 0-8: init active; 9: only gen active.
    self_time = [[1.0, 0.0]] * 9 + [[0.0, 1.0]]
    calls = [[0, 0]] * 10
    data = make_data(["init", "gen"], self_time, calls)
    selection = select_sites(data, one_phase_model(data), coverage_threshold=1.0)
    functions = [s.function for s in selection.per_phase[0]]
    assert functions == ["init", "gen"]
    # Attribution: 90% / 10% of the phase.
    assert selection.per_phase[0][0].phase_pct == pytest.approx(90.0)
    assert selection.per_phase[0][1].phase_pct == pytest.approx(10.0)


def test_coverage_threshold_stops_selection():
    """With 95% coverage reached, outlier intervals select no extra site."""
    self_time = [[1.0, 0.0]] * 97 + [[0.0, 1.0]] * 3
    calls = [[0, 0]] * 100
    data = make_data(["main_fn", "outlier_fn"], self_time, calls)
    selection = select_sites(data, one_phase_model(data), coverage_threshold=0.95)
    functions = [s.function for s in selection.per_phase[0]]
    assert functions == ["main_fn"]


def test_threshold_1_selects_outlier_site_too():
    self_time = [[1.0, 0.0]] * 97 + [[0.0, 1.0]] * 3
    calls = [[0, 0]] * 100
    data = make_data(["main_fn", "outlier_fn"], self_time, calls)
    selection = select_sites(data, one_phase_model(data), coverage_threshold=1.0)
    functions = [s.function for s in selection.per_phase[0]]
    assert functions == ["main_fn", "outlier_fn"]


def test_empty_intervals_cannot_nominate():
    self_time = [[1.0]] * 3 + [[0.0]] * 2  # two idle intervals
    calls = [[0]] * 5
    data = make_data(["f"], self_time, calls)
    selection = select_sites(data, one_phase_model(data), coverage_threshold=1.0)
    sites = selection.per_phase[0]
    assert [s.function for s in sites] == ["f"]
    assert sites[0].phase_pct == pytest.approx(60.0)  # idle intervals uncovered


def test_centroid_order_determines_designation():
    """The covering interval is the one closest to the centroid, so the
    dominant interval style decides body vs loop (Graph500's run_bfs)."""
    # 8 'continuing' intervals at 1.0 self / 0 calls, 2 'call' intervals
    # at 0.55 self / 1 call: centroid near 0.91 -> covering is continuing.
    self_time = [[1.0]] * 8 + [[0.55]] * 2
    calls = [[0]] * 8 + [[1]] * 2
    data = make_data(["f"], self_time, calls)
    selection = select_sites(data, one_phase_model(data))
    assert selection.per_phase[0][0].inst_type is InstType.LOOP


def test_same_function_two_phases_same_hb_id():
    data = make_data(["f"], [[1.0]] * 6, [[0]] * 6)
    phase_a = Phase(0, (0, 1, 2), centroid=np.array([1.0]))
    phase_b = Phase(1, (3, 4, 5), centroid=np.array([1.0]))
    dummy = KSelection(method="elbow", chosen_k=2, results={}, scores={})
    model = PhaseModel(phases=(phase_a, phase_b),
                       labels=np.array([0, 0, 0, 1, 1, 1]), kselection=dummy)
    selection = select_sites(data, model)
    a = selection.per_phase[0][0]
    b = selection.per_phase[1][0]
    assert a.site == b.site
    assert a.hb_id == b.hb_id == 1


def test_same_function_different_types_distinct_hb_ids():
    """Graph500: run_bfs body (HB 2) and run_bfs loop (HB 3)."""
    data = make_data(["f"], [[1.0]] * 6, [[1]] * 3 + [[0]] * 3)
    phase_a = Phase(0, (0, 1, 2), centroid=np.array([1.0]))
    phase_b = Phase(1, (3, 4, 5), centroid=np.array([1.0]))
    dummy = KSelection(method="elbow", chosen_k=2, results={}, scores={})
    model = PhaseModel(phases=(phase_a, phase_b),
                       labels=np.array([0, 0, 0, 1, 1, 1]), kselection=dummy)
    selection = select_sites(data, model)
    a, b = selection.per_phase[0][0], selection.per_phase[1][0]
    assert a.inst_type is InstType.BODY and b.inst_type is InstType.LOOP
    assert a.hb_id != b.hb_id


def test_app_pct_relative_to_whole_run():
    data = make_data(["f", "g"], [[1.0, 0.0]] * 2 + [[0.0, 1.0]] * 8,
                     np.zeros((10, 2)))
    phase = Phase(0, (0, 1), centroid=np.array([1.0, 0.0]))
    dummy = KSelection(method="elbow", chosen_k=1, results={}, scores={})
    model = PhaseModel(phases=(phase,), labels=np.zeros(10, dtype=int),
                       kselection=dummy)
    selection = select_sites(data, model)
    site = selection.per_phase[0][0]
    assert site.phase_pct == pytest.approx(100.0)
    assert site.app_pct == pytest.approx(20.0)


def test_attribution_earliest_selected_site_wins():
    """An interval active in two selected functions counts for the one
    selected first (MiniAMR's pack/unpack overlap)."""
    # 6 intervals: 0-2 pack only, 3 pack+unpack, 4-5 unpack only.
    self_time = [[0.3, 0.0]] * 3 + [[0.3, 0.3]] + [[0.0, 0.3]] * 2
    calls = [[10, 0]] * 3 + [[10, 10]] + [[0, 10]] * 2
    data = make_data(["pack", "unpack"], self_time, calls)
    selection = select_sites(data, one_phase_model(data), coverage_threshold=1.0)
    by_name = {s.function: s for s in selection.per_phase[0]}
    total = by_name["pack"].phase_pct + by_name["unpack"].phase_pct
    assert total == pytest.approx(100.0)
    # The overlapping interval went to exactly one site.
    assert by_name["pack"].phase_pct in (pytest.approx(400 / 6), pytest.approx(300 / 6))


def test_selection_validation():
    data = make_data(["f"], [[1.0]], [[1]])
    model = one_phase_model(data)
    with pytest.raises(ValidationError):
        select_sites(data, model, coverage_threshold=0.0)
    with pytest.raises(ValidationError):
        select_sites(data, model, features=np.zeros((5, 1)))


def test_site_selection_helpers():
    data = make_data(["f"], [[1.0]] * 4, [[1]] * 4)
    selection = select_sites(data, one_phase_model(data))
    assert selection.unique_sites() == [Site("f", InstType.BODY)]
    assert selection.site_functions_by_phase() == {0: frozenset({"f"})}
    assert selection.hb_id_of(Site("f", InstType.BODY)) == 1
    with pytest.raises(ValidationError):
        selection.hb_id_of(Site("missing", InstType.BODY))


@settings(max_examples=40, deadline=None)
@given(
    n_intervals=st.integers(4, 30),
    n_funcs=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_algorithm1_invariants(n_intervals, n_funcs, seed):
    """Selected sites are active where attributed; coverage respects the
    threshold; attribution never double-counts an interval."""
    rng = np.random.default_rng(seed)
    self_time = rng.uniform(0, 1, size=(n_intervals, n_funcs))
    self_time[rng.uniform(size=self_time.shape) < 0.5] = 0.0
    calls = rng.integers(0, 5, size=(n_intervals, n_funcs))
    functions = [f"f{i}" for i in range(n_funcs)]
    data = make_data(functions, self_time, calls)
    model = one_phase_model(data)
    selection = select_sites(data, model, coverage_threshold=0.95)

    seen = set()
    for selected in selection.per_phase[0]:
        col = functions.index(selected.function)
        for interval in selected.covered_intervals:
            assert data.self_time[interval, col] > 0.0
            assert interval not in seen
            seen.add(interval)
    total_pct = sum(s.phase_pct for s in selection.per_phase[0])
    assert total_pct <= 100.0 + 1e-9
