"""Time-travel replay: bit-identical to the live engine, tier-agnostic."""

import random

import pytest

from repro.core.incremental import DriftConfig, IncrementalAnalyzer
from repro.core.pipeline import AnalysisConfig
from repro.eval.convergence import ThresholdSweepPoint, sweep_refit_thresholds
from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.store.loose import LooseStore
from repro.store.segments import SegmentStore
from repro.util.errors import CollectorError, ValidationError


def make_series(n, funcs=36, seed=11):
    """Phase-shifting cumulative snapshots that trigger drift refits."""
    rng = random.Random(seed)
    names = [f"work.func_{j:03d}" for j in range(funcs)]
    rates = [[rng.randint(8, 60) if j % 4 == p else 0
              for j in range(funcs)] for p in range(4)]
    cum = [0] * funcs
    out = []
    for i in range(n):
        phase = (i // 30) % 4
        for j in range(funcs):
            rate = rates[phase][j]
            if rate:
                cum[j] += max(0, rate + rng.randint(-2, 2))
        snap = GmonData(rank=0, timestamp=float(i + 1))
        for j, name in enumerate(names):
            if cum[j]:
                snap.add_ticks(name, cum[j])
        out.append(snap)
    return out


def live_updates(series, **engine_kwargs):
    """What a live engine observing the (serialized) feed produces."""
    engine = IncrementalAnalyzer(AnalysisConfig(), **engine_kwargs)
    updates = [engine.observe(loads_gmon(dumps_gmon(snap)))
               for snap in series]
    return engine, updates


def assert_updates_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.index == w.index
        assert g.timestamp == w.timestamp
        assert g.phase_id == w.phase_id
        assert g.distance == w.distance  # bit-identical, not approx
        assert g.novel == w.novel
        assert g.model_version == w.model_version
        assert g.refit == w.refit


# ----------------------------------------------------------------------
# replay == live
# ----------------------------------------------------------------------
def test_replay_matches_live_engine_from_raw_tier(tmp_path):
    series = make_series(120)
    engine, want = live_updates(series, warmup=8)
    with SegmentStore(tmp_path, segment_intervals=32) as store:
        for i, snap in enumerate(series):
            store.append("0", i, snap)
    store = SegmentStore(tmp_path)
    result = store.replay("0", warmup=8)
    assert_updates_identical(result.updates, want)
    assert result.indices == list(range(120))
    assert [(e.interval_index, e.version, e.old_k, e.new_k)
            for e in result.refits] == \
           [(e.interval_index, e.version, e.old_k, e.new_k)
            for e in engine.refits]


def test_replay_identical_after_vector_compaction(tmp_path):
    """Tier migration must not move a single phase assignment: the
    vector tier drops arcs, and classification never reads them."""
    series = make_series(120)
    _engine, want = live_updates(series, warmup=8)
    store = SegmentStore(tmp_path, segment_intervals=32)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    store.flush()
    report = store.compact("0", raw_keep=0)
    assert report["segments_compacted"] >= 2
    result = store.replay("0", warmup=8)
    assert_updates_identical(result.updates, want)


def test_replay_from_loose_store_matches_too(tmp_path):
    series = make_series(60)
    _engine, want = live_updates(series, warmup=8)
    store = LooseStore(tmp_path)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    result = store.replay("0", warmup=8)
    assert_updates_identical(result.updates, want)


# ----------------------------------------------------------------------
# windows + errors
# ----------------------------------------------------------------------
def test_replay_window_selects_by_timestamp(tmp_path):
    series = make_series(90)
    store = SegmentStore(tmp_path, segment_intervals=32)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    result = store.replay("0", 30.0, 60.0, warmup=4)
    assert result.n_intervals == 30
    assert result.indices[0] == 29  # timestamp 30.0 is interval index 29
    assert result.t0 == 30.0 and result.t1 == 60.0
    assert result.elapsed > 0
    assert result.intervals_per_second > 0


def test_replay_empty_window_raises(tmp_path):
    store = SegmentStore(tmp_path)
    store.append("0", 0, make_series(1)[0])
    with pytest.raises(CollectorError):
        store.replay("0", 1e9, None)
    with pytest.raises(CollectorError):
        store.replay("no-such-stream")


def test_replay_accepts_drift_overrides(tmp_path):
    series = make_series(120)
    store = SegmentStore(tmp_path)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    eager = store.replay("0", warmup=8,
                         drift=DriftConfig(novel_rate=0.05, min_samples=8),
                         refit_cooldown=8)
    lazy = store.replay("0", warmup=8,
                        drift=DriftConfig(novel_rate=1.0))
    assert len(eager.refits) >= len(lazy.refits)


# ----------------------------------------------------------------------
# refit-threshold sweep (the convergence-eval integration)
# ----------------------------------------------------------------------
def test_sweep_refit_thresholds_shape_and_scores(tmp_path):
    series = make_series(120)
    store = SegmentStore(tmp_path)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    rows = sweep_refit_thresholds(store, "0", [0.1, 0.5], warmup=8)
    assert len(rows) == 2
    for row in rows:
        assert isinstance(row, ThresholdSweepPoint)
        assert row.replay.n_intervals == 120
        assert 0.0 <= row.agreement <= 1.0
        assert row.n_phases >= 1
        assert row.n_refits == len(row.replay.refits)
    assert rows[0].threshold == 0.1 and rows[1].threshold == 0.5


def test_sweep_is_deterministic(tmp_path):
    series = make_series(100)
    store = SegmentStore(tmp_path)
    for i, snap in enumerate(series):
        store.append("0", i, snap)
    first = sweep_refit_thresholds(store, "0", [0.3], warmup=8)
    second = sweep_refit_thresholds(store, "0", [0.3], warmup=8)
    assert first[0].agreement == second[0].agreement
    assert (first[0].replay.phase_timeline()
            == second[0].replay.phase_timeline())


def test_sweep_validates_inputs(tmp_path):
    store = SegmentStore(tmp_path)
    store.append("0", 0, make_series(1)[0])
    with pytest.raises(ValidationError):
        sweep_refit_thresholds(store, "0", [])
    with pytest.raises(ValidationError):
        sweep_refit_thresholds(store, "0", [1.5])
    with pytest.raises(ValidationError):
        sweep_refit_thresholds(store, "missing", [0.3])
