"""Full gprof report rendering and the flat-profile parse path."""

import pytest

from repro.gprof.gmon import GmonData
from repro.gprof.reports import parse_flat_profile, render_gprof_report


def sample():
    data = GmonData()
    data.add_ticks("kernel", 250)
    data.add_arc("main", "kernel", 10)
    return data


def test_report_has_both_sections():
    text = render_gprof_report(sample())
    assert "Flat profile:" in text
    assert "Call graph" in text


def test_report_flat_only():
    text = render_gprof_report(sample(), include_callgraph=False)
    assert "Call graph" not in text


def test_parse_extracts_flat_section():
    text = render_gprof_report(sample())
    profile = parse_flat_profile(text)
    assert profile.self_seconds("kernel") == pytest.approx(2.5)
    assert profile.calls("kernel") == 10
