"""Execution engine: call tree, work attribution, batches, overhead."""

import pytest

from repro.simulate.clock import VirtualClock
from repro.simulate.engine import SPONTANEOUS, Engine, EngineObserver, SimFunction
from repro.simulate.overhead import CostModel
from repro.util.errors import ValidationError


class Recorder(EngineObserver):
    def __init__(self):
        self.events = []

    def on_enter(self, func, t):
        self.events.append(("enter", func, t))

    def on_exit(self, func, t):
        self.events.append(("exit", func, t))

    def on_call(self, caller, callee, t, count=1):
        self.events.append(("call", caller, callee, count))

    def on_work(self, func, t0, t1):
        self.events.append(("work", func, t0, t1))

    def on_batch_calls(self, caller, callee, n, t0, t1):
        self.events.append(("batch", caller, callee, n))

    def on_loop_tick(self, func, t):
        self.events.append(("tick", func, t))


def run_with_recorder(body):
    engine = Engine()
    rec = Recorder()
    engine.add_observer(rec)
    engine.run(SimFunction("main", body))
    return engine, rec


def test_simple_call_tree_advances_clock():
    child = SimFunction("child", lambda ctx: ctx.work(0.5))

    def main(ctx):
        ctx.work(1.0)
        ctx.call(child)

    engine, rec = run_with_recorder(main)
    assert engine.clock.now == pytest.approx(1.5)
    calls = [e for e in rec.events if e[0] == "call"]
    assert (("call", SPONTANEOUS, "main", 1)) in calls
    assert (("call", "main", "child", 1)) in calls


def test_work_attributed_to_current_function():
    child = SimFunction("child", lambda ctx: ctx.work(0.25))

    def main(ctx):
        ctx.work(0.5)
        ctx.call(child)
        ctx.work(0.5)

    _engine, rec = run_with_recorder(main)
    work = [(e[1], e[3] - e[2]) for e in rec.events if e[0] == "work"]
    totals = {}
    for func, dur in work:
        totals[func] = totals.get(func, 0.0) + dur
    assert totals["main"] == pytest.approx(1.0)
    assert totals["child"] == pytest.approx(0.25)


def test_work_outside_function_rejected():
    engine = Engine()
    with pytest.raises(ValidationError):
        engine._work(1.0)


def test_negative_work_rejected():
    def main(ctx):
        ctx.work(-1.0)

    with pytest.raises(ValidationError):
        Engine().run(SimFunction("main", main))


def test_idle_advances_without_attribution():
    def main(ctx):
        ctx.idle(2.0)

    engine, rec = run_with_recorder(main)
    assert engine.clock.now == pytest.approx(2.0)
    assert not [e for e in rec.events if e[0] == "work"]


def test_exception_pops_stack():
    def main(ctx):
        raise RuntimeError("boom")

    engine = Engine()
    with pytest.raises(RuntimeError):
        engine.run(SimFunction("main", main))
    assert engine.current_function == SPONTANEOUS


def test_batch_counts_calls_and_work():
    leaf = SimFunction("leaf")

    def main(ctx):
        ctx.call_batch(leaf, 1000, 0.3)

    engine, rec = run_with_recorder(main)
    batch = [e for e in rec.events if e[0] == "batch"][0]
    assert batch == ("batch", "main", "leaf", 1000)
    total_calls = sum(e[3] for e in rec.events if e[0] == "call" and e[2] == "leaf")
    assert total_calls == 1000
    work = sum(e[3] - e[2] for e in rec.events if e[0] == "work" and e[1] == "leaf")
    assert work == pytest.approx(0.3)


def test_batch_arcs_distributed_over_span():
    """Arc counts must accrue progressively, not all at the span start."""
    leaf = SimFunction("leaf")
    engine = Engine()
    rec = Recorder()
    engine.add_observer(rec)

    def main(ctx):
        ctx.call_batch(leaf, 1000, 1.0)

    engine.run(SimFunction("main", main))
    call_times = [e for e in rec.events if e[0] == "call" and e[2] == "leaf"]
    assert len(call_times) >= 10  # sliced, not a single event


def test_batch_zero_self_time():
    leaf = SimFunction("leaf")

    def main(ctx):
        ctx.call_batch(leaf, 5, 0.0)

    engine, rec = run_with_recorder(main)
    assert engine.clock.now == pytest.approx(0.0)
    total = sum(e[3] for e in rec.events if e[0] == "call" and e[2] == "leaf")
    assert total == 5


def test_batch_invalid_args():
    leaf = SimFunction("leaf")
    with pytest.raises(ValidationError):
        Engine().run(SimFunction("m", lambda ctx: ctx.call_batch(leaf, 0, 1.0)))
    with pytest.raises(ValidationError):
        Engine().run(SimFunction("m", lambda ctx: ctx.call_batch(leaf, 1, -1.0)))


def test_loop_tick_carries_function_name():
    def main(ctx):
        ctx.work(0.1)
        ctx.loop_tick()

    _engine, rec = run_with_recorder(main)
    ticks = [e for e in rec.events if e[0] == "tick"]
    assert ticks == [("tick", "main", pytest.approx(0.1))]


def test_trigger_fires_mid_work():
    """A trigger inside a long work segment sees a consistent split."""
    engine = Engine()
    rec = Recorder()
    engine.add_observer(rec)
    seen = []
    engine.clock.schedule_at(0.6, lambda t: seen.append(engine.clock.now))

    engine.run(SimFunction("main", lambda ctx: ctx.work(1.0)))
    assert seen == [pytest.approx(0.6)]
    # Work was split at the boundary.
    segments = [(e[2], e[3]) for e in rec.events if e[0] == "work"]
    assert segments == [(pytest.approx(0.0), pytest.approx(0.6)),
                        (pytest.approx(0.6), pytest.approx(1.0))]


def test_overhead_disabled_costmodel_noop():
    engine = Engine(cost_model=CostModel.disabled())
    engine.run(SimFunction("main", lambda ctx: ctx.work(1.0)))
    engine.overhead(5.0)
    assert engine.clock.now == pytest.approx(1.0)
    assert engine.total_overhead == 0.0


def test_overhead_extends_timeline():
    engine = Engine(cost_model=CostModel(per_call=0.0, sampling_fraction=0.0,
                                         per_dump=0.0, per_heartbeat_event=0.0))
    engine.run(SimFunction("main", lambda ctx: ctx.work(1.0)))
    engine.overhead(0.5)
    assert engine.clock.now == pytest.approx(1.5)
    assert engine.total_overhead == pytest.approx(0.5)


def test_per_call_cost_applied():
    cost = CostModel(per_call=0.01, sampling_fraction=0.0, per_dump=0.0,
                     per_heartbeat_event=0.0)
    engine = Engine(cost_model=cost)
    child = SimFunction("child", lambda ctx: ctx.work(0.1))

    def main(ctx):
        for _ in range(10):
            ctx.call(child)

    engine.run(SimFunction("main", main))
    # 11 calls total (main + 10 children) at 0.01 each, plus 1.0 work.
    assert engine.clock.now == pytest.approx(1.0 + 11 * 0.01)


def test_sampling_fraction_cost():
    cost = CostModel(per_call=0.0, sampling_fraction=0.1, per_dump=0.0,
                     per_heartbeat_event=0.0)
    engine = Engine(cost_model=cost)
    engine.run(SimFunction("main", lambda ctx: ctx.work(1.0)))
    assert engine.clock.now == pytest.approx(1.1)


def test_total_stats():
    engine = Engine()
    child = SimFunction("child", lambda ctx: ctx.work(0.2))

    def main(ctx):
        ctx.call(child)
        ctx.call_batch(SimFunction("leaf"), 99, 0.0)

    engine.run(SimFunction("main", main))
    assert engine.total_calls == 1 + 1 + 99
    assert engine.total_attributed == pytest.approx(0.2)


def test_nested_stack_depth():
    inner = SimFunction("inner", lambda ctx: ctx.work(0.1))
    mid = SimFunction("mid", lambda ctx: ctx.call(inner))

    def main(ctx):
        assert ctx.now == 0.0
        ctx.call(mid)

    engine = Engine()
    engine.run(SimFunction("main", main))
    assert engine.clock.now == pytest.approx(0.1)


def test_params_and_rank_exposed():
    engine = Engine(rank=3, params={"scale": 0.5})
    captured = {}

    def main(ctx):
        captured["rank"] = ctx.rank
        captured["scale"] = ctx.params["scale"]

    engine.run(SimFunction("main", main))
    assert captured == {"rank": 3, "scale": 0.5}


def test_simfunction_requires_name():
    with pytest.raises(ValidationError):
        SimFunction("")
