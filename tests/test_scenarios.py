"""The scenario substrate: IR, generator, scoring, and determinism."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.apps import get_app, is_known_app
from repro.apps.generator import (ScenarioGenerator, generate_scenario,
                                  parse_scenario_args, scenario_name,
                                  scenario_snapshots)
from repro.apps.spec import (KernelSpec, KernelUse, ScenarioApp,
                             ScenarioPhase, ScenarioSpec, build_program,
                             concat_specs)
from repro.apps.synthetic import Synthetic, detection_accuracy
from repro.core.pipeline import analyze_snapshots
from repro.eval.scenarios import (adjusted_rand_index,
                                  label_agreement_matched, run_scenario,
                                  summarize_scores, sweep_scenarios)
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import AppError, ValidationError

SRC = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------------
# the IR
# ----------------------------------------------------------------------
def _tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        kernels=(KernelSpec("alpha", 2.0), KernelSpec("beta", 100.0)),
        phases=(
            ScenarioPhase("a", 10.0, (KernelUse(0, 0.8),)),
            ScenarioPhase("b", 5.0, (KernelUse(1, 0.6), KernelUse(0, 0.2))),
        ),
        timeline=(0, 1, 0),
    )


def test_spec_roundtrips_through_json():
    spec = _tiny_spec()
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_json() == spec.to_json()


def test_spec_validation():
    with pytest.raises(AppError):
        ScenarioSpec(name="x", kernels=(KernelSpec("k"),),
                     phases=(ScenarioPhase("p", 1.0, (KernelUse(3, 0.5),)),),
                     timeline=(0,))  # kernel index out of range
    with pytest.raises(AppError):
        ScenarioSpec(name="x", kernels=(KernelSpec("k"),),
                     phases=(ScenarioPhase("p", 1.0, ()),),
                     timeline=(4,))  # phase index out of range
    with pytest.raises(AppError):
        ScenarioPhase("p", 1.0, (KernelUse(0, 0.7), KernelUse(1, 0.7)))


def test_truth_labels_follow_timeline_and_wrap():
    spec = _tiny_spec()  # a:[0,10) b:[10,15) a:[15,25), total 25
    labels = spec.truth_labels([0.5, 9.9, 10.5, 14.9, 20.0])
    assert labels.tolist() == [0, 0, 1, 1, 0]
    # Past the end the timeline wraps (traffic generators loop it).
    assert spec.truth_labels([25.0 + 10.5]).tolist() == [1]
    assert spec.truth_labels([]).size == 0
    assert spec.n_true_phases == 2
    assert spec.total_duration == 25.0


def test_dominant_and_expected_functions():
    spec = _tiny_spec()
    assert spec.expected_functions() == ["alpha", "beta"]
    assert spec.dominant_functions() == ["alpha", "beta"]


def test_build_program_executes_the_spec():
    app = ScenarioApp(_tiny_spec())
    result = Session(app, SessionConfig(ranks=1, seed=7)).run()
    samples = result.samples(0)
    assert len(samples) >= 20
    functions = set(samples[-1].functions())
    assert {"alpha", "beta"} <= functions


def test_synthetic_lowering_matches_legacy_executor():
    """The spec lowering is the Synthetic executor: same RNG draws, same
    batched calls, bit-identical snapshots."""
    app = Synthetic()
    spec = app.to_scenario_spec()
    direct = Session(ScenarioApp(spec), SessionConfig(ranks=1)).run()
    via_app = Session(Synthetic(), SessionConfig(ranks=1)).run()
    a, b = direct.samples(0), via_app.samples(0)
    assert len(a) == len(b)
    assert a[-1].hist == b[-1].hist
    assert a[-1].arcs == b[-1].arcs


def test_concat_specs_plays_shapes_back_to_back():
    one = generate_scenario(11, "easy")
    two = generate_scenario(23, "medium")
    combined = concat_specs("both", one, two)
    assert combined.total_duration == pytest.approx(
        one.total_duration + two.total_duration)
    assert set(combined.expected_functions()) >= set(one.expected_functions())
    assert set(combined.expected_functions()) >= set(two.expected_functions())
    # Truth at a time inside the first spec matches that spec's label.
    assert combined.truth_labels([1.0])[0] == one.truth_labels([1.0])[0]


# ----------------------------------------------------------------------
# the generator
# ----------------------------------------------------------------------
def test_generate_scenario_is_deterministic_in_process():
    a = generate_scenario(42, "hard")
    b = generate_scenario(42, "hard")
    assert a.to_json() == b.to_json()
    assert generate_scenario(43, "hard").to_json() != a.to_json()
    assert generate_scenario(42, "easy").to_json() != a.to_json()


_DETERMINISM_SNIPPET = r"""
import json, sys
from repro.apps.generator import generate_scenario
from repro.apps.spec import ScenarioApp
from repro.core.pipeline import analyze_snapshots
from repro.incprof.session import Session, SessionConfig

spec = generate_scenario(1234, "medium")
result = Session(ScenarioApp(spec), SessionConfig(ranks=1, seed=111)).run()
analysis = analyze_snapshots(result.samples(0))
data = analysis.interval_data
mid = data.timestamps - data.interval / 2.0
print(json.dumps({
    "spec": spec.to_obj(),
    "truth": spec.truth_labels(mid).tolist(),
    "labels": [int(x) for x in analysis.phase_model.labels],
}, sort_keys=True))
"""


def test_generator_deterministic_across_fresh_processes():
    """Same seed: byte-identical spec, identical ground-truth timeline,
    bit-identical pipeline phase assignments — in two fresh processes."""
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONPATH=SRC),
        )
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert len(payload["truth"]) == len(payload["labels"]) > 0


def test_generator_population_spans_tiers():
    generator = ScenarioGenerator(seed=0)
    specs = generator.specs(9)
    assert [s.tier for s in specs] == ["easy", "medium", "hard"] * 3
    assert len({s.name for s in specs}) == 9
    assert generator.coordinates(9) == generator.coordinates(9)
    # Registry addressability: every emitted name resolves to the
    # exact same spec.
    app = get_app(specs[0].name)
    assert app.spec.to_json() == specs[0].to_json()


def test_parse_scenario_args():
    assert parse_scenario_args("seed=42,tier=hard") == (42, "hard")
    assert parse_scenario_args("tier=hard, seed=42") == (42, "hard")
    assert parse_scenario_args("42") == (42, "medium")
    assert parse_scenario_args("seed=7") == (7, "medium")
    for bad in ("", "tier=hard", "seed=x", "seed=1,tier=nope", "seed=1,x=2"):
        with pytest.raises(AppError):
            parse_scenario_args(bad)


def test_factory_addresses_resolve():
    assert is_known_app("scenario:seed=5,tier=easy")
    assert not is_known_app("scenario")  # no args, not a factory hit
    assert not is_known_app("nope:seed=5")
    app = get_app(scenario_name(5, "easy"))
    assert app.kind == "generated"
    assert app.spec.seed == 5 and app.spec.tier == "easy"
    with pytest.raises(AppError):
        get_app("scenario:seed=5,tier=banana")


def test_scenario_snapshots_are_cumulative_and_phase_shaped():
    spec = _tiny_spec()
    snaps = scenario_snapshots(spec, 30, ticks_per_interval=100)
    assert len(snaps) == 30
    assert snaps[-1].timestamp == 30.0
    totals = [sum(s.hist.values()) for s in snaps]
    assert all(b >= a for a, b in zip(totals, totals[1:]))  # cumulative
    # During phase a (first 10 intervals) alpha dominates each delta.
    delta_alpha = snaps[5].hist["alpha"] - snaps[4].hist["alpha"]
    delta_beta = snaps[5].hist.get("beta", 0) - snaps[4].hist.get("beta", 0)
    assert delta_alpha > delta_beta
    # During phase b, beta takes over.
    delta_alpha = snaps[12].hist["alpha"] - snaps[11].hist["alpha"]
    delta_beta = snaps[12].hist["beta"] - snaps[11].hist["beta"]
    assert delta_beta > delta_alpha


# ----------------------------------------------------------------------
# scoring: agreement / ARI / detection_accuracy edges
# ----------------------------------------------------------------------
def test_agreement_and_ari_edge_cases():
    # Empty timeline: nothing to disagree about.
    assert label_agreement_matched([], []) == 1.0
    assert adjusted_rand_index([], []) == 1.0
    # Single phase on both sides, arbitrary label values.
    assert label_agreement_matched([0, 0, 0], [4, 4, 4]) == 1.0
    assert adjusted_rand_index([0, 0, 0], [4, 4, 4]) == 1.0
    # Permuted labels: both scores are invariant.
    truth = [0, 0, 1, 1, 2, 2]
    assert label_agreement_matched(truth, [2, 2, 0, 0, 1, 1]) == 1.0
    assert adjusted_rand_index(truth, [5, 5, 9, 9, 7, 7]) == 1.0
    # A genuinely wrong labeling scores below a permuted-perfect one.
    assert label_agreement_matched(truth, [0, 1, 2, 0, 1, 2]) < 0.6
    assert adjusted_rand_index(truth, [0, 1, 2, 0, 1, 2]) < 0.2
    # One-to-one matching penalizes merging two true phases.
    merged = [0, 0, 0, 0, 1, 1]
    assert label_agreement_matched(truth, merged) == pytest.approx(4 / 6)
    with pytest.raises(ValidationError):
        label_agreement_matched([0, 1], [0])
    with pytest.raises(ValidationError):
        adjusted_rand_index([0, 1], [0])


def test_detection_accuracy_on_scenario_and_synthetic():
    spec = generate_scenario(7, "easy")
    app = ScenarioApp(spec)
    result = Session(app, SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(result.samples(0))
    scores = detection_accuracy(app, analysis)
    assert scores["true_phases"] == spec.n_true_phases
    assert 0.0 <= scores["dominant_recall"] <= 1.0


def test_detection_accuracy_single_phase_edge():
    spec = ScenarioSpec(
        name="mono", kernels=(KernelSpec("only", 5.0),),
        phases=(ScenarioPhase("p", 30.0, (KernelUse(0, 0.9),)),),
        timeline=(0,))
    app = ScenarioApp(spec)
    result = Session(app, SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(result.samples(0))
    scores = detection_accuracy(app, analysis)
    assert scores["true_phases"] == 1
    assert scores["dominant_recall"] == 1.0
    data = analysis.interval_data
    truth = spec.truth_labels(data.timestamps - data.interval / 2.0)
    pred = np.asarray(analysis.phase_model.labels)
    # One true phase vs whatever the detector split the noise into: the
    # one-to-one agreement is exactly the largest detected cluster's
    # fraction, and chance-corrected ARI is 0 unless the detector also
    # found a single phase (then both scores are exactly 1).
    largest = max(np.bincount(pred)) / pred.size
    assert label_agreement_matched(truth, pred) == pytest.approx(largest)
    expected_ari = 1.0 if len(set(pred.tolist())) == 1 else 0.0
    assert adjusted_rand_index(truth, pred) == pytest.approx(expected_ari)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def test_run_scenario_scores_easy_tier_high():
    score = run_scenario(generate_scenario(3, "easy"))
    assert score.tier == "easy"
    assert score.agreement >= 0.9
    assert score.n_intervals > 10
    assert -1.0 <= score.ari <= 1.0


def test_sweep_scenarios_reports_distribution():
    report = sweep_scenarios(n=6, seed=0)
    assert report["n_scenarios"] == 6
    assert set(report["tiers"]) == {"easy", "medium", "hard"}
    for row in report["tiers"].values():
        assert row["n"] == 2
        assert 0.0 <= row["p10_agreement"] <= row["median_agreement"] <= 1.0
    assert len(report["scores"]) == 6
    assert report["scenarios_per_sec"] > 0
    # Same seed, same population: the accuracy numbers are reproducible.
    again = sweep_scenarios(n=6, seed=0)
    assert again["tiers"] == report["tiers"]


def test_sweep_scenarios_parallel_matches_serial():
    serial = sweep_scenarios(n=4, seed=5, tiers=("easy",))
    parallel = sweep_scenarios(n=4, seed=5, tiers=("easy",), workers=2)
    s = [{k: v for k, v in row.items() if k != "runtime_s"}
         for row in serial["scores"]]
    p = [{k: v for k, v in row.items() if k != "runtime_s"}
         for row in parallel["scores"]]
    assert s == p


def test_summarize_scores_groups_by_tier():
    report = sweep_scenarios(n=4, seed=1, tiers=("easy", "hard"))
    from repro.eval.scenarios import ScenarioScore

    scores = [ScenarioScore(**row) for row in report["scores"]]
    tiers = summarize_scores(scores)
    assert set(tiers) == {"easy", "hard"}
