"""Cross-rank analysis consistency (the symmetric-parallel premise)."""

import pytest

from repro.apps import get_app
from repro.eval.rank_consistency import RankConsistency, analyze_all_ranks
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def graph500_consistency():
    return analyze_all_ranks(get_app("graph500"), ranks=4, scale=0.5)


def test_all_ranks_analyzed(graph500_consistency):
    assert graph500_consistency.n_ranks == 4
    assert len(graph500_consistency.phase_counts) == 4
    assert len(graph500_consistency.site_sets) == 4


def test_phase_counts_mostly_agree(graph500_consistency):
    """Symmetric ranks should produce (near-)identical phase counts."""
    assert graph500_consistency.phase_count_agreement >= 0.75


def test_site_sets_similar_across_ranks(graph500_consistency):
    assert graph500_consistency.mean_site_jaccard() >= 0.5


def test_common_sites_include_dominant_function(graph500_consistency):
    functions = {f for f, _t in graph500_consistency.common_sites()}
    assert "validate_bfs_result" in functions


def test_runtime_imbalance_small(graph500_consistency):
    # Graph500's bimodal search durations make it the most rank-variable
    # of the workloads; symmetric still means within ~15%.
    assert graph500_consistency.runtime_imbalance < 0.15


def test_table_renders(graph500_consistency):
    text = graph500_consistency.to_table().render()
    assert "per-rank analysis agreement" in text
    assert text.count("\n") >= 4


def test_single_rank_degenerate():
    consistency = analyze_all_ranks(get_app("miniamr"), ranks=1, scale=0.3)
    assert consistency.phase_count_agreement == 1.0
    assert consistency.mean_site_jaccard() == 1.0


def test_ranks_validated():
    with pytest.raises(ValidationError):
        analyze_all_ranks(get_app("miniamr"), ranks=0)


def test_modal_phase_count(graph500_consistency):
    assert graph500_consistency.modal_phase_count in graph500_consistency.phase_counts
