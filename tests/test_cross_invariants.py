"""Cross-cutting property tests over the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kselect import choose_k
from repro.heartbeat.accumulator import HeartbeatAccumulator
from repro.profiler.sampling import SamplingProfiler
from repro.simulate.engine import Engine, SimFunction
from repro.simulate.overhead import CostModel


@settings(max_examples=40, deadline=None)
@given(
    segments=st.lists(
        st.tuples(st.sampled_from(["work", "idle"]),
                  st.floats(0.001, 2.0, allow_nan=False)),
        min_size=1, max_size=25,
    )
)
def test_engine_time_conservation(segments):
    """clock.now == sum of all work and idle, regardless of interleaving."""
    engine = Engine(cost_model=CostModel.disabled())

    def main(ctx):
        for kind, duration in segments:
            if kind == "work":
                ctx.work(duration)
            else:
                ctx.idle(duration)

    engine.run(SimFunction("main", main))
    expected = sum(d for _k, d in segments)
    assert engine.clock.now == pytest.approx(expected)
    worked = sum(d for k, d in segments if k == "work")
    assert engine.total_attributed == pytest.approx(worked)


@settings(max_examples=30, deadline=None)
@given(
    segments=st.lists(st.floats(0.01, 1.5, allow_nan=False),
                      min_size=1, max_size=20),
    trigger_period=st.floats(0.05, 0.9, allow_nan=False),
)
def test_sampler_conserves_ticks_across_triggers(segments, trigger_period):
    """Trigger-induced segment splitting never loses or invents samples."""
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    engine.clock.schedule_every(trigger_period, lambda t: None)

    def main(ctx):
        for duration in segments:
            ctx.work(duration)

    engine.run(SimFunction("main", main))
    total = sum(segments)
    expected_ticks = int(np.floor(total / 0.01 + 1e-9))
    assert profiler.snapshot(engine.clock.now).hist.get("main", 0) == expected_ticks


@settings(max_examples=25, deadline=None)
@given(
    points=st.lists(
        st.tuples(st.floats(-10, 10, allow_nan=False),
                  st.floats(-10, 10, allow_nan=False)),
        min_size=3, max_size=40,
    ),
    kmax=st.integers(2, 8),
)
def test_choose_k_within_bounds(points, kmax):
    """Every selector returns 1 <= k <= min(kmax, n)."""
    matrix = np.array(points)
    for method in ("elbow", "chord"):
        selection = choose_k(matrix, kmax=kmax, method=method, seed=0, n_init=2)
        assert 1 <= selection.chosen_k <= min(kmax, matrix.shape[0])
        assert selection.chosen_k in selection.results


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 500),
    t0=st.floats(0, 20, allow_nan=False),
    width=st.floats(0.001, 10, allow_nan=False),
)
def test_span_equals_sum_of_individual_records(n, t0, width):
    """record_span(n, t0, t1) conserves exactly n counts and the span's
    duration mass, matching n individually-recorded uniform heartbeats."""
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record_span(1, n, t0, t0 + width)
    records = acc.finalize(now=t0 + width + 2)
    assert sum(r.count for r in records) == pytest.approx(n)
    assert sum(r.duration_sum for r in records) == pytest.approx(width, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_full_pipeline_deterministic_per_seed(seed):
    """Same seed, same everything: snapshot hashes and site lists agree."""
    from repro.apps import get_app
    from repro.core.pipeline import analyze_snapshots
    from repro.incprof.session import Session, SessionConfig

    def run():
        session = Session(get_app("synthetic"),
                          SessionConfig(ranks=1, scale=0.1, seed=seed))
        samples = session.run().samples(0)
        analysis = analyze_snapshots(samples)
        return (
            tuple(sorted(samples[-1].hist.items())),
            tuple((s.function, s.inst_type.value) for s in analysis.sites()),
        )

    assert run() == run()
