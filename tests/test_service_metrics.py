"""ServiceMetrics regressions: percentile keys, snapshot atomicity."""

import threading

import pytest

from repro.service.metrics import LatencyWindow, ServiceMetrics


# ----------------------------------------------------------------------
# percentile key rendering
# ----------------------------------------------------------------------
def test_percentile_keys_do_not_collide():
    """0.999 must render p99.9, not round up into q=1.0's p100."""
    assert LatencyWindow.percentile_key(0.5) == "p50"
    assert LatencyWindow.percentile_key(0.9) == "p90"
    assert LatencyWindow.percentile_key(0.99) == "p99"
    assert LatencyWindow.percentile_key(0.999) == "p99.9"
    assert LatencyWindow.percentile_key(0.9999) == "p99.99"
    assert LatencyWindow.percentile_key(1.0) == "p100"


def test_percentiles_keep_distinct_tail_quantiles():
    window = LatencyWindow()
    for i in range(1000):
        window.record(i / 1000.0)
    out = window.percentiles(qs=(0.99, 0.999, 1.0))
    assert set(out) == {"p99", "p99.9", "p100"}
    # Three distinct quantiles: the old p100 collision silently dropped
    # one of these.
    assert out["p99"] < out["p99.9"] < out["p100"]
    assert out["p100"] == pytest.approx(0.999)


def test_default_percentiles_include_p99_9():
    window = LatencyWindow()
    window.record(0.1)
    assert set(window.percentiles()) == {"p50", "p90", "p99", "p99.9"}


# ----------------------------------------------------------------------
# snapshot atomicity
# ----------------------------------------------------------------------
def test_snapshot_rate_consistent_with_its_own_counters():
    """The rate inside a snapshot derives from that snapshot's counters.

    A torn snapshot read the counters, released the lock, then computed
    the rate from *newer* state — so a stats reply could disagree with
    itself.  Hammer the metrics from writer threads and check every
    snapshot is internally consistent.
    """
    metrics = ServiceMetrics()
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            metrics.note_ingested()
            metrics.note_processed(novel=False, latency=0.001)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(300):
            snap = metrics.snapshot()
            if snap["elapsed"] > 0:
                assert snap["ingest_rate"] == pytest.approx(
                    snap["processed"] / snap["elapsed"])
            assert snap["drops"] == (snap["dropped_oldest"]
                                     + snap["rejected"])
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_snapshot_zero_elapsed_rate_counts_processed():
    fake_now = [0.0]
    metrics = ServiceMetrics(clock=lambda: fake_now[0])
    metrics.note_ingested()
    metrics.note_processed(novel=False, latency=0.01)
    snap = metrics.snapshot()
    assert snap["elapsed"] == 0.0
    assert snap["ingest_rate"] == pytest.approx(1.0)
