"""Engine-side heartbeat instrumentation: body, loop, batch sites."""

import pytest

from repro.core.model import InstType, Site
from repro.heartbeat.api import AppEKG
from repro.heartbeat.instrument import (
    HeartbeatInstrumentation,
    SiteBinding,
    bindings_from_sites,
)
from repro.simulate.engine import Engine, SimFunction
from repro.simulate.overhead import CostModel


def run_instrumented(body, sites, cost=None):
    engine = Engine(cost_model=cost or CostModel.disabled())
    bindings = bindings_from_sites(sites)
    ekg = AppEKG(num_heartbeats=max(b.hb_id for b in bindings), interval=1.0,
                 time_source=lambda: engine.clock.now)
    engine.add_observer(HeartbeatInstrumentation(engine, ekg, bindings))
    engine.run(SimFunction("main", body))
    return engine, ekg.finalize(now=engine.clock.now), bindings


def test_bindings_unique_ids_in_order():
    bindings = bindings_from_sites([
        Site("a", InstType.LOOP),
        Site("b", InstType.BODY),
        Site("a", InstType.LOOP),   # repeat: same id
        Site("a", InstType.BODY),   # same function, new type: new id
    ])
    assert [(b.function, b.inst_type.value, b.hb_id) for b in bindings] == [
        ("a", "loop", 1), ("b", "body", 2), ("a", "body", 3)
    ]


def test_body_site_heartbeat_per_call():
    worker = SimFunction("worker", lambda ctx: ctx.work(0.3))

    def main(ctx):
        for _ in range(4):
            ctx.call(worker)

    _engine, records, _b = run_instrumented(main, [Site("worker", InstType.BODY)])
    assert sum(r.count for r in records) == pytest.approx(4)
    assert all(r.avg_duration == pytest.approx(0.3) for r in records)


def test_loop_site_heartbeat_per_iteration():
    def long_runner(ctx):
        for _ in range(6):
            ctx.work(0.5)
            ctx.loop_tick()

    runner = SimFunction("runner", long_runner)
    _engine, records, _b = run_instrumented(
        lambda ctx: ctx.call(runner), [Site("runner", InstType.LOOP)]
    )
    # Function entry is the baseline: all 6 iterations are measured.
    assert sum(r.count for r in records) == pytest.approx(6)
    assert all(r.avg_duration == pytest.approx(0.5) for r in records)


def test_loop_state_reset_between_activations():
    def runner_body(ctx):
        ctx.work(0.2)
        ctx.loop_tick()
        ctx.work(0.2)
        ctx.loop_tick()

    runner = SimFunction("runner", runner_body)

    def main(ctx):
        ctx.call(runner)
        ctx.idle(1.0)  # gap between activations must not become a beat
        ctx.call(runner)

    _engine, records, _b = run_instrumented(main, [Site("runner", InstType.LOOP)])
    assert sum(r.count for r in records) == pytest.approx(4)  # 2 per activation
    assert all(r.avg_duration == pytest.approx(0.2) for r in records)


def test_batch_site_records_span():
    leaf = SimFunction("leaf")

    def main(ctx):
        ctx.call_batch(leaf, 1000, 2.0)

    _engine, records, _b = run_instrumented(main, [Site("leaf", InstType.BODY)])
    assert sum(r.count for r in records) == pytest.approx(1000)


def test_uninstrumented_function_silent():
    other = SimFunction("other", lambda ctx: ctx.work(0.5))
    _engine, records, _b = run_instrumented(
        lambda ctx: ctx.call(other), [Site("nothere", InstType.BODY)]
    )
    assert records == []


def test_heartbeat_overhead_charged():
    cost = CostModel(per_call=0.0, sampling_fraction=0.0, per_dump=0.0,
                     per_heartbeat_event=0.01)
    worker = SimFunction("worker", lambda ctx: ctx.work(0.1))

    def main(ctx):
        for _ in range(10):
            ctx.call(worker)

    engine, _records, _b = run_instrumented(
        main, [Site("worker", InstType.BODY)], cost=cost
    )
    # 20 events (begin+end per call) at 0.01s each.
    assert engine.total_overhead == pytest.approx(0.2)
    assert engine.clock.now == pytest.approx(1.0 + 0.2)


def test_multiple_sites_same_function():
    def runner_body(ctx):
        ctx.work(0.5)
        ctx.loop_tick()
        ctx.work(0.5)
        ctx.loop_tick()

    runner = SimFunction("runner", runner_body)
    sites = [Site("runner", InstType.BODY), Site("runner", InstType.LOOP)]
    _engine, records, bindings = run_instrumented(
        lambda ctx: ctx.call(runner), sites
    )
    by_id = {}
    for r in records:
        by_id[r.hb_id] = by_id.get(r.hb_id, 0) + r.count
    assert by_id[1] == pytest.approx(1)  # body: one activation
    assert by_id[2] == pytest.approx(2)  # loop: two iterations
