"""Loose sample-file naming and loading (the unified storage surface).

The legacy :class:`SampleStore` wrappers are exercised only in the
deprecation section at the bottom; everything else goes through the
:class:`IntervalStore` primitives (``append``/``scan``/``streams``).
"""

import pytest

from repro.gprof.gmon import GmonData
from repro.incprof.storage import SampleFileError, SampleStore
from repro.store.loose import LooseStore
from repro.util.errors import CollectorError, FormatError


def snap(rank: int, ticks: int, t: float) -> GmonData:
    data = GmonData(rank=rank, timestamp=t)
    data.add_ticks("f", ticks)
    return data


def test_path_naming(tmp_path):
    store = LooseStore(tmp_path)
    assert store.path_for(3, 12).name == "gmon-r003-i00012.gmon"


def test_append_and_scan_ordering(tmp_path):
    store = LooseStore(tmp_path)
    # Append out of order: scan must return interval order.
    store.append("0", 2, snap(0, 30, 3.0))
    store.append("0", 0, snap(0, 10, 1.0))
    store.append("0", 1, snap(0, 20, 2.0))
    assert [s.hist["f"] for _, s in store.scan("0")] == [10, 20, 30]


def test_multiple_streams(tmp_path):
    store = LooseStore(tmp_path)
    store.append("0", 0, snap(0, 1, 1.0))
    store.append("2", 0, snap(2, 1, 1.0))
    assert store.streams() == ["0", "2"]


def test_scan_missing_stream_empty(tmp_path):
    assert list(LooseStore(tmp_path).scan("7")) == []


def test_nonexistent_dir_rejected(tmp_path):
    with pytest.raises(CollectorError):
        LooseStore(tmp_path / "nope", create=False)


def test_negative_indices_rejected(tmp_path):
    store = LooseStore(tmp_path)
    with pytest.raises(CollectorError):
        store.path_for(-1, 0)


def test_foreign_files_ignored(tmp_path):
    (tmp_path / "README.txt").write_text("hello")
    (tmp_path / "gmon-rxxx-iyyyyy.gmon").write_text("junk")
    assert LooseStore(tmp_path).streams() == []


def test_scan_matches_per_stream_loads(tmp_path):
    store = LooseStore(tmp_path)
    for rank in (0, 1, 3):
        for index in range(3):
            store.append(str(rank), index,
                         snap(rank, 10 * (index + 1), float(index)))
    assert store.streams() == ["0", "1", "3"]
    for stream in ("0", "1", "3"):
        assert [s.hist["f"] for _, s in store.scan(stream)] == [10, 20, 30]


def test_scan_watermark(tmp_path):
    """The --follow polling primitive: only dumps past the watermark."""
    store = LooseStore(tmp_path)
    for i in range(4):
        store.append("0", i, snap(0, (i + 1) * 10, float(i + 1)))
    assert [i for i, _ in store.scan("0")] == [0, 1, 2, 3]
    fresh = list(store.scan("0", since=1))
    assert [i for i, _ in fresh] == [2, 3]
    assert [s.hist["f"] for _, s in fresh] == [30, 40]
    assert list(store.scan("0", since=3)) == []
    assert list(store.scan("7", since=-1)) == []  # unknown stream
    # a dump landing between polls is picked up by the next poll
    store.append("0", 4, snap(0, 50, 5.0))
    assert [i for i, _ in store.scan("0", since=3)] == [4]


# ----------------------------------------------------------------------
# corrupt/truncated sample files (the service ingest contract)
# ----------------------------------------------------------------------
def test_corrupt_sample_file_raises_typed_error(tmp_path):
    store = LooseStore(tmp_path)
    store.append("0", 0, snap(0, 10, 1.0))
    bad = store.path_for(0, 1)
    bad.write_bytes(b"NOTAGMON" * 4)
    with pytest.raises(SampleFileError) as excinfo:
        list(store.scan("0"))
    assert excinfo.value.path == bad
    # the typed error is still a FormatError, so existing handlers work
    assert isinstance(excinfo.value, FormatError)


def test_truncated_sample_file_raises_typed_error(tmp_path):
    store = LooseStore(tmp_path)
    store.append("0", 0, snap(0, 10, 1.0))
    path = store.path_for(0, 0)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    # scan is lazy: the typed error surfaces when the corrupt file's
    # iterator is consumed, not at call time.
    with pytest.raises(SampleFileError):
        list(store.scan("0"))


def test_empty_sample_file_raises_typed_error(tmp_path):
    store = LooseStore(tmp_path)
    store.path_for(2, 0).write_bytes(b"")
    with pytest.raises(SampleFileError) as excinfo:
        list(store.scan("2"))
    assert "gmon-r002-i00000.gmon" in str(excinfo.value)


def test_append_is_atomic_no_temp_residue(tmp_path):
    """A completed append leaves exactly the sample file — the temp
    file used for the atomic rename never survives."""
    store = LooseStore(tmp_path)
    for i in range(5):
        store.append("0", i, snap(0, 10 * (i + 1), float(i)))
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [f"gmon-r000-i{i:05d}.gmon" for i in range(5)]


def test_interrupted_append_preserves_previous_sample(tmp_path, monkeypatch):
    """A crash mid-write (simulated at the temp-file stage) must leave
    the previously saved bytes intact — a concurrent analysis pass can
    never observe a torn sample."""
    import repro.util.atomicio as atomicio

    store = LooseStore(tmp_path)
    store.append("0", 0, snap(0, 10, 1.0))
    before = store.path_for(0, 0).read_bytes()

    real_replace = atomicio.os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(atomicio.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.append("0", 0, snap(0, 999, 2.0))
    monkeypatch.setattr(atomicio.os, "replace", real_replace)

    assert store.path_for(0, 0).read_bytes() == before  # old bytes intact
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name != "gmon-r000-i00000.gmon"]
    assert leftovers == []  # temp file cleaned up on failure


def test_sample_file_error_importable_from_errors_module(tmp_path):
    """SampleFileError moved under the shared FormatError branch in
    repro.util.errors; the storage-module import keeps working."""
    from repro.util.errors import SampleFileError as canonical

    assert SampleFileError is canonical
    assert issubclass(SampleFileError, FormatError)


# ----------------------------------------------------------------------
# the deprecated SampleStore shim
# ----------------------------------------------------------------------
def test_shim_save_writes_the_loose_layout_without_warning(tmp_path):
    # save() is the one legacy method collectors still call per
    # interval, so it stays warning-free by design.
    import warnings

    store = SampleStore(tmp_path)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        path = store.save(snap(0, 10, 1.0), 0)
    assert path.name == "gmon-r000-i00000.gmon" and path.exists()


def test_shim_load_methods_warn_and_match_scan(tmp_path):
    store = SampleStore(tmp_path)
    for i in range(3):
        store.save(snap(0, 10 * (i + 1), float(i)), i)
    store.save(snap(2, 1, 1.0), 0)
    via_scan = [s.hist["f"] for _, s in store.scan("0")]
    with pytest.warns(DeprecationWarning, match="load_rank is deprecated"):
        assert [s.hist["f"] for s in store.load_rank(0)] == via_scan
    with pytest.warns(DeprecationWarning, match="ranks is deprecated"):
        assert store.ranks() == [0, 2]
    with pytest.warns(DeprecationWarning,
                      match="load_rank_since is deprecated"):
        assert [i for i, _ in store.load_rank_since(0, after_index=0)] == [1, 2]
    with pytest.warns(DeprecationWarning, match="load_all is deprecated"):
        everything = store.load_all()
    assert sorted(everything) == [0, 2]
    assert [s.hist["f"] for s in everything[0]] == via_scan


def test_shim_load_all_scans_directory_once(tmp_path, monkeypatch):
    store = SampleStore(tmp_path)
    for rank in range(5):
        store.save(snap(rank, 1, 1.0), 0)
    calls = {"n": 0}
    original = SampleStore._scan

    def counting_scan(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(SampleStore, "_scan", counting_scan)
    with pytest.warns(DeprecationWarning):
        everything = store.load_all()
    assert len(everything) == 5
    assert calls["n"] == 1
