"""Sample-file naming and loading."""

import pytest

from repro.gprof.gmon import GmonData
from repro.incprof.storage import SampleFileError, SampleStore
from repro.util.errors import CollectorError, FormatError


def snap(rank: int, ticks: int, t: float) -> GmonData:
    data = GmonData(rank=rank, timestamp=t)
    data.add_ticks("f", ticks)
    return data


def test_path_naming(tmp_path):
    store = SampleStore(tmp_path)
    assert store.path_for(3, 12).name == "gmon-r003-i00012.gmon"


def test_save_and_load_rank_ordering(tmp_path):
    store = SampleStore(tmp_path)
    # Save out of order: loader must return interval order.
    store.save(snap(0, 30, 3.0), 2)
    store.save(snap(0, 10, 1.0), 0)
    store.save(snap(0, 20, 2.0), 1)
    loaded = store.load_rank(0)
    assert [s.hist["f"] for s in loaded] == [10, 20, 30]


def test_multiple_ranks(tmp_path):
    store = SampleStore(tmp_path)
    store.save(snap(0, 1, 1.0), 0)
    store.save(snap(2, 1, 1.0), 0)
    assert store.ranks() == [0, 2]
    everything = store.load_all()
    assert set(everything) == {0, 2}


def test_load_missing_rank_empty(tmp_path):
    assert SampleStore(tmp_path).load_rank(7) == []


def test_nonexistent_dir_rejected(tmp_path):
    with pytest.raises(CollectorError):
        SampleStore(tmp_path / "nope", create=False)


def test_negative_indices_rejected(tmp_path):
    store = SampleStore(tmp_path)
    with pytest.raises(CollectorError):
        store.path_for(-1, 0)


def test_foreign_files_ignored(tmp_path):
    (tmp_path / "README.txt").write_text("hello")
    (tmp_path / "gmon-rxxx-iyyyyy.gmon").write_text("junk")
    store = SampleStore(tmp_path)
    assert store.ranks() == []


def test_load_all_matches_per_rank_loads(tmp_path):
    store = SampleStore(tmp_path)
    for rank in (0, 1, 3):
        for index in range(3):
            store.save(snap(rank, 10 * (index + 1), float(index)), index)
    everything = store.load_all()
    assert sorted(everything) == [0, 1, 3]
    for rank in (0, 1, 3):
        assert [s.hist["f"] for s in everything[rank]] == [10, 20, 30]
        assert [s.hist["f"] for s in store.load_rank(rank)] == [10, 20, 30]


def test_load_all_scans_directory_once(tmp_path, monkeypatch):
    store = SampleStore(tmp_path)
    for rank in range(5):
        store.save(snap(rank, 1, 1.0), 0)
    calls = {"n": 0}
    original = SampleStore._scan

    def counting_scan(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(SampleStore, "_scan", counting_scan)
    everything = store.load_all()
    assert len(everything) == 5
    assert calls["n"] == 1


# ----------------------------------------------------------------------
# corrupt/truncated sample files (the service ingest contract)
# ----------------------------------------------------------------------
def test_corrupt_sample_file_raises_typed_error(tmp_path):
    store = SampleStore(tmp_path)
    store.save(snap(0, 10, 1.0), 0)
    bad = store.path_for(0, 1)
    bad.write_bytes(b"NOTAGMON" * 4)
    with pytest.raises(SampleFileError) as excinfo:
        store.load_rank(0)
    assert excinfo.value.path == bad
    # the typed error is still a FormatError, so existing handlers work
    assert isinstance(excinfo.value, FormatError)


def test_truncated_sample_file_raises_typed_error(tmp_path):
    store = SampleStore(tmp_path)
    store.save(snap(0, 10, 1.0), 0)
    path = store.path_for(0, 0)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SampleFileError):
        store.load_rank(0)
    # load_all is lazy now: the typed error surfaces when the corrupt
    # file's iterator is consumed, not at call time.
    with pytest.raises(SampleFileError):
        for samples in store.load_all().values():
            list(samples)


def test_empty_sample_file_raises_typed_error(tmp_path):
    store = SampleStore(tmp_path)
    store.path_for(2, 0).write_bytes(b"")
    with pytest.raises(SampleFileError) as excinfo:
        store.load_rank(2)
    assert "gmon-r002-i00000.gmon" in str(excinfo.value)


def test_save_is_atomic_no_temp_residue(tmp_path):
    """A completed save leaves exactly the sample file — the temp file
    used for the atomic rename never survives."""
    store = SampleStore(tmp_path)
    for i in range(5):
        store.save(snap(0, 10 * (i + 1), float(i)), i)
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [f"gmon-r000-i{i:05d}.gmon" for i in range(5)]


def test_interrupted_save_preserves_previous_sample(tmp_path, monkeypatch):
    """A crash mid-write (simulated at the temp-file stage) must leave
    the previously saved bytes intact — a concurrent analysis pass can
    never observe a torn sample."""
    import repro.util.atomicio as atomicio

    store = SampleStore(tmp_path)
    store.save(snap(0, 10, 1.0), 0)
    before = store.path_for(0, 0).read_bytes()

    real_replace = atomicio.os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(atomicio.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.save(snap(0, 999, 2.0), 0)
    monkeypatch.setattr(atomicio.os, "replace", real_replace)

    assert store.path_for(0, 0).read_bytes() == before  # old bytes intact
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name != "gmon-r000-i00000.gmon"]
    assert leftovers == []  # temp file cleaned up on failure


def test_sample_file_error_importable_from_errors_module(tmp_path):
    """SampleFileError moved under the shared FormatError branch in
    repro.util.errors; the storage-module import keeps working."""
    from repro.util.errors import SampleFileError as canonical

    assert SampleFileError is canonical
    assert issubclass(SampleFileError, FormatError)


def test_load_rank_since_watermark(tmp_path):
    """The --follow polling primitive: only dumps past the watermark."""
    store = SampleStore(tmp_path)
    for i in range(4):
        store.save(snap(0, (i + 1) * 10, float(i + 1)), i)
    everything = store.load_rank_since(0)
    assert [i for i, _ in everything] == [0, 1, 2, 3]
    fresh = store.load_rank_since(0, after_index=1)
    assert [i for i, _ in fresh] == [2, 3]
    assert [s.hist["f"] for _, s in fresh] == [30, 40]
    assert store.load_rank_since(0, after_index=3) == []
    assert store.load_rank_since(7, after_index=-1) == []  # unknown rank
    # a dump landing between polls is picked up by the next poll
    store.save(snap(0, 50, 5.0), 4)
    assert [i for i, _ in store.load_rank_since(0, after_index=3)] == [4]
