"""Sample-file naming and loading."""

import pytest

from repro.gprof.gmon import GmonData
from repro.incprof.storage import SampleStore
from repro.util.errors import CollectorError


def snap(rank: int, ticks: int, t: float) -> GmonData:
    data = GmonData(rank=rank, timestamp=t)
    data.add_ticks("f", ticks)
    return data


def test_path_naming(tmp_path):
    store = SampleStore(tmp_path)
    assert store.path_for(3, 12).name == "gmon-r003-i00012.gmon"


def test_save_and_load_rank_ordering(tmp_path):
    store = SampleStore(tmp_path)
    # Save out of order: loader must return interval order.
    store.save(snap(0, 30, 3.0), 2)
    store.save(snap(0, 10, 1.0), 0)
    store.save(snap(0, 20, 2.0), 1)
    loaded = store.load_rank(0)
    assert [s.hist["f"] for s in loaded] == [10, 20, 30]


def test_multiple_ranks(tmp_path):
    store = SampleStore(tmp_path)
    store.save(snap(0, 1, 1.0), 0)
    store.save(snap(2, 1, 1.0), 0)
    assert store.ranks() == [0, 2]
    everything = store.load_all()
    assert set(everything) == {0, 2}


def test_load_missing_rank_empty(tmp_path):
    assert SampleStore(tmp_path).load_rank(7) == []


def test_nonexistent_dir_rejected(tmp_path):
    with pytest.raises(CollectorError):
        SampleStore(tmp_path / "nope", create=False)


def test_negative_indices_rejected(tmp_path):
    store = SampleStore(tmp_path)
    with pytest.raises(CollectorError):
        store.path_for(-1, 0)


def test_foreign_files_ignored(tmp_path):
    (tmp_path / "README.txt").write_text("hello")
    (tmp_path / "gmon-rxxx-iyyyyy.gmon").write_text("junk")
    store = SampleStore(tmp_path)
    assert store.ranks() == []
