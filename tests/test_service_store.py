"""``incprofd --store-dir``: the daemon archives what it classifies.

Binds real loopback sockets; the whole module carries the ``socket``
marker so restricted environments can deselect it with ``-m "not
socket"``.
"""

import socket

import pytest

from repro.apps import get_app
from repro.core.online import OnlinePhaseTracker
from repro.core.pipeline import analyze_snapshots
from repro.gprof.gmon import dumps_gmon, loads_gmon
from repro.incprof.session import Session, SessionConfig
from repro.service import (
    Endpoint,
    PhaseMonitorServer,
    ServerConfig,
    publish_samples,
)
from repro.store.segments import SegmentStore

pytestmark = pytest.mark.socket


def can_bind_loopback() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


if not can_bind_loopback():  # pragma: no cover - restricted environments
    pytest.skip("cannot bind loopback sockets here", allow_module_level=True)


def make_config(**overrides) -> ServerConfig:
    defaults = dict(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=2,
                    queue_capacity=64, policy="block", block_timeout=10.0,
                    idle_timeout=30.0, housekeeping_interval=0.05)
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture(scope="module")
def template_and_samples():
    train = Session(get_app("synthetic"),
                    SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(train.samples(0))
    deploy = Session(get_app("synthetic"),
                     SessionConfig(ranks=1, seed=777)).run()
    return OnlinePhaseTracker.from_analysis(analysis), deploy.samples(0)


def test_server_archives_streams_into_segment_store(tmp_path,
                                                    template_and_samples):
    """Every classified snapshot lands in the tiered store, bit-identical
    and replayable after the daemon is gone."""
    template, samples = template_and_samples
    store_dir = tmp_path / "store"

    with PhaseMonitorServer(
            template, make_config(store_dir=str(store_dir))) as server:
        report = publish_samples(server.endpoint, "archived-r0", samples,
                                 app="synthetic")
        stats = server.stats()

    assert report.error == ""
    assert report.processed == len(samples)

    # The store section rides along in the self-metrics snapshot.
    assert stats["store"]["appends"] == len(samples)
    assert stats["store"]["streams"] == 1

    # Post-mortem: reopen the archive cold and read it back.
    store = SegmentStore(store_dir, create=False)
    got = list(store.scan("archived-r0"))
    assert [i for i, _snap in got] == list(range(len(samples)))
    for (_i, archived), sent in zip(got, samples):
        assert dumps_gmon(archived) == dumps_gmon(loads_gmon(
            dumps_gmon(sent)))

    # The archive is a first-class replay source.
    result = store.replay("archived-r0", warmup=4)
    assert result.n_intervals == len(samples)
    assert len(result.updates) == len(samples)

    # Shutdown flushed everything: no pending tail, no tmp residue.
    assert store.describe()["pending_intervals"] == 0
    assert not [p for p in store_dir.rglob("*") if ".tmp" in p.name]


def test_server_archive_skips_resume_overlap(tmp_path, template_and_samples):
    """Replaying an already-archived prefix (client retry after restart)
    must not duplicate intervals: the monotone index check makes the
    archive append idempotent."""
    template, samples = template_and_samples
    store_dir = tmp_path / "store"

    with PhaseMonitorServer(
            template, make_config(store_dir=str(store_dir))) as server:
        first = publish_samples(server.endpoint, "dup-r0", samples,
                                app="synthetic")
        assert first.error == ""

    # Same stream, same sequence numbers, fresh server over the same dir.
    with PhaseMonitorServer(
            template, make_config(store_dir=str(store_dir))) as server:
        second = publish_samples(server.endpoint, "dup-r0", samples,
                                 app="synthetic")
        assert second.error == ""

    store = SegmentStore(store_dir, create=False)
    assert len(list(store.scan("dup-r0"))) == len(samples)


def test_server_background_compactor_migrates_tiers(tmp_path,
                                                    template_and_samples):
    """With an aggressive schedule the daemon's own compactor thread
    moves cold segments to the vector tier while the server runs."""
    template, samples = template_and_samples
    store_dir = tmp_path / "store"
    config = make_config(store_dir=str(store_dir),
                         store_compact_interval=0.1)

    with PhaseMonitorServer(template, config) as server:
        server.store.segment_intervals = 8  # small segments, many of them
        publish_samples(server.endpoint, "cold-r0", samples,
                        app="synthetic")
        server.store.flush()
        server.store.compact("cold-r0", raw_keep=0)
        stats = server.stats()

    tiers = stats["store"]["tiers"]
    assert tiers.get("1", {}).get("segments", 0) >= 1
    # Compaction never loses an interval.
    store = SegmentStore(store_dir, create=False)
    assert len(list(store.scan("cold-r0"))) == len(samples)
