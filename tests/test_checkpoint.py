"""Crash-safe daemon state: checkpoint snapshot/restore and quarantine.

These tests exercise the checkpoint layer *without* sockets: registry
state round-trips through the artifact envelope, restored trackers pick
up classification exactly where the original left off, and corrupt or
version-mismatched checkpoint files are quarantined — never silently
used, never deleted.
"""

import numpy as np
import pytest

from repro.api import AnalysisConfig, CheckpointError, analyze_snapshots
from repro.core.online import OnlinePhaseTracker
from repro.service import SyntheticLoadGenerator
from repro.service.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointManager,
    restore_registry,
    snapshot_registry,
)
from repro.service.registry import StreamRegistry, StreamState


@pytest.fixture(scope="module")
def template():
    gen = SyntheticLoadGenerator()
    analysis = analyze_snapshots(gen.stream(0, 24), AnalysisConfig(kmax=4))
    return OnlinePhaseTracker.from_analysis(analysis)


def feed_stream(registry: StreamRegistry, template, stream_id: str,
                seed: int, n: int) -> StreamState:
    """Register a stream and classify ``n`` intervals into its tracker."""
    state = registry.register(stream_id, app="t", rank=seed)
    state.tracker = template.spawn(zero_start=True)
    for i, snap in enumerate(SyntheticLoadGenerator().stream(seed, n)):
        state.tracker.observe_snapshot(snap)
        state.last_seq = i
        state.processed_seq = i
        state.enqueued += 1
        state.processed += 1
    return state


# ----------------------------------------------------------------------
# snapshot/restore round-trip
# ----------------------------------------------------------------------
def test_registry_round_trip(template):
    registry = StreamRegistry()
    feed_stream(registry, template, "a", seed=1, n=10)
    feed_stream(registry, template, "b", seed=2, n=7)
    payload = snapshot_registry(registry)

    fresh = StreamRegistry()
    restored = restore_registry(fresh, payload, template)
    assert sorted(s.stream_id for s in restored) == ["a", "b"]
    a = fresh.get("a")
    assert a.processed == 10 and a.processed_seq == 9
    assert len(a.tracker.history) == 10


def test_restored_tracker_continues_identically(template):
    """The restored differencer + history classify exactly like the
    original would have — the crash is invisible to the phase timeline."""
    gen = SyntheticLoadGenerator()
    series = gen.stream(3, 20)

    registry = StreamRegistry()
    state = registry.register("s", app="t", rank=0)
    state.tracker = template.spawn(zero_start=True)
    for snap in series[:12]:
        state.tracker.observe_snapshot(snap)
    payload = snapshot_registry(registry)

    fresh = StreamRegistry()
    restore_registry(fresh, payload, template)
    restored = fresh.get("s").tracker
    for snap in series[12:]:
        state.tracker.observe_snapshot(snap)
        restored.observe_snapshot(snap)
    assert restored.phase_sequence() == state.tracker.phase_sequence()
    assert [t.distance for t in restored.history] == \
           [t.distance for t in state.tracker.history]


def test_finished_ring_and_counters_round_trip(template):
    registry = StreamRegistry()
    state = feed_stream(registry, template, "done", seed=4, n=5)
    registry.close(state.stream_id)
    payload = snapshot_registry(registry)

    fresh = StreamRegistry()
    restore_registry(fresh, payload, template)
    rows = fresh.finished_rows()
    assert len(rows) == 1 and rows[0]["stream_id"] == "done"
    assert fresh.registered == registry.registered


def test_restore_rejects_wrong_kind(template):
    with pytest.raises(CheckpointError, match="kind"):
        restore_registry(StreamRegistry(), {"kind": "phase-model"}, template)


def test_restore_rejects_garbage_stream_record(template):
    payload = {"kind": "incprofd-checkpoint",
               "streams": [{"stream_id": "x", "rank": "not-an-int"}]}
    with pytest.raises(CheckpointError, match="bad stream record"):
        restore_registry(StreamRegistry(), payload, template)


# ----------------------------------------------------------------------
# the on-disk manager
# ----------------------------------------------------------------------
def test_manager_write_load_round_trip(tmp_path, template):
    registry = StreamRegistry()
    feed_stream(registry, template, "a", seed=1, n=6)
    manager = CheckpointManager(tmp_path, interval=0.1)
    manager.write(snapshot_registry(registry))
    assert manager.writes == 1

    reread = CheckpointManager(tmp_path, interval=0.1)
    payload, quarantined = reread.load_or_quarantine()
    assert quarantined is None
    fresh = StreamRegistry()
    restore_registry(fresh, payload, template)
    assert fresh.get("a").processed == 6


def test_manager_missing_checkpoint_is_fresh_start(tmp_path):
    payload, quarantined = CheckpointManager(tmp_path).load_or_quarantine()
    assert payload is None and quarantined is None


def test_atomic_write_leaves_no_temp_files(tmp_path):
    manager = CheckpointManager(tmp_path)
    manager.write({"kind": "incprofd-checkpoint", "streams": []})
    assert sorted(p.name for p in tmp_path.iterdir()) == [CHECKPOINT_FILENAME]


def test_due_respects_interval():
    manager = CheckpointManager.__new__(CheckpointManager)
    manager.interval = 2.0
    manager._last_write = 100.0
    assert not manager.due(now=101.0)
    assert manager.due(now=102.5)


@pytest.mark.parametrize("corruption", [
    lambda raw: raw[: len(raw) // 2],                      # truncated
    lambda raw: b"IPMDL" + raw[5:],                        # wrong magic
    lambda raw: raw[:5] + (99).to_bytes(2, "little") + raw[7:],  # future schema
    lambda raw: raw[:-3] + bytes([raw[-3] ^ 0xFF]) + raw[-2:],   # bit flip
    lambda raw: b"",                                       # empty file
])
def test_corrupt_checkpoint_is_quarantined_not_used(tmp_path, corruption):
    manager = CheckpointManager(tmp_path)
    manager.write({"kind": "incprofd-checkpoint", "streams": []})
    raw = manager.path.read_bytes()
    manager.path.write_bytes(corruption(raw))

    payload, quarantined = manager.load_or_quarantine()
    assert payload is None
    assert quarantined is not None and quarantined.exists()
    assert not manager.path.exists()  # moved aside, daemon starts fresh
    assert quarantined.name.startswith(CHECKPOINT_FILENAME + ".quarantined")


def test_quarantine_never_overwrites_older_evidence(tmp_path):
    manager = CheckpointManager(tmp_path)
    for _ in range(3):
        manager.path.write_bytes(b"garbage")
        payload, quarantined = manager.load_or_quarantine()
        assert payload is None and quarantined is not None
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [f"{CHECKPOINT_FILENAME}.quarantined-{i}" for i in range(3)]
