"""Chaos suite: fault injection, crash recovery, and the no-loss /
no-duplicate guarantees.

Every scenario here asserts the same two invariants the resilient
client + checkpointing design exists for:

1. **No state loss** — every interval the publisher produced ends up
   classified exactly once, even across dropped replies, killed
   connections, corrupt frames, and a ``kill -9``'d daemon.
2. **No duplicate classification** — the resume handshake
   (``hello(resume=True)`` → ``resume_from``) replays only what the
   server never consumed, so the phase timeline of a faulty run is
   *identical* to an uninterrupted one.

The headline acceptance test SIGKILLs a real ``incprof serve``
subprocess mid-stream, restarts it against the same ``--checkpoint-dir``,
and compares fleet phase counts with an uninterrupted baseline.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    AnalysisConfig,
    ConnectionLostError,
    OnlinePhaseTracker,
    RetryExhaustedError,
    analyze_snapshots,
    save_model,
)
from repro.service import (
    Endpoint,
    FaultInjector,
    FlakyEndpoint,
    PhaseClient,
    PhaseMonitorServer,
    RetryPolicy,
    ServerConfig,
    SyntheticLoadGenerator,
    publish_samples,
)

pytestmark = pytest.mark.socket

FAST_RETRY = RetryPolicy(base_delay=0.01, max_delay=0.1, request_timeout=5.0)


def make_config(**overrides) -> ServerConfig:
    defaults = dict(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=2,
                    queue_capacity=64, policy="block", block_timeout=10.0,
                    idle_timeout=30.0, housekeeping_interval=0.05)
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture(scope="module")
def trained():
    gen = SyntheticLoadGenerator()
    analysis = analyze_snapshots(gen.stream(0, 24), AnalysisConfig(kmax=4))
    return gen, OnlinePhaseTracker.from_analysis(analysis)


def clean_phase_sequence(template, samples):
    """The ground-truth classification of ``samples``, no service at all."""
    tracker = template.spawn(zero_start=True)
    return [t.phase_id for t in
            (tracker.observe_snapshot(s) for s in samples) if t is not None]


# ----------------------------------------------------------------------
# connection-level faults, in-process daemon
# ----------------------------------------------------------------------
@pytest.mark.parametrize("inject", [
    lambda f: f.close_every(7),            # connection killed before reply
    lambda f: f.corrupt_every(9),          # undecodable reply frame
    lambda f: f.close_every(6, limit=2).corrupt_every(11, limit=2),
])
def test_faulty_run_classifies_identically(trained, inject):
    gen, template = trained
    samples = gen.stream(5, 40)
    expected = clean_phase_sequence(template, samples)

    faults = inject(FaultInjector())
    with PhaseMonitorServer(template, make_config(), faults=faults) as server:
        report = publish_samples(server.endpoint, "chaos", samples,
                                 retry=FAST_RETRY)
    assert faults.injected > 0, "scenario injected nothing"
    assert report.error == "" and report.drained
    assert report.reconnects >= 1
    # no loss, no duplicates: the timeline matches the clean run exactly
    assert report.processed == len(samples)
    assert report.phase_sequence == expected


def test_dropped_reply_is_not_reclassified(trained):
    """A DROP fault swallows the reply *after* the server processed the
    snapshot.  The client's deadline expires, it reconnects, and the
    resume handshake fast-forwards past the already-consumed interval
    instead of resending it."""
    gen, template = trained
    samples = gen.stream(6, 20)
    expected = clean_phase_sequence(template, samples)

    faults = FaultInjector().drop_every(8, limit=2)
    retry = RetryPolicy(base_delay=0.01, max_delay=0.1, request_timeout=0.5)
    with PhaseMonitorServer(template, make_config(), faults=faults) as server:
        report = publish_samples(server.endpoint, "drop", samples, retry=retry)
    assert faults.injected == 2
    assert report.reconnects >= 2
    assert report.processed == len(samples)
    assert report.phase_sequence == expected  # each interval exactly once


def test_delay_fault_rides_on_deadline(trained):
    gen, template = trained
    samples = gen.stream(7, 12)
    faults = FaultInjector().delay_every(5, delay=0.05)
    with PhaseMonitorServer(template, make_config(), faults=faults) as server:
        report = publish_samples(server.endpoint, "slowpoke", samples,
                                 retry=FAST_RETRY)
    assert report.drained and report.processed == len(samples)


def test_flaky_connect_backoff_then_success(trained):
    _, template = trained
    with PhaseMonitorServer(template, make_config()) as server:
        flaky = FlakyEndpoint(server.endpoint, fail_connects=3)
        client = PhaseClient(flaky, retry=FAST_RETRY)
        assert client.ping().ok
        assert client.connect_retries == 3
        client.close()


def test_retry_budget_exhaustion_is_typed():
    # nothing listens on this port
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    policy = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02,
                         connect_timeout=0.2)
    with pytest.raises(RetryExhaustedError) as info:
        PhaseClient(Endpoint.tcp("127.0.0.1", dead_port), retry=policy)
    assert info.value.attempts == 2


def test_non_idempotent_request_raises_instead_of_resending(trained):
    """Snapshot sends must never be blindly retried — the tool refuses
    and surfaces ConnectionLostError so the publisher resumes properly."""
    _, template = trained
    faults = FaultInjector().close_every(1, limit=1)
    with PhaseMonitorServer(template, make_config(), faults=faults) as server:
        client = PhaseClient(server.endpoint, retry=FAST_RETRY)
        client.hello("one")
        sample = SyntheticLoadGenerator().stream(0, 1)[0]
        with pytest.raises(ConnectionLostError):
            client.snapshot("one", 0, sample)
        client.close()


# ----------------------------------------------------------------------
# in-process restart: checkpoint restore + client resume
# ----------------------------------------------------------------------
def test_restart_resume_loses_nothing(trained, tmp_path):
    gen, template = trained
    samples = gen.stream(8, 30)
    expected = clean_phase_sequence(template, samples)

    config = make_config(checkpoint_dir=str(tmp_path), checkpoint_interval=0.1)
    server = PhaseMonitorServer(template, config)
    server.start()
    endpoint = server.endpoint
    client = PhaseClient(endpoint, retry=FAST_RETRY)
    client.hello("s", resume=True)
    for i in range(17):
        client.snapshot("s", i, samples[i])
    client.close()
    time.sleep(0.3)  # let a periodic checkpoint capture the consumed work
    server.stop()    # final checkpoint on shutdown

    restarted = PhaseMonitorServer(
        template, make_config(endpoint=endpoint, checkpoint_dir=str(tmp_path),
                              checkpoint_interval=0.1))
    restarted.start()
    assert restarted.restored_streams == ["s"]
    client = PhaseClient(restarted.endpoint, retry=FAST_RETRY)
    reply = client.hello("s", resume=True)
    assert reply.data["resumed"] is True
    for i in range(int(reply.data["resume_from"]), len(samples)):
        client.snapshot("s", i, samples[i])
    bye = client.bye("s")
    client.close()
    restarted.stop()

    assert bye.data["processed"] == len(samples)
    assert [int(p) for p in bye.data["phase_sequence"]] == expected


# ----------------------------------------------------------------------
# the acceptance test: kill -9 a real daemon mid-stream
# ----------------------------------------------------------------------
def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def spawn_daemon(model: Path, ckpt: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--model", str(model),
         "--port", str(port), "--checkpoint-dir", str(ckpt),
         "--checkpoint-interval", "0.1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    endpoint = Endpoint.tcp("127.0.0.1", port)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            with PhaseClient(endpoint,
                             retry=RetryPolicy(max_attempts=1,
                                               connect_timeout=0.5)) as probe:
                if probe.ping().ok:
                    return proc
        except Exception:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("daemon did not come up")


@pytest.mark.slow
def test_sigkill_mid_stream_recovers_with_identical_fleet_counts(
        trained, tmp_path):
    """SIGKILL the daemon mid-stream; restart against the same
    --checkpoint-dir; the client's retry/resume finishes the run and the
    fleet phase counts equal an uninterrupted run's."""
    gen, template = trained
    samples = gen.stream(9, 40)
    expected = clean_phase_sequence(template, samples)

    model = tmp_path / "chaos.ipm"
    save_model(template, model)
    ckpt = tmp_path / "ckpt"
    port = free_port()
    endpoint = Endpoint.tcp("127.0.0.1", port)

    proc = spawn_daemon(model, ckpt, port)
    try:
        client = PhaseClient(endpoint, retry=FAST_RETRY)
        client.hello("victim", resume=True)
        for i in range(20):
            client.snapshot("victim", i, samples[i])
        # Checkpoints ride the daemon's housekeeping tick (0.5 s default in
        # the CLI); wait a couple of ticks so one captures the consumed work.
        time.sleep(1.2)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

        restarted = spawn_daemon(model, ckpt, port)
        try:
            # the old connection is dead; reconnect + resume handshake
            with pytest.raises(ConnectionLostError):
                client.snapshot("victim", 20, samples[20])
            client.reconnect()
            reply = client.hello("victim", resume=True)
            assert reply.data["resumed"] is True
            start = int(reply.data["resume_from"])
            # kill -9 loses at most one checkpoint interval, never admits
            # work it didn't durably consume
            assert 0 < start <= 20
            for i in range(start, len(samples)):
                client.snapshot("victim", i, samples[i])
            bye = client.bye("victim")
            client.close()

            assert bye.data["processed"] == len(samples)
            got = [int(p) for p in bye.data["phase_sequence"]]
            assert got == expected

            # fleet view agrees: occupancy equals the uninterrupted run's
            with PhaseClient(endpoint) as viewer:
                status = viewer.fleet_status().data
            occupancy = {int(k): v["intervals"]
                         for k, v in status["phase_occupancy"].items()}
            clean_counts = {}
            for p in expected:
                clean_counts[p] = clean_counts.get(p, 0) + 1
            assert occupancy == clean_counts
        finally:
            restarted.kill()
            restarted.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


# ----------------------------------------------------------------------
# fleet chaos: SIGKILL one worker of a sharded fleet under live traffic
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_fleet_sigkill_rebalances_and_resumes_on_survivors(trained, tmp_path):
    """The fleet acceptance test: two real worker subprocesses behind a
    proxy router; one is SIGKILLed mid-stream.  The supervisor evicts it
    (``max_restarts=0``), rebalances the ring, and migrates its
    checkpointed streams; every publisher resumes on a survivor through
    the normal routing replies and finishes with a drained stream, a
    monotone model-version sequence, and at most one checkpoint interval
    re-sent (never lost)."""
    from repro.fleet import FleetConfig, FleetRouter, RouterConfig, WorkerSupervisor

    gen, template = trained
    model = tmp_path / "fleet.ipm"
    save_model(template, model)
    n_streams, n_intervals = 4, 30
    fleet_config = FleetConfig(
        root=str(tmp_path / "fleet"), n_workers=2, model_path=str(model),
        worker_threads=2, checkpoint_interval=0.2, ping_interval=0.2,
        max_restarts=0, log_level="error")
    retry = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=1.0,
                        request_timeout=10.0)
    with WorkerSupervisor(fleet_config) as supervisor:
        supervisor.start_monitor()
        victim = supervisor.ring.lookup("load-0")
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="proxy",
                                      log_level="error")) as router:
            box = {}
            thread = threading.Thread(
                target=lambda: box.update(load=gen.run(
                    router.endpoint, n_streams, n_intervals,
                    delay=0.05, retry=retry)))
            thread.start()
            time.sleep(0.8)  # streams live, a checkpoint cadence elapsed
            supervisor.kill_worker(victim)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "load generator hung"
            status = supervisor.status()
            with PhaseClient(router.endpoint, retry=FAST_RETRY) as viewer:
                fleet_view = viewer.fleet_status().data

    load = box["load"]
    for stream_id, report in sorted(load.streams.items()):
        assert report.error == "", f"{stream_id}: {report.error}"
        assert report.drained, f"{stream_id} did not drain"
        # versions only ever step forward, even across the migration
        assert report.model_versions == sorted(report.model_versions)
    # nothing lost; failover may re-send at most one checkpoint interval
    assert load.sent >= n_streams * n_intervals

    # the dead worker was evicted, the ring rebalanced, orphans moved
    assert status["evictions_total"] == 1
    assert status["members"] == [w for w in ("w0", "w1") if w != victim]
    assert status["workers"][victim]["evicted"] is True

    # the merged fleet view agrees: every finished stream sits on a
    # survivor, none claims the evicted worker
    finished_owners = {row["stream_id"]: row["worker_id"]
                       for row in fleet_view["finished"]}
    assert set(finished_owners) == {f"load-{i}" for i in range(n_streams)}
    assert victim not in finished_owners.values()
    source = fleet_view["service"]["classify_latency_source"]
    assert source["kind"] in ("merged-window", "exact")


@pytest.mark.slow
def test_fleet_restart_keeps_ring_position(trained, tmp_path):
    """Below the restart budget a dead worker revives under the same
    identity: the generation may not regress, no eviction happens, and
    the revived worker answers pings again."""
    from repro.fleet import FleetConfig, WorkerSupervisor

    _, template = trained
    model = tmp_path / "fleet.ipm"
    save_model(template, model)
    fleet_config = FleetConfig(
        root=str(tmp_path / "fleet"), n_workers=2, model_path=str(model),
        checkpoint_interval=0.2, ping_interval=0.2,
        max_restarts=1, log_level="error")
    with WorkerSupervisor(fleet_config) as supervisor:
        generation = supervisor.ring.generation
        supervisor.kill_worker("w0")
        deadline = time.monotonic() + 30.0
        outcome = None
        while time.monotonic() < deadline:
            events = supervisor.check_once()
            if events:
                outcome = events[0]
                break
            time.sleep(0.1)
        assert outcome == "restarted:w0"
        assert supervisor.status()["evictions_total"] == 0
        assert sorted(supervisor.ring.members()) == ["w0", "w1"]
        assert supervisor.ring.generation >= generation
        with PhaseClient(supervisor.endpoint_of("w0"),
                         retry=FAST_RETRY) as probe:
            reply = probe.ping()
            assert reply.ok and reply.data["worker_id"] == "w0"


# ----------------------------------------------------------------------
# live model refits: hot swap under traffic
# ----------------------------------------------------------------------
PHASE_A = {"kernel": 85, "reduce": 10}
PHASE_B = {"sort": 60, "reduce": 35}
PHASE_C = {"alien": 90, "reduce": 5}  # never seen in training


def cumulative_stream(interval_ticks):
    """A cumulative gmon series from per-interval tick profiles."""
    from repro.gprof.gmon import GmonData

    cum = GmonData()
    out = []
    for i, ticks in enumerate(interval_ticks):
        for func, n in ticks.items():
            cum.add_ticks(func, n)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        out.append(snap)
    return out


def test_refit_hot_swap_under_live_traffic(tmp_path):
    """The headline hot-swap scenario: a stream drifts mid-run, the
    daemon refits and swaps the model under live traffic, and the client
    observes (1) no loss or misordering, (2) a monotonically increasing
    model version, and (3) stable-phase labels unchanged across the
    swap — only the genuinely new behavior gets a fresh id."""
    train = cumulative_stream([PHASE_A, PHASE_B] * 12)
    analysis = analyze_snapshots(train,
                                 AnalysisConfig(kmax=4, drop_short_final=False))
    template = OnlinePhaseTracker.from_analysis(analysis)
    known = set(template.phase_sequence()) | {int(lab)
                                             for lab in template.phase_labels}

    # steady A/B traffic, then B is replaced by never-trained C while A
    # keeps occurring — A is the stable phase the swap must not relabel
    flip = 60
    live = cumulative_stream([PHASE_A, PHASE_B] * (flip // 2)
                             + [PHASE_A, PHASE_C] * (flip // 2))
    config = make_config(refit_interval=0.0, refit_drift_threshold=0.3,
                         checkpoint_dir=tmp_path, checkpoint_interval=0.1)
    with PhaseMonitorServer(template, config) as server:
        report = publish_samples(server.endpoint, "drift", live,
                                 retry=FAST_RETRY)
        refits_metric = server.metrics.snapshot()["refits"]

    assert report.error == "" and report.drained
    assert report.processed == len(live)
    assert len(report.phase_sequence) == len(live)

    # (2) version visibility: at least one refit happened, and every
    # version series the client can observe is monotone non-decreasing
    assert refits_metric >= 1
    assert report.model_version >= 1
    for versions in (report.model_versions, report.classified_versions):
        assert versions == sorted(versions)
    assert len(set(report.classified_versions)) >= 2
    assert len(report.classified_versions) == len(live)

    # (3) label stability: the A intervals run through the entire stream
    # (even indexes); across the hot swap they keep one label
    seq = report.phase_sequence
    a_labels = {seq[i] for i in range(0, len(seq), 2)}
    assert len(a_labels) == 1, f"stable phase relabeled: {a_labels}"
    assert a_labels < known

    # the drifted behavior converges on a fresh id outside the trained
    # alphabet (early C intervals may gate out as novel first)
    c_labels = {seq[i] for i in range(flip + 1, len(seq), 2)}
    fresh = c_labels - known - {-1}
    assert fresh, f"no fresh phase id for drifted behavior: {c_labels}"
    assert seq[-1] in fresh  # settled by the end of the run

    # each refit's versioned model artifact was persisted durably
    artifacts = sorted(p.name for p in tmp_path.glob("model-drift-v*.ipm"))
    assert artifacts, "refit produced no model artifact"
    from repro.core.model_io import load_model, model_meta

    swapped = load_model(tmp_path / artifacts[-1])
    meta = model_meta(tmp_path / artifacts[-1])
    assert swapped.model_version == int(meta["model_version"]) >= 1
    assert meta["source"] == "live-refit"
