"""k selection: variance elbow, chord elbow, silhouette."""

import numpy as np
import pytest

from repro.core.kmeans import kmeans
from repro.core.kselect import (
    KSelection,
    choose_k,
    elbow_k,
    silhouette_k,
    silhouette_score,
    variance_elbow_k,
    wcss_curve,
)
from repro.util.errors import ClusteringError, ValidationError


def blobs(k, n=25, spread=0.2, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-50, 50, size=(k, 2))
    return np.vstack([rng.normal(c, spread, size=(n, 2)) for c in centers])


@pytest.mark.parametrize("true_k", [2, 3, 4, 5])
def test_variance_elbow_finds_true_k(true_k):
    points = blobs(true_k, seed=true_k)
    assert choose_k(points, method="elbow", seed=1).chosen_k == true_k


@pytest.mark.parametrize("true_k", [3, 4])
def test_chord_elbow_finds_true_k(true_k):
    # The chord criterion needs comparable inter-cluster separations
    # (its known weakness with lopsided geometry), so use symmetric
    # centers here.
    rng = np.random.default_rng(true_k)
    angle = 2 * np.pi * np.arange(true_k) / true_k
    centers = 40 * np.column_stack([np.cos(angle), np.sin(angle)])
    points = np.vstack([rng.normal(c, 0.3, size=(25, 2)) for c in centers])
    assert choose_k(points, method="chord", seed=1).chosen_k == true_k


@pytest.mark.parametrize("true_k", [2, 3, 4])
def test_silhouette_finds_true_k(true_k):
    points = blobs(true_k, seed=true_k + 20)
    assert choose_k(points, method="silhouette", seed=1).chosen_k == true_k


def test_wcss_curve_monotone():
    points = blobs(3, seed=7)
    curve = wcss_curve(points, kmax=8, seed=0)
    inertias = [curve[k].inertia for k in sorted(curve)]
    assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))


def test_wcss_curve_caps_k_at_n():
    points = np.random.default_rng(0).normal(size=(5, 2))
    curve = wcss_curve(points, kmax=8)
    assert sorted(curve) == [1, 2, 3, 4, 5]


def test_chord_on_structureless_noise_picks_small_k():
    # Pure gaussian noise has no phases; the chord elbow lands on a small
    # k (it cannot return 1 because the WCSS curve of noise still bends).
    points = np.random.default_rng(0).normal(size=(60, 2))
    assert elbow_k(wcss_curve(points, seed=0)) <= 3


def test_identical_points_k1():
    points = np.ones((20, 2))
    assert choose_k(points, method="elbow").chosen_k == 1
    assert choose_k(points, method="chord").chosen_k == 1


def test_variance_threshold_effect():
    points = blobs(4, spread=2.0, seed=5)
    curve = wcss_curve(points, seed=0)
    loose = variance_elbow_k(curve, threshold=0.5)
    strict = variance_elbow_k(curve, threshold=0.999)
    assert loose <= strict


def test_unknown_method_rejected():
    with pytest.raises(ValidationError):
        choose_k(blobs(2), method="magic")


def test_empty_points_rejected():
    with pytest.raises(ClusteringError):
        wcss_curve(np.zeros((0, 2)))


def test_selection_exposes_best_result():
    points = blobs(3, seed=2)
    selection = choose_k(points, seed=0)
    assert isinstance(selection, KSelection)
    assert selection.best.k == selection.chosen_k
    assert selection.scores


# ----------------------------------------------------------------------
# silhouette internals
# ----------------------------------------------------------------------
def test_silhouette_perfect_separation_close_to_one():
    points = np.vstack([np.zeros((10, 2)), np.full((10, 2), 100.0)])
    labels = np.array([0] * 10 + [1] * 10)
    assert silhouette_score(points, labels) > 0.99


def test_silhouette_bad_labels_negative():
    points = np.vstack([np.zeros((10, 2)), np.full((10, 2), 100.0)])
    labels = np.array(([0, 1] * 5) + ([1, 0] * 5))  # scrambled
    assert silhouette_score(points, labels) < 0.1


def test_silhouette_requires_two_clusters():
    with pytest.raises(ValidationError):
        silhouette_score(np.zeros((5, 2)), np.zeros(5, dtype=int))


def test_silhouette_singletons_contribute_zero():
    points = np.array([[0.0, 0], [0, 0.1], [50, 50]])
    labels = np.array([0, 0, 1])
    score = silhouette_score(points, labels)
    # Third point is a singleton (s=0); the others are near 1.
    assert 0.5 < score < 1.0


def test_silhouette_k_skips_invalid_ks():
    points = blobs(2, n=4, seed=1)  # 8 points: k up to 7 valid
    curve = wcss_curve(points, kmax=8, seed=0)
    assert silhouette_k(points, curve) == 2


def _silhouette_reference(points, labels):
    """Textbook per-point silhouette loop (the pre-vectorization shape)."""
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    scores = []
    for i in range(len(points)):
        dists = np.linalg.norm(points - points[i], axis=1)
        own = labels == labels[i]
        n_own = int(own.sum())
        if n_own <= 1:
            scores.append(0.0)
            continue
        a = float(dists[own].sum() / (n_own - 1))
        b = min(float(dists[labels == c].mean())
                for c in np.unique(labels) if c != labels[i])
        denom = max(a, b)
        scores.append(0.0 if denom == 0.0 else (b - a) / denom)
    return float(np.mean(scores))


def test_silhouette_matches_bruteforce_reference():
    rng = np.random.default_rng(5)
    points = np.vstack([
        rng.normal((0, 0), 1.0, size=(40, 2)),
        rng.normal((4, 4), 1.5, size=(25, 2)),
        rng.normal((-5, 6), 0.5, size=(10, 2)),
    ])
    labels = np.concatenate([np.zeros(40), np.ones(25), np.full(10, 2)]).astype(int)
    got = silhouette_score(points, labels)
    want = _silhouette_reference(points, labels)
    assert got == pytest.approx(want, abs=1e-9)

    # Also with a singleton cluster and noisy labels.
    labels2 = labels.copy()
    labels2[0] = 7  # singleton
    labels2[50:55] = 0
    assert silhouette_score(points, labels2) == pytest.approx(
        _silhouette_reference(points, labels2), abs=1e-9)


def test_wcss_curve_parallel_matches_serial():
    rng = np.random.default_rng(17)
    points = np.vstack([rng.normal(c, 0.4, size=(30, 3))
                        for c in ((0, 0, 0), (6, 6, 0), (0, 6, 6), (9, 0, 9))])
    serial = wcss_curve(points, kmax=6, seed=42)
    parallel = wcss_curve(points, kmax=6, seed=42, workers=2)
    assert set(serial) == set(parallel)
    for k in serial:
        assert serial[k].inertia == parallel[k].inertia
        assert np.array_equal(serial[k].labels, parallel[k].labels)
        assert np.array_equal(serial[k].centroids, parallel[k].centroids)


def test_choose_k_parallel_matches_serial():
    rng = np.random.default_rng(23)
    points = np.vstack([rng.normal(c, 0.3, size=(25, 2))
                        for c in ((0, 0), (8, 8), (-8, 8))])
    for method in ("elbow", "chord", "silhouette"):
        serial = choose_k(points, kmax=6, method=method, seed=3)
        parallel = choose_k(points, kmax=6, method=method, seed=3, workers=3)
        assert serial.chosen_k == parallel.chosen_k
        assert np.array_equal(serial.best.labels, parallel.best.labels)


def test_per_k_seeds_independent_of_sweep_order():
    """Each k's fit draws from its own child seed, not a shared stream."""
    rng = np.random.default_rng(29)
    points = rng.random((40, 4))
    full = wcss_curve(points, kmax=6, seed=9)
    small = wcss_curve(points, kmax=3, seed=9)
    for k in small:
        assert small[k].inertia == full[k].inertia
        assert np.array_equal(small[k].labels, full[k].labels)


# ----------------------------------------------------------------------
# elbow_k degenerate branches (synthetic WCSS curves, no fitting)
# ----------------------------------------------------------------------
def _sweep(wcss_by_k):
    """Fake sweep results carrying only the inertia the elbow rule reads."""
    from repro.core.kmeans import KMeansResult

    return {
        k: KMeansResult(k=k, centroids=np.zeros((k, 2)),
                        labels=np.zeros(4, dtype=int),
                        inertia=float(w), n_iter=1)
        for k, w in wcss_by_k.items()
    }


def test_elbow_single_k_returns_it():
    assert elbow_k(_sweep({3: 5.0})) == 3


def test_elbow_identical_points_returns_one():
    # WCSS already zero at k=1: every point is the same, no structure.
    assert elbow_k(_sweep({1: 0.0, 2: 0.0, 3: 0.0})) == 1


def test_elbow_near_zero_truncates_trailing_ks():
    # k=3 already explains the data exactly; k=4 must not drag the chord
    # endpoint right and shift the elbow.
    assert elbow_k(_sweep({1: 100.0, 2: 10.0, 3: 0.0, 4: 0.0})) == 2


def test_elbow_near_zero_with_two_points_returns_exact_k():
    # After truncation only (k=1, k=2) remain: the first exact k wins.
    assert elbow_k(_sweep({1: 100.0, 2: 0.0})) == 2


def test_elbow_flat_curve_returns_one():
    # A <5% total drop is noise, not structure: adding clusters buys
    # nothing, so the smallest model wins.
    assert elbow_k(_sweep({1: 100.0, 2: 99.5, 3: 99.0, 4: 98.7})) == 1
