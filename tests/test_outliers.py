"""Outlier-interval classification."""

import numpy as np
import pytest

from repro.core.intervals import IntervalData
from repro.core.outliers import analyze_outliers
from repro.core.pipeline import AnalysisConfig, analyze_intervals, analyze_snapshots
from repro.gprof.gmon import GmonData


def build_snaps(rows):
    """rows: per-interval {func: ticks} increments."""
    snaps = []
    cum = GmonData()
    for i, row in enumerate(rows):
        for func, ticks in row.items():
            cum.add_ticks(func, ticks)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    return snaps


def test_idle_outliers_classified():
    rows = [{"f": 100}] * 10 + [{}] * 2 + [{"f": 100}] * 10
    analysis = analyze_snapshots(build_snaps(rows))
    report = analyze_outliers(analysis)
    kinds = report.by_kind()
    assert kinds["idle"] == 2
    assert report.uncovered_pct == pytest.approx(100 * 2 / 22)


def test_unique_outliers_expose_candidate_sites():
    # 40 main intervals, 1 odd interval with a function selected nowhere
    # (under the 95% threshold it stays uncovered).
    rows = [{"f": 100}] * 40 + [{"weird_fn": 100}] + [{"f": 100}] * 20
    analysis = analyze_snapshots(build_snaps(rows))
    report = analyze_outliers(analysis)
    if report.outliers:  # threshold skipped it
        assert report.unique_functions() == ["weird_fn"]
        assert report.by_kind()["unique"] == 1


def test_fully_covered_run_no_outliers():
    rows = [{"f": 100}] * 20
    analysis = analyze_snapshots(build_snaps(rows))
    report = analyze_outliers(analysis)
    assert report.outliers == ()
    assert report.uncovered_pct == 0.0


def test_real_app_outliers_reported(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    report = analyze_outliers(analysis)
    # Coverage threshold 95%: a few percent may remain uncovered.
    assert report.uncovered_pct < 10.0
    for outlier in report.outliers:
        assert outlier.kind in ("idle", "foreign", "unique")
        assert 0 <= outlier.interval < analysis.interval_data.n_intervals


def test_outliers_sorted_by_interval(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    report = analyze_outliers(analysis)
    intervals = [o.interval for o in report.outliers]
    assert intervals == sorted(intervals)
