"""AppEKG public API."""

import pytest

from repro.heartbeat.api import AppEKG
from repro.util.errors import ValidationError


def make(num=3, interval=1.0):
    clock = {"t": 0.0}
    ekg = AppEKG(num_heartbeats=num, interval=interval,
                 time_source=lambda: clock["t"])
    return ekg, clock


def test_begin_end_records_duration():
    ekg, clock = make()
    ekg.begin_heartbeat(1)
    clock["t"] = 0.25
    ekg.end_heartbeat(1)
    records = ekg.finalize(now=1.0)
    assert records[0].avg_duration == pytest.approx(0.25)


def test_camelcase_aliases():
    ekg, clock = make()
    ekg.beginHeartbeat(2)
    clock["t"] = 0.5
    ekg.endHeartbeat(2)
    assert ekg.finalize(now=1.0)[0].hb_id == 2


def test_id_range_enforced():
    ekg, _clock = make(num=2)
    with pytest.raises(ValidationError):
        ekg.begin_heartbeat(0)
    with pytest.raises(ValidationError):
        ekg.begin_heartbeat(3)
    with pytest.raises(ValidationError):
        AppEKG(num_heartbeats=0)


def test_unmatched_end_dropped():
    ekg, _clock = make()
    ekg.end_heartbeat(1)
    assert ekg.finalize(now=1.0) == []


def test_rebegin_restarts_measurement():
    ekg, clock = make()
    ekg.begin_heartbeat(1)
    clock["t"] = 1.0
    ekg.begin_heartbeat(1)  # restart: first begin discarded
    clock["t"] = 1.2
    ekg.end_heartbeat(1)
    records = ekg.finalize(now=2.0)
    assert len(records) == 1
    assert records[0].avg_duration == pytest.approx(0.2)


def test_open_heartbeat_dropped_at_finalize():
    ekg, clock = make()
    ekg.begin_heartbeat(1)
    clock["t"] = 5.0
    records = ekg.finalize(now=5.0)
    assert records == []


def test_explicit_timestamps():
    ekg, _clock = make()
    ekg.begin_heartbeat(1, at=3.0)
    ekg.end_heartbeat(1, at=3.5)
    records = ekg.finalize(now=4.0)
    assert records[0].interval_index == 3


def test_record_span_through_api():
    ekg, _clock = make()
    ekg.record_span(1, 50, 0.0, 1.0)
    records = ekg.finalize(now=1.0)
    assert records[0].count == pytest.approx(50.0)


def test_time_origin_is_first_use():
    clock = {"t": 100.0}
    ekg = AppEKG(num_heartbeats=1, interval=1.0, time_source=lambda: clock["t"])
    ekg.begin_heartbeat(1)
    clock["t"] = 100.4
    ekg.end_heartbeat(1)
    records = ekg.finalize()
    assert records[0].interval_index == 0  # relative to first event


def test_finalize_idempotent():
    ekg, clock = make()
    ekg.begin_heartbeat(1)
    clock["t"] = 0.3
    ekg.end_heartbeat(1)
    first = ekg.finalize(now=1.0)
    assert ekg.finalize(now=2.0) == first


def test_total_events():
    ekg, clock = make()
    for _ in range(5):
        ekg.begin_heartbeat(1)
        clock["t"] += 0.01
        ekg.end_heartbeat(1)
    assert ekg.total_events == 5
