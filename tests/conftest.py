"""Shared fixtures.

Full-scale experiments are session-scoped (they back many eval tests);
small synthetic workloads are rebuilt per test where mutation matters.
"""

from __future__ import annotations

import pytest

from repro.apps import paper_app_names
from repro.eval.experiments import ExperimentResult, run_experiment
from repro.incprof.session import Session, SessionConfig
from repro.apps import get_app


@pytest.fixture(scope="session")
def experiments():
    """Full-scale experiment results for all five apps (memoized)."""
    return {name: run_experiment(name) for name in paper_app_names()}


@pytest.fixture(scope="session")
def graph500_samples():
    """Cumulative snapshots of a paper-scale Graph500 run (rank 0)."""
    result = Session(get_app("graph500"), SessionConfig(ranks=1)).run()
    return result.samples(0)


@pytest.fixture(scope="session")
def small_run():
    """A quick quarter-scale Graph500 collection run."""
    return Session(get_app("graph500"), SessionConfig(ranks=1, scale=0.25)).run()
