"""Durable phase-model artifacts: round-trip fidelity and format safety.

The contract under test is the one ``docs/API.md`` promises: a model
saved with :func:`save_model` and reloaded with :func:`load_model`
classifies **bit-identically** to the in-memory original, the artifact
byte format is pinned (schema version 1), and every way a file can go
bad — truncation, wrong magic, future schema, flipped payload bytes —
is a clear :class:`ModelFormatError`, never a wrong answer.
"""

import base64
import hashlib

import numpy as np
import pytest

from repro.api import (
    AnalysisConfig,
    ModelFormatError,
    OnlinePhaseTracker,
    ValidationError,
    analyze_snapshots,
    dumps_model,
    load_model,
    loads_model,
    model_meta,
    save_model,
)
from repro.core.model_io import MODEL_SCHEMA
from repro.service import SyntheticLoadGenerator


def small_tracker() -> OnlinePhaseTracker:
    return OnlinePhaseTracker(
        functions=["alpha", "beta"],
        centroids=np.array([[0.75, 0.25], [0.125, 0.875]]),
        gates=np.array([0.5, 0.625]),
        interval=1.0,
    )


@pytest.fixture(scope="module")
def trained():
    gen = SyntheticLoadGenerator()
    analysis = analyze_snapshots(gen.stream(0, 24), AnalysisConfig(kmax=4))
    return gen, analysis


# ----------------------------------------------------------------------
# round-trip fidelity
# ----------------------------------------------------------------------
def test_round_trip_is_bit_identical(trained, tmp_path):
    gen, analysis = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    path = save_model(tracker, tmp_path / "m.ipm")
    loaded = load_model(path)

    assert loaded.functions == tracker.functions
    assert np.array_equal(loaded.centroids, tracker.centroids)
    assert np.array_equal(loaded.gates, tracker.gates)

    fresh = gen.stream(7, 40)
    ta, tb = tracker.spawn(zero_start=True), loaded.spawn(zero_start=True)
    a = [ta.observe_snapshot(s) for s in fresh]
    b = [tb.observe_snapshot(s) for s in fresh]
    assert [t.phase_id for t in a] == [t.phase_id for t in b]
    assert [t.distance for t in a] == [t.distance for t in b]  # exact floats


def test_save_twice_is_deterministic(tmp_path):
    tracker = small_tracker()
    assert dumps_model(tracker) == dumps_model(tracker)
    p1 = save_model(tracker, tmp_path / "a.ipm")
    p2 = save_model(tracker, tmp_path / "b.ipm")
    assert p1.read_bytes() == p2.read_bytes()


def test_save_from_analysis_records_provenance(trained, tmp_path):
    _, analysis = trained
    path = save_model(analysis, tmp_path / "m.ipm", meta={"trained_on": "app"})
    meta = model_meta(path)
    assert meta["trained_on"] == "app"
    assert meta["n_phases"] == analysis.n_phases
    assert meta["sites"]  # Algorithm 1 output travels with the model
    loaded = load_model(path)
    direct = OnlinePhaseTracker.from_analysis(analysis)
    assert np.array_equal(loaded.centroids, direct.centroids)


def test_atomic_write_leaves_no_temp_files(tmp_path):
    save_model(small_tracker(), tmp_path / "m.ipm")
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != "m.ipm"]
    assert leftovers == []


def test_save_model_rejects_wrong_type(tmp_path):
    with pytest.raises(ValidationError, match="OnlinePhaseTracker"):
        save_model({"not": "a model"}, tmp_path / "m.ipm")


# ----------------------------------------------------------------------
# the byte format is pinned
# ----------------------------------------------------------------------
GOLDEN_B64 = (
    "SVBNREwBAIzlRwWHCB0f42fW7l48lR8g4yzLFu9hQvYpeqG1KBlMugAAAHsia2luZCI6InBo"
    "YXNlLW1vZGVsIiwibWV0YSI6eyJ0cmFpbmVkX29uIjoiZ29sZGVuIn0sIm1vZGVsIjp7ImNl"
    "bnRyb2lkcyI6W1swLjc1LDAuMjVdLFswLjEyNSwwLjg3NV1dLCJmdW5jdGlvbnMiOlsiYWxw"
    "aGEiLCJiZXRhIl0sImdhdGVzIjpbMC41LDAuNjI1XSwiaW50ZXJ2YWwiOjEuMCwiemVyb19z"
    "dGFydCI6ZmFsc2V9fQ=="
)
GOLDEN_SHA256 = "9582e0d853bb27ac0c168f872ee4e8e5675ef834a15e9f0adbc0678c6b0cf4c9"


def test_golden_blob_byte_format_is_stable():
    """The exact artifact bytes for a known model are pinned.

    If this fails, the on-disk format changed: either revert, or bump
    ``MODEL_SCHEMA`` and regenerate the golden blob alongside a
    compatibility path for version-1 artifacts (see docs/API.md).
    """
    blob = dumps_model(small_tracker(), meta={"trained_on": "golden"})
    assert hashlib.sha256(blob).hexdigest() == GOLDEN_SHA256
    assert blob == base64.b64decode(GOLDEN_B64)


def test_golden_blob_still_loads():
    tracker = loads_model(base64.b64decode(GOLDEN_B64))
    assert tracker.functions == ["alpha", "beta"]
    assert np.array_equal(tracker.gates, [0.5, 0.625])


def test_header_fields():
    blob = dumps_model(small_tracker())
    assert blob[:5] == b"IPMDL"
    assert int.from_bytes(blob[5:7], "little") == MODEL_SCHEMA == 1


# ----------------------------------------------------------------------
# every corruption mode is a clear error
# ----------------------------------------------------------------------
def good_blob() -> bytes:
    return dumps_model(small_tracker())


def test_truncated_header():
    with pytest.raises(ModelFormatError, match="shorter than the header"):
        loads_model(good_blob()[:10])


def test_truncated_payload():
    with pytest.raises(ModelFormatError, match="truncated"):
        loads_model(good_blob()[:-5])


def test_wrong_magic():
    blob = b"NOTIT" + good_blob()[5:]
    with pytest.raises(ModelFormatError, match="magic"):
        loads_model(blob)


def test_future_schema_version():
    blob = bytearray(good_blob())
    blob[5:7] = (MODEL_SCHEMA + 1).to_bytes(2, "little")
    with pytest.raises(ModelFormatError, match="schema version"):
        loads_model(bytes(blob))


def test_flipped_payload_byte_fails_checksum():
    blob = bytearray(good_blob())
    blob[-1] ^= 0xFF
    with pytest.raises(ModelFormatError, match="checksum"):
        loads_model(bytes(blob))


def test_wrong_artifact_kind():
    from repro.core.model_io import MODEL_MAGIC, pack_artifact

    blob = pack_artifact({"kind": "something-else"}, MODEL_MAGIC, MODEL_SCHEMA)
    with pytest.raises(ModelFormatError, match="kind"):
        loads_model(blob)


def test_missing_file(tmp_path):
    with pytest.raises(ModelFormatError, match="cannot read"):
        load_model(tmp_path / "nope.ipm")


def test_corrupt_file_on_disk(tmp_path):
    path = tmp_path / "m.ipm"
    save_model(small_tracker(), path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path.write_bytes(bytes(raw))
    with pytest.raises(ModelFormatError):
        load_model(path)
