"""The incremental streaming engine: batch equivalence and live refits."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.incremental import (
    NOVEL,
    AdaptiveConfig,
    DriftConfig,
    DriftDetector,
    IncrementalAnalyzer,
    RefitEvent,
    bounded_resweep,
    calibrate_gates,
    match_phase_labels,
)
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import ProfileDataError, ValidationError


@pytest.fixture(scope="module")
def synthetic_samples():
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111))
    return session.run().samples(0)


# ----------------------------------------------------------------------
# the regression test the refactor is pinned by: one-at-a-time == batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app_name,seed", [
    ("synthetic", 111),
    ("graph500", 42),
    ("minife", 7),
])
def test_streaming_finalize_equals_batch(app_name, seed):
    """Feeding cumulative snapshots one at a time and finalizing must
    reproduce the batch pipeline exactly — same interval matrices, same
    features, same clustering, same selected sites."""
    session = Session(get_app(app_name), SessionConfig(ranks=1, seed=seed))
    samples = session.run().samples(0)
    config = AnalysisConfig()
    batch = analyze_snapshots(samples, config)

    engine = IncrementalAnalyzer(config, track=False)
    for snapshot in samples:
        engine.observe(snapshot)
    streamed = engine.finalize()

    assert streamed.interval_data.functions == batch.interval_data.functions
    np.testing.assert_array_equal(streamed.interval_data.self_time,
                                  batch.interval_data.self_time)
    np.testing.assert_array_equal(streamed.features, batch.features)
    assert streamed.n_phases == batch.n_phases
    np.testing.assert_array_equal(streamed.phase_model.labels,
                                  batch.phase_model.labels)
    assert (streamed.phase_model.kselection.chosen_k
            == batch.phase_model.kselection.chosen_k)
    assert ([(s.function, s.inst_type) for s in streamed.sites()]
            == [(s.function, s.inst_type) for s in batch.sites()])


def test_tracking_engine_finalize_still_matches_batch(synthetic_samples):
    """Live tracking (warmup fits, refits, mini-batch nudges) must not
    leak into the finalized result — finalize re-runs the full pipeline
    on the accumulated deltas."""
    config = AnalysisConfig()
    batch = analyze_snapshots(synthetic_samples, config)
    engine = IncrementalAnalyzer(config, track=True, warmup=8)
    for snapshot in synthetic_samples:
        engine.observe(snapshot)
    assert engine.model_version >= 1  # the live model actually refit
    streamed = engine.finalize()
    np.testing.assert_array_equal(streamed.phase_model.labels,
                                  batch.phase_model.labels)
    assert streamed.n_phases == batch.n_phases


def test_observe_many_matches_observe(synthetic_samples):
    config = AnalysisConfig()
    one = IncrementalAnalyzer(config)
    many = IncrementalAnalyzer(config)
    singles = [one.observe(s) for s in synthetic_samples]
    batched = many.observe_many(synthetic_samples)
    assert [u.phase_id for u in batched] == [u.phase_id for u in singles]
    assert [u.model_version for u in batched] == \
        [u.model_version for u in singles]


def test_live_updates_cover_every_interval(synthetic_samples):
    engine = IncrementalAnalyzer(AnalysisConfig(), warmup=8)
    for snapshot in synthetic_samples:
        update = engine.observe(snapshot)
        assert update.index == engine.n_intervals - 1
    assert len(engine.updates) == len(synthetic_samples)
    seq = engine.phase_sequence()
    warm = [p for p in seq if p is not None]
    assert len(warm) >= len(seq) - 8  # only warmup intervals unassigned
    assert set(warm) - {NOVEL}, "live model never assigned a phase"
    # versions never go backwards and every refit bumped exactly once
    versions = [u.model_version for u in engine.updates]
    assert versions == sorted(versions)
    assert versions[-1] == len(engine.refits)


# ----------------------------------------------------------------------
# model-maintenance helpers
# ----------------------------------------------------------------------
def test_match_phase_labels_inherits_and_mints():
    old = np.array([[0.0, 0.0], [10.0, 0.0]])
    new = np.array([[10.1, 0.0], [0.2, 0.0], [5.0, 5.0]])
    labels, nxt = match_phase_labels(old, [0, 1], new, next_label=2)
    assert list(labels) == [1, 0, 2]  # matched pairs inherit, extra mints
    assert nxt == 3


def test_match_phase_labels_respects_per_phase_radius():
    """A far-off new cluster must NOT steal the least-bad old id: beyond
    its radius the old phase retires and the cluster gets a fresh id."""
    old = np.array([[0.0, 0.0], [10.0, 0.0]])
    new = np.array([[0.1, 0.0], [30.0, 0.0]])
    capped, nxt = match_phase_labels(old, [0, 1], new, next_label=2,
                                     max_distance=np.array([1.0, 1.0]))
    assert list(capped) == [0, 2] and nxt == 3  # id 1 retired, never reused
    uncapped, _ = match_phase_labels(old, [0, 1], new, next_label=2)
    assert list(uncapped) == [0, 1]  # without the cap it would be stolen


def test_match_phase_labels_scalar_cap_and_k_shrink():
    old = np.array([[0.0], [5.0], [9.0]])
    new = np.array([[5.2]])
    labels, nxt = match_phase_labels(old, [0, 1, 2], new, next_label=3,
                                     max_distance=0.5)
    assert list(labels) == [1] and nxt == 3


def test_calibrate_gates_floor_and_spread():
    features = np.array([[0.0], [0.1], [5.0], [6.0]])
    labels = np.array([0, 0, 1, 1])
    centroids = np.array([[0.05], [5.5]])
    gates = calibrate_gates(features, labels, centroids,
                            quantile=1.0, slack=2.0)
    assert gates[0] >= 0.05  # floored
    assert gates[1] == pytest.approx(1.0)  # 2 x max member distance


def test_drift_detector_novel_rate_and_inertia():
    config = DriftConfig(window=10, min_samples=5, novel_rate=0.4,
                         inertia_factor=2.0)
    det = DriftDetector(config)
    for _ in range(4):
        det.observe(True, 1.0)
    assert det.check() is None  # below min_samples
    det.observe(True, 1.0)
    assert "novel-rate" in det.check()
    det.reset(baseline=1.0)
    for _ in range(6):
        det.observe(False, 3.0)
    assert "inertia" in det.check()
    state = det.state()
    fresh = DriftDetector(config)
    fresh.restore(state)
    assert fresh.check() == det.check()


def test_bounded_resweep_stays_near_current_k():
    rng = np.random.default_rng(0)
    blobs = np.concatenate([rng.normal(c, 0.05, size=(30, 2))
                            for c in ((0, 0), (4, 0), (0, 4))])
    fit = bounded_resweep(blobs, current_k=2, kmax=8, seed=3)
    assert fit.k == 3  # k+1 candidate wins on clean blobs
    # candidates never leave the k-1..k+1 band, whatever the data wants
    fit = bounded_resweep(blobs, current_k=6, kmax=8, seed=3)
    assert fit.k in (5, 6, 7)
    fit = bounded_resweep(blobs[:3], current_k=1, kmax=8, seed=3)
    assert fit.k in (1, 2)  # capped by n as well


def test_refit_event_round_trip():
    event = RefitEvent(interval_index=7, version=2, old_k=3, new_k=4,
                       reason="novel-rate", label_map=(0, 1, 2, 5))
    assert RefitEvent.from_obj(event.to_obj()) == event


def test_adaptive_config_validation():
    with pytest.raises(ValidationError):
        AdaptiveConfig(window=4, min_refit_window=8)
    with pytest.raises(ValidationError):
        AdaptiveConfig(cooldown_s=-1.0)
    with pytest.raises(ValidationError):
        IncrementalAnalyzer(warmup=1)


def test_engine_rejects_decreasing_timestamps(synthetic_samples):
    engine = IncrementalAnalyzer(AnalysisConfig())
    engine.observe(synthetic_samples[1])
    with pytest.raises(ProfileDataError):
        engine.observe(synthetic_samples[0])
