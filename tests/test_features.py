"""Feature-matrix construction and normalization."""

import numpy as np
import pytest

from repro.core.features import FeatureConfig, build_features, feature_names
from repro.core.intervals import IntervalData
from repro.gprof.gmon import GmonData
from repro.util.errors import ValidationError


def make_data(with_gmons=True):
    functions = ["a", "b"]
    self_time = np.array([[1.0, 0.0], [0.5, 0.5], [0.0, 1.0]])
    calls = np.array([[10, 0], [5, 100], [0, 200]], dtype=np.int64)
    gmons = None
    if with_gmons:
        gmons = []
        for i in range(3):
            g = GmonData()
            for j, func in enumerate(functions):
                ticks = int(self_time[i, j] * 100)
                if ticks:
                    g.add_ticks(func, ticks)
                if calls[i, j]:
                    g.add_arc("main", func, int(calls[i, j]))
            gmons.append(g)
    return IntervalData(
        functions=functions,
        self_time=self_time,
        calls=calls,
        timestamps=np.array([1.0, 2.0, 3.0]),
        interval=1.0,
        interval_gmons=gmons,
    )


def test_default_is_self_time():
    data = make_data()
    assert np.array_equal(build_features(data), data.self_time)


def test_self_time_is_a_copy():
    data = make_data()
    features = build_features(data)
    features[0, 0] = 99.0
    assert data.self_time[0, 0] == 1.0


def test_calls_source():
    data = make_data()
    features = build_features(data, FeatureConfig(source="calls"))
    assert np.array_equal(features, data.calls.astype(float))


def test_self_plus_calls_scaled():
    data = make_data()
    features = build_features(data, FeatureConfig(source="self_plus_calls"))
    assert features.shape == (3, 4)
    # Scaled call columns peak at the self-time peak.
    assert features[:, 2:].max() == pytest.approx(data.self_time.max())


def test_self_plus_children_requires_gmons():
    data = make_data(with_gmons=False)
    with pytest.raises(ValidationError):
        build_features(data, FeatureConfig(source="self_plus_children"))


def test_self_plus_children_shape():
    data = make_data()
    features = build_features(data, FeatureConfig(source="self_plus_children"))
    assert features.shape == (3, 4)
    # Leaf functions have zero children time.
    assert np.allclose(features[:, 2:], 0.0)


def test_normalize_l2():
    data = make_data()
    features = build_features(data, FeatureConfig(normalize="l2"))
    norms = np.linalg.norm(features, axis=0)
    assert np.allclose(norms[norms > 0], 1.0)


def test_normalize_minmax():
    data = make_data()
    features = build_features(data, FeatureConfig(normalize="minmax"))
    assert features.min() >= 0.0 and features.max() <= 1.0


def test_normalize_zscore():
    data = make_data()
    features = build_features(data, FeatureConfig(normalize="zscore"))
    assert np.allclose(features.mean(axis=0), 0.0, atol=1e-12)


def test_invalid_config_rejected():
    with pytest.raises(ValidationError):
        FeatureConfig(source="bogus")
    with pytest.raises(ValidationError):
        FeatureConfig(normalize="bogus")


def test_feature_names_match_width():
    data = make_data()
    for source in ("self_time", "calls", "self_plus_calls", "self_plus_children"):
        config = FeatureConfig(source=source)
        names = feature_names(data, config)
        assert len(names) == build_features(data, config).shape[1]
