"""Virtual PC-sampling profiler: exact tick accounting, snapshots, jitter."""

import numpy as np
import pytest

from repro.profiler.sampling import SamplingProfiler, ticks_in_segment
from repro.simulate.engine import Engine, SimFunction
from repro.util.errors import ValidationError


def test_ticks_in_segment_exact():
    assert ticks_in_segment(0.0, 1.0, 0.01) == 100
    assert ticks_in_segment(0.005, 0.015, 0.01) == 1
    assert ticks_in_segment(0.0, 0.009, 0.01) == 0


def test_ticks_boundary_belongs_to_ending_segment():
    # A sample instant exactly at t belongs to the segment ending at t.
    assert ticks_in_segment(0.0, 0.01, 0.01) == 1
    assert ticks_in_segment(0.01, 0.02, 0.01) == 1


def test_ticks_float_robustness():
    total = sum(ticks_in_segment(i * 0.03, (i + 1) * 0.03, 0.01) for i in range(100))
    assert total == 300


def test_ticks_invalid_segment():
    with pytest.raises(ValidationError):
        ticks_in_segment(1.0, 0.5, 0.01)


def test_profiler_accumulates_function_time():
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    child = SimFunction("child", lambda ctx: ctx.work(0.5))

    def main(ctx):
        ctx.work(1.0)
        ctx.call(child)

    engine.run(SimFunction("main", main))
    snap = profiler.snapshot(engine.clock.now)
    assert snap.self_seconds("main") == pytest.approx(1.0, abs=0.011)
    assert snap.self_seconds("child") == pytest.approx(0.5, abs=0.011)
    assert snap.calls_into("child") == 1


def test_split_segments_lose_no_ticks():
    """Splitting work at arbitrary boundaries must conserve samples."""
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    # Trigger every 0.037s forces many odd segment splits.
    engine.clock.schedule_every(0.037, lambda t: None)
    engine.run(SimFunction("main", lambda ctx: ctx.work(2.0)))
    snap = profiler.snapshot(engine.clock.now)
    assert snap.hist["main"] == 200


def test_snapshot_is_independent_copy():
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)
    engine.run(SimFunction("main", lambda ctx: ctx.work(0.2)))
    snap1 = profiler.snapshot(0.2)
    engine.run(SimFunction("main", lambda ctx: ctx.work(0.2)))
    snap2 = profiler.snapshot(0.4)
    assert snap2.hist["main"] > snap1.hist["main"]


def test_snapshot_timestamp():
    profiler = SamplingProfiler()
    assert profiler.snapshot(12.5).timestamp == 12.5


def test_idle_time_unattributed():
    engine = Engine()
    profiler = SamplingProfiler()
    engine.add_observer(profiler)

    def main(ctx):
        ctx.work(0.3)
        ctx.idle(0.7)

    engine.run(SimFunction("main", main))
    snap = profiler.snapshot(engine.clock.now)
    assert snap.total_seconds() == pytest.approx(0.3, abs=0.011)


def test_reset():
    profiler = SamplingProfiler()
    profiler.on_work("f", 0.0, 1.0)
    profiler.reset()
    assert profiler.snapshot(0.0).hist == {}
    assert profiler.total_samples == 0


def test_jitter_perturbs_but_preserves_scale():
    rng = np.random.default_rng(1)
    profiler = SamplingProfiler(jitter_sigma=0.2, rng=rng)
    for i in range(50):
        profiler.on_work("f", i * 1.0, i * 1.0 + 1.0)
    ticks = profiler.snapshot(50.0).hist["f"]
    assert ticks != 5000  # essentially certain with sigma=0.2
    assert abs(ticks - 5000) < 500


def test_jitter_never_fabricates_activity():
    rng = np.random.default_rng(2)
    profiler = SamplingProfiler(jitter_sigma=5.0, rng=rng)
    for _ in range(100):
        profiler.on_work("quiet", 0.0, 0.004)  # zero ticks each time
    assert "quiet" not in profiler.snapshot(1.0).hist


def test_jitter_deterministic_under_seeded_rng():
    def run(seed):
        profiler = SamplingProfiler(jitter_sigma=0.3, rng=np.random.default_rng(seed))
        for i in range(20):
            profiler.on_work("f", i * 0.5, i * 0.5 + 0.5)
        return profiler.snapshot(10.0).hist["f"]

    assert run(7) == run(7)


def test_invalid_parameters():
    with pytest.raises(ValidationError):
        SamplingProfiler(sample_period=0.0)
    with pytest.raises(ValidationError):
        SamplingProfiler(jitter_sigma=-0.1)
