"""DBSCAN (the paper's rejected alternative) sanity checks."""

import numpy as np
import pytest

from repro.core.dbscan import NOISE, dbscan, suggest_eps
from repro.util.errors import ValidationError


def blobs():
    rng = np.random.default_rng(0)
    a = rng.normal((0, 0), 0.1, size=(20, 2))
    b = rng.normal((10, 10), 0.1, size=(20, 2))
    return np.vstack([a, b])


def test_two_blobs_two_clusters():
    result = dbscan(blobs(), eps=0.5, min_samples=3)
    assert result.n_clusters == 2
    labels_a = set(result.labels[:20].tolist())
    labels_b = set(result.labels[20:].tolist())
    assert labels_a.isdisjoint(labels_b)


def test_outlier_marked_noise():
    points = np.vstack([blobs(), [[100.0, 100.0]]])
    result = dbscan(points, eps=0.5, min_samples=3)
    assert result.labels[-1] == NOISE


def test_eps_too_small_all_noise():
    result = dbscan(blobs(), eps=1e-9, min_samples=3)
    assert result.n_clusters == 0
    assert (result.labels == NOISE).all()


def test_eps_huge_single_cluster():
    result = dbscan(blobs(), eps=1e6, min_samples=3)
    assert result.n_clusters == 1


def test_cluster_indices():
    result = dbscan(blobs(), eps=0.5, min_samples=3)
    total = sum(result.cluster_indices(c).size for c in range(result.n_clusters))
    assert total == 40


def test_validation():
    with pytest.raises(ValidationError):
        dbscan(blobs(), eps=0.0)
    with pytest.raises(ValidationError):
        dbscan(blobs(), eps=1.0, min_samples=0)
    with pytest.raises(ValidationError):
        dbscan(np.zeros(5), eps=1.0)


def test_suggest_eps_reasonable():
    eps = suggest_eps(blobs())
    assert 0.0 < eps < 1.0
    result = dbscan(blobs(), eps=suggest_eps(blobs(), quantile=0.9) * 3,
                    min_samples=3)
    assert result.n_clusters == 2


def test_suggest_eps_needs_points():
    with pytest.raises(ValidationError):
        suggest_eps(np.zeros((1, 2)))


def test_suggest_eps_with_duplicates():
    points = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
    assert suggest_eps(points) > 0.0
