"""The shared on-disk naming module (``repro.store.layout``)."""

import os

import pytest

from repro.store import layout
from repro.util.errors import ValidationError


# ----------------------------------------------------------------------
# atomic-write temp names
# ----------------------------------------------------------------------
def test_tmp_path_is_sibling_and_recognizable(tmp_path):
    target = tmp_path / "MANIFEST.isegm"
    tmp = layout.tmp_path_for(target)
    assert tmp.parent == target.parent
    assert layout.is_tmp_name(tmp.name)
    assert not layout.is_tmp_name(target.name)
    assert str(os.getpid()) in tmp.name


# ----------------------------------------------------------------------
# loose sample names
# ----------------------------------------------------------------------
def test_loose_sample_name_round_trip():
    name = layout.loose_sample_name(3, 12)
    assert name == "gmon-r003-i00012.gmon"
    assert layout.parse_loose_sample(name) == (3, 12)


def test_loose_sample_rejects_foreign_names():
    assert layout.parse_loose_sample("gmon-rxxx-iyyyyy.gmon") is None
    assert layout.parse_loose_sample("README.txt") is None
    with pytest.raises(ValidationError):
        layout.loose_sample_name(-1, 0)


# ----------------------------------------------------------------------
# segment names
# ----------------------------------------------------------------------
def test_segment_name_round_trip():
    name = layout.segment_name(7, 1)
    assert name == "seg-00000007-t1.npz"
    assert layout.parse_segment(name) == (7, 1)
    assert layout.parse_segment("seg-1-t1.npz") is None


def test_sanitize_stream_escapes_path_hazards():
    assert layout.sanitize_stream("app-r0") == "app-r0"
    escaped = layout.sanitize_stream("job/0:a")
    assert "/" not in escaped and ":" not in escaped
    with pytest.raises(ValidationError):
        layout.sanitize_stream("")


def test_sanitize_stream_is_injective_on_non_ascii():
    # Regression: the old ord()-based escape mapped every codepoint to
    # "%XX" modulo 256, so "€x" (U+20AC -> 0xac... truncated) collided
    # with " acx".  Per-UTF-8-byte escaping keeps distinct ids distinct.
    assert layout.sanitize_stream("€x") != layout.sanitize_stream(" acx")
    assert layout.sanitize_stream("€x") == "%e2%82%acx"
    adversarial = ["€x", " acx", "%20acx", "¬-x", "ā", "%101", "á%"]
    escaped = [layout.sanitize_stream(s) for s in adversarial]
    assert len(set(escaped)) == len(adversarial)


def test_sanitize_stream_injective_over_codepoint_sweep():
    # Property sweep: every escaped name is unique and filesystem-safe.
    ids = [chr(cp) + "x" for cp in range(0x20, 0x500, 7)]
    escaped = [layout.sanitize_stream(s) for s in ids]
    assert len(set(escaped)) == len(ids)
    for name in escaped:
        assert "/" not in name and "\\" not in name
        assert all(ord(c) < 0x80 for c in name)


def test_sanitize_stream_ascii_safe_chars_unchanged():
    for sid in ("app-r0", "job_3.phase", "A9-_.z"):
        assert layout.sanitize_stream(sid) == sid


# ----------------------------------------------------------------------
# versioned artifacts + GC
# ----------------------------------------------------------------------
def test_versioned_names_match_their_regexes():
    model = layout.versioned_model_name("app-r0", 3)
    ckpt = layout.versioned_checkpoint_name(12)
    assert layout.VERSIONED_MODEL_RE.match(model)
    assert layout.VERSIONED_CHECKPOINT_RE.match(ckpt)
    assert ckpt == "incprofd-00000012.ipckp"


def test_gc_versioned_keeps_newest_per_family(tmp_path):
    for version in range(1, 6):
        (tmp_path / layout.versioned_model_name("a", version)).write_bytes(b"m")
        (tmp_path / layout.versioned_checkpoint_name(version)).write_bytes(b"c")
    # A second model family rotates independently.
    (tmp_path / layout.versioned_model_name("b", 1)).write_bytes(b"m")
    # Unversioned files are never GC candidates.
    (tmp_path / "incprofd.ckpt").write_bytes(b"latest")

    deleted = layout.gc_versioned(tmp_path, keep=2)

    survivors = sorted(p.name for p in tmp_path.iterdir())
    assert layout.versioned_model_name("a", 5) in survivors
    assert layout.versioned_model_name("a", 4) in survivors
    assert layout.versioned_model_name("a", 3) not in survivors
    assert layout.versioned_checkpoint_name(5) in survivors
    assert layout.versioned_checkpoint_name(3) not in survivors
    assert layout.versioned_model_name("b", 1) in survivors  # under keep
    assert "incprofd.ckpt" in survivors
    assert len(deleted) == 6  # three model-a + three checkpoint versions


def test_gc_versioned_reaps_atomic_write_leftovers(tmp_path):
    stale = layout.tmp_path_for(tmp_path / "incprofd.ckpt")
    stale.write_bytes(b"torn")
    layout.gc_versioned(tmp_path, keep=2)
    assert not stale.exists()


def test_worker_dirname_is_path_safe():
    assert layout.worker_dirname("w0") == "worker-w0"
    with pytest.raises(ValidationError):
        layout.worker_dirname("")
    with pytest.raises(ValidationError):
        layout.worker_dirname("../evil")
