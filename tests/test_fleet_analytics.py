"""Fleet analytics: signatures, cohorts, anomalies, drift, dashboard.

Unit tests run everywhere; the end-to-end tests bind loopback sockets
and carry the ``socket`` marker (deselect with ``-m "not socket"``).
"""

import json
import random
import urllib.request

import numpy as np
import pytest

from repro.core.cohorts import CohortMatcher, signature_distance
from repro.core.online import NOVEL, OnlinePhaseTracker
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.fleet.analytics import (
    SIG_DIM,
    PhaseSignature,
    analyze_fleet_dir,
    analyze_signatures,
    cluster_signatures,
    detect_drift,
    flag_anomalies,
)
from repro.gprof.gmon import GmonData
from repro.service.dashboard import DashboardServer, render_dashboard_html
from repro.store.segments import SegmentStore
from repro.util.errors import ValidationError


def steady_signature(stream_id, n=60, phase=0, **kwargs):
    return PhaseSignature.from_phase_sequence(
        stream_id, [phase] * n, **kwargs)


def alternating_signature(stream_id, n=60, **kwargs):
    return PhaseSignature.from_phase_sequence(
        stream_id, [i % 2 for i in range(n)], **kwargs)


def jittered_signature(stream_id, seed, n=60):
    """Mostly phase 0 with a sprinkle of phase 1 — same family, but
    enough member-to-member spread for a non-degenerate cohort."""
    rng = random.Random(seed)
    seq = [1 if rng.random() < 0.08 else 0 for _ in range(n)]
    return PhaseSignature.from_phase_sequence(stream_id, seq)


# ----------------------------------------------------------------------
# signature construction
# ----------------------------------------------------------------------
def test_signature_from_phase_sequence_counts_everything():
    seq = [0, 0, 1, 1, 0, NOVEL]
    sig = PhaseSignature.from_phase_sequence("s", seq, refit_indices=[3])
    assert sig.n_intervals == 6
    assert sig.n_phases == 2  # NOVEL is not a phase
    assert sig.occupancy[0] == pytest.approx(3 / 6)
    assert sig.occupancy[1] == pytest.approx(2 / 6)
    assert sig.novel_share == pytest.approx(1 / 6)
    # 3 changes over 5 adjacent pairs, each a distinct edge.
    assert sig.transition_rate == pytest.approx(3 / 5)
    assert sig.transitions[(0, 1)] == pytest.approx(1 / 3)
    assert sig.transitions[(1, 0)] == pytest.approx(1 / 3)
    assert sig.transitions[(0, NOVEL)] == pytest.approx(1 / 3)
    assert sig.refit_count == 1 and sig.refit_indices == [3]
    assert sig.timeline == seq


def test_signature_from_tracker_matches_tracker_accessors():
    base = [40.0, 10.0, 5.0]
    snapshots = []
    cum = [0.0, 0.0, 0.0]
    for i in range(30):
        dominant = 0 if i < 15 else 1
        snap = GmonData(rank=0, timestamp=float(i + 1))
        for j in range(3):
            cum[j] += base[j] * (4.0 if j == dominant else 1.0)
            snap.add_ticks(f"f{j}", int(cum[j]))
        snapshots.append(snap)
    analysis = analyze_snapshots(
        snapshots, AnalysisConfig(kmax=3, drop_short_final=False))
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    for snap in snapshots:
        tracker.observe_snapshot(snap)
    sig = PhaseSignature.from_tracker("s", tracker, worker_id="w0")
    assert sig.n_intervals == len(tracker.phase_sequence())
    assert sig.model_version == tracker.model_version
    assert sig.worker_id == "w0"
    counts = tracker.phase_counts()
    for phase, count in counts.items():
        assert sig.occupancy[phase] == pytest.approx(
            count / sig.n_intervals)
    assert len(sig.centroid_norms) == len(tracker.centroids)


def test_signature_vector_is_fixed_length_and_bounded():
    for sig in (steady_signature("a"), alternating_signature("b"),
                PhaseSignature("empty")):
        vec = sig.vector()
        assert vec.shape == (SIG_DIM,)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0 + 1e-9)


def test_signature_obj_round_trips_through_json():
    sig = PhaseSignature.from_phase_sequence(
        "job/0", [0, 1, 1, NOVEL, 0], refit_indices=[2, 4],
        model_version=3, centroids=np.ones((2, 4)), worker_id="w1")
    clone = PhaseSignature.from_obj(json.loads(json.dumps(sig.to_obj())))
    assert clone == sig
    assert np.allclose(clone.vector(), sig.vector())


def test_signature_from_obj_rejects_garbage():
    with pytest.raises(ValidationError):
        PhaseSignature.from_obj({})  # no stream_id
    with pytest.raises(ValidationError):
        PhaseSignature.from_obj(
            {"stream_id": "s", "transitions": {"nonsense": 0.5}})
    with pytest.raises(ValidationError):
        PhaseSignature.from_obj({"stream_id": "s", "occupancy": {"0": "x"}})


def test_signature_distance_rejects_shape_mismatch():
    with pytest.raises(ValidationError):
        signature_distance(np.zeros(3), np.zeros(4))


# ----------------------------------------------------------------------
# cohorts
# ----------------------------------------------------------------------
def test_cluster_separates_workload_shapes():
    signatures = ([steady_signature(f"steady-{i}") for i in range(3)]
                  + [alternating_signature(f"alt-{i}") for i in range(3)])
    labels, centroids = cluster_signatures(signatures)
    steady = {labels[i] for i in range(3)}
    alt = {labels[i] for i in range(3, 6)}
    assert not (steady & alt)
    assert centroids.shape[1] == SIG_DIM


def test_cluster_single_stream_is_one_cohort():
    labels, _ = cluster_signatures([steady_signature("only")])
    assert labels == [0]
    labels, centroids = cluster_signatures([])
    assert labels == [] and centroids.shape == (0, SIG_DIM)


def test_cohort_ids_stable_across_passes():
    matcher = CohortMatcher()
    signatures = ([steady_signature(f"steady-{i}") for i in range(3)]
                  + [alternating_signature(f"alt-{i}") for i in range(3)])
    first, _ = cluster_signatures(signatures, matcher=matcher)
    # Second pass: same population, streams listed in a different order.
    second, _ = cluster_signatures(list(reversed(signatures)),
                                   matcher=matcher)
    by_stream_first = {s.stream_id: l for s, l in zip(signatures, first)}
    by_stream_second = {s.stream_id: l
                        for s, l in zip(reversed(signatures), second)}
    assert by_stream_first == by_stream_second


# ----------------------------------------------------------------------
# anomalies
# ----------------------------------------------------------------------
def test_flag_anomalies_flags_the_outlier():
    signatures = [jittered_signature(f"s{i}", seed=i) for i in range(8)]
    signatures.append(alternating_signature("weird"))
    labels = [0] * len(signatures)  # force one cohort
    flagged = flag_anomalies(signatures, labels, threshold=1.5)
    assert flagged and flagged[0]["stream_id"] == "weird"
    assert flagged[0]["cohort"] == 0
    assert flagged[0]["distance"] > flagged[0]["cohort_mean"]


def test_flag_anomalies_needs_a_distribution():
    # Two-member cohorts carry no spread to diverge from.
    signatures = [steady_signature("a"), alternating_signature("b")]
    assert flag_anomalies(signatures, [0, 0]) == []
    with pytest.raises(ValidationError):
        flag_anomalies(signatures, [0, 0], threshold=0.0)


# ----------------------------------------------------------------------
# drift events
# ----------------------------------------------------------------------
def test_detect_drift_refit_wave():
    recent = [steady_signature(f"r{i}", n=100, refit_indices=[95])
              for i in range(3)]
    quiet = steady_signature("old", n=100, refit_indices=[10])
    events = detect_drift(recent + [quiet], [0, 0, 0, 0], window=20)
    assert len(events) == 1
    event = events[0]
    assert event["kind"] == "refit-wave" and event["cohort"] == 0
    assert event["streams"] == ["r0", "r1", "r2"]
    assert event["share"] == pytest.approx(3 / 4)


def test_detect_drift_novel_burst():
    burst = [PhaseSignature.from_phase_sequence(
        f"b{i}", [0] * 40 + [NOVEL if j % 2 else 0 for j in range(20)])
        for i in range(2)]
    events = detect_drift(burst, [0, 0], window=20, novel_threshold=0.4)
    assert [e["kind"] for e in events] == ["novel-burst"]
    assert events[0]["streams"] == ["b0", "b1"]


def test_detect_drift_one_stream_is_not_a_fleet_event():
    lone = steady_signature("solo", n=100, refit_indices=[99])
    calm = [steady_signature(f"c{i}", n=100) for i in range(3)]
    assert detect_drift([lone] + calm, [0, 0, 0, 0], window=10) == []
    with pytest.raises(ValidationError):
        detect_drift([lone], [0], window=0)


# ----------------------------------------------------------------------
# the full report
# ----------------------------------------------------------------------
def test_analyze_signatures_report_shape():
    signatures = ([steady_signature(f"steady-{i}") for i in range(3)]
                  + [alternating_signature(f"alt-{i}") for i in range(3)])
    report = analyze_signatures(signatures)
    assert report["n_streams"] == 6
    assert report["n_cohorts"] >= 2
    assert set(report["assignments"]) == {s.stream_id for s in signatures}
    sizes = sum(c["size"] for c in report["cohorts"])
    assert sizes == 6
    for cohort in report["cohorts"]:
        assert set(cohort["streams"]) <= set(report["assignments"])
    assert len(report["signatures"]) == 6
    json.dumps(report)  # wire-ready

    slim = analyze_signatures(signatures, include_signatures=False)
    assert "signatures" not in slim


def test_analyze_signatures_empty_population():
    report = analyze_signatures([])
    assert report["n_streams"] == 0 and report["n_cohorts"] == 0
    assert report["cohorts"] == [] and report["anomalies"] == []


# ----------------------------------------------------------------------
# offline: signatures from interval stores
# ----------------------------------------------------------------------
def make_store_series(n, pattern, funcs=12, seed=5):
    rng = random.Random(seed)
    cum = [0] * funcs
    out = []
    for i in range(n):
        dominant = pattern(i) % 4
        for j in range(funcs):
            if j % 4 == dominant:
                cum[j] += 40 + rng.randint(-2, 2)
            else:
                cum[j] += 5
        snap = GmonData(rank=0, timestamp=float(i + 1))
        for j in range(funcs):
            snap.add_ticks(f"work.f{j:02d}", cum[j])
        out.append(snap)
    return out


def test_analyze_fleet_dir_replays_worker_archives(tmp_path):
    patterns = {"steady": lambda i: 0, "alternating": lambda i: 1 + i % 2}
    for worker, kind in (("w0", "steady"), ("w1", "alternating")):
        store_dir = tmp_path / f"worker-{worker}" / "store"
        with SegmentStore(store_dir) as store:
            for s in range(2):
                series = make_store_series(60, patterns[kind], seed=s)
                for i, snap in enumerate(series):
                    store.append(f"{kind}-{s}", i, snap)
    report = analyze_fleet_dir(tmp_path, warmup=6)
    assert report["n_streams"] == 4
    assert len(report["stores"]) == 2
    assert report["skipped"] == []
    assigned = report["assignments"]
    steady = {assigned["steady-0"], assigned["steady-1"]}
    alt = {assigned["alternating-0"], assigned["alternating-1"]}
    assert not (steady & alt)
    # Worker identity rides along from the directory layout.
    by_id = {s["stream_id"]: s for s in report["signatures"]}
    assert by_id["steady-0"]["worker_id"] == "w0"
    assert by_id["alternating-0"]["worker_id"] == "w1"


def test_analyze_fleet_dir_without_archives_is_a_typed_error(tmp_path):
    with pytest.raises(ValidationError, match="archive-intervals"):
        analyze_fleet_dir(tmp_path)


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
def test_render_dashboard_lists_cohorts_and_events():
    signatures = ([jittered_signature(f"s{i}", seed=i) for i in range(4)]
                  + [alternating_signature("weird")])
    report = analyze_signatures(signatures, anomaly_threshold=1.0)
    html = render_dashboard_html(report)
    for sig in signatures:
        assert sig.stream_id in html
    assert "cohort" in html.lower()
    assert "analytics.json" in html


def test_render_dashboard_empty_report():
    html = render_dashboard_html(analyze_signatures([]))
    assert "no streams" in html.lower()


@pytest.mark.socket
def test_dashboard_server_serves_report():
    report = analyze_signatures([steady_signature("a"),
                                 alternating_signature("b")])
    with DashboardServer(lambda: report, port=0) as srv:
        with urllib.request.urlopen(srv.url, timeout=10) as resp:
            assert resp.status == 200
            assert b"incprofd" in resp.read()
        with urllib.request.urlopen(srv.url + "analytics.json",
                                    timeout=10) as resp:
            assert resp.status == 200
            fetched = json.loads(resp.read().decode())
        assert fetched["n_streams"] == 2
        with urllib.request.urlopen(srv.url + "healthz", timeout=10) as resp:
            assert resp.status == 200
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url + "nope", timeout=10)
        assert err.value.code == 404


# ----------------------------------------------------------------------
# live daemon end to end (the fleet_analytics verb)
# ----------------------------------------------------------------------
@pytest.mark.socket
def test_daemon_fleet_analytics_verb_clusters_live_streams():
    from repro.service import (
        Endpoint, PhaseClient, PhaseMonitorServer, ServerConfig,
        SyntheticLoadGenerator, publish_samples,
    )

    generator = SyntheticLoadGenerator()
    analysis = analyze_snapshots(
        generator.stream(0, 24), AnalysisConfig(kmax=4,
                                                drop_short_final=False))
    template = OnlinePhaseTracker.from_analysis(analysis)
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=2)
    patterns = {"steady": lambda i: 0, "alternating": lambda i: 1 + i % 2}
    with PhaseMonitorServer(template, config) as server:
        for kind, pattern in patterns.items():
            for i in range(3):
                report = publish_samples(
                    server.endpoint, f"{kind}-{i}",
                    generator.stream(i, 40, pattern=pattern))
                assert report.error == ""
        with PhaseClient(server.endpoint) as client:
            reply = client.fleet_analytics()
        stats = server.stats()
    assert reply.ok
    data = reply.data
    # Publishers already said bye — the retained final signatures must
    # keep the finished streams visible to analytics.
    assert data["n_streams"] == 6
    assigned = data["assignments"]
    steady = {assigned[f"steady-{i}"] for i in range(3)}
    alt = {assigned[f"alternating-{i}"] for i in range(3)}
    assert not (steady & alt)
    # The pass summary rides in stats() for exposition.
    assert stats["analytics"]["streams"] == 6
    assert stats["analytics"]["cohorts"] == data["n_cohorts"]
