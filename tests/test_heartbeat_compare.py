"""Run-to-run heartbeat comparison and regression flagging."""

import numpy as np
import pytest

from repro.heartbeat.analysis import HeartbeatSeries
from repro.heartbeat.compare import compare_series
from repro.util.errors import ValidationError


def make_series(durations_by_id, counts_value=1.0, interval=1.0, jitter=0.0, seed=0):
    """Build a series with constant counts and given per-interval durations."""
    rng = np.random.default_rng(seed)
    n = max(len(v) for v in durations_by_id.values())
    series = HeartbeatSeries(n_intervals=n, interval=interval,
                             labels={i: f"site{i}" for i in durations_by_id})
    for hb_id, durations in durations_by_id.items():
        arr = np.asarray(durations, dtype=float)
        if jitter:
            arr = arr * (1.0 + rng.normal(0, jitter, size=arr.shape))
        series.durations[hb_id] = arr
        series.counts[hb_id] = np.where(arr > 0, counts_value, 0.0)
    return series


def test_identical_runs_healthy():
    base = make_series({1: [0.1] * 20}, jitter=0.02, seed=1)
    cand = make_series({1: [0.1] * 20}, jitter=0.02, seed=2)
    report = compare_series(base, cand)
    assert report.is_healthy()
    assert report.deltas[0].duration_ratio == pytest.approx(1.0, abs=0.05)


def test_slowdown_flagged():
    base = make_series({1: [0.1] * 30}, jitter=0.02, seed=3)
    cand = make_series({1: [0.15] * 30}, jitter=0.02, seed=4)  # 50% slower
    report = compare_series(base, cand)
    regressions = report.regressions()
    assert [d.hb_id for d in regressions] == [1]
    assert regressions[0].duration_ratio == pytest.approx(1.5, abs=0.1)


def test_small_slowdown_within_tolerance_ok():
    base = make_series({1: [0.1] * 30}, jitter=0.03, seed=5)
    cand = make_series({1: [0.104] * 30}, jitter=0.03, seed=6)  # 4%: under 10% tol
    assert compare_series(base, cand).is_healthy()


def test_large_but_noisy_shift_needs_zscore():
    """A 20% shift inside huge baseline variance is not statistically
    supported -> not flagged."""
    base = make_series({1: [0.1] * 40}, jitter=0.5, seed=7)
    cand = make_series({1: [0.12] * 40}, jitter=0.5, seed=8)
    report = compare_series(base, cand, zscore_threshold=3.0)
    assert report.is_healthy()


def test_speedup_not_a_regression():
    base = make_series({1: [0.2] * 20}, jitter=0.02, seed=9)
    cand = make_series({1: [0.1] * 20}, jitter=0.02, seed=10)
    assert compare_series(base, cand).is_healthy()


def test_multiple_heartbeats_independent():
    base = make_series({1: [0.1] * 20, 2: [0.5] * 20}, jitter=0.02, seed=11)
    cand = make_series({1: [0.1] * 20, 2: [0.9] * 20}, jitter=0.02, seed=12)
    report = compare_series(base, cand)
    assert [d.hb_id for d in report.regressions()] == [2]


def test_disjoint_ids_rejected():
    base = make_series({1: [0.1] * 5})
    cand = make_series({2: [0.1] * 5})
    with pytest.raises(ValidationError):
        compare_series(base, cand)


def test_extra_ids_ignored():
    base = make_series({1: [0.1] * 10, 3: [0.2] * 10})
    cand = make_series({1: [0.1] * 10})
    report = compare_series(base, cand)
    assert [d.hb_id for d in report.deltas] == [1]


def test_rate_ratio():
    base = make_series({1: [0.1] * 10}, counts_value=2.0)
    cand = make_series({1: [0.1] * 10}, counts_value=4.0)
    delta = compare_series(base, cand).deltas[0]
    assert delta.rate_ratio == pytest.approx(2.0)


def test_report_table_renders():
    base = make_series({1: [0.1] * 30}, jitter=0.02, seed=13)
    cand = make_series({1: [0.2] * 30}, jitter=0.02, seed=14)
    text = compare_series(base, cand).to_table().render()
    assert "REGRESSION" in text
    assert "site1" in text


def test_silent_heartbeat_zero_stats():
    base = make_series({1: [0.0] * 10})
    cand = make_series({1: [0.0] * 10})
    report = compare_series(base, cand)
    assert report.deltas[0].baseline_duration == 0.0
    assert report.is_healthy()
