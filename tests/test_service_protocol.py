"""Wire-format round-trips and malformed-input rejection."""

import io
import json
import struct

import pytest

from repro.gprof.gmon import GmonData, dumps_gmon
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Reply,
    SnapshotMsg,
    decode_message,
    encode_message,
    read_message,
    write_message,
)
from repro.util.errors import ProtocolError


def gmon(ticks: int = 5) -> GmonData:
    data = GmonData(rank=3, timestamp=2.5)
    data.add_ticks("kernel", ticks)
    data.add_arc("main", "kernel", 2)
    return data


def roundtrip(msg):
    return decode_message(encode_message(msg))


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_hello_roundtrip():
    msg = roundtrip(Hello(stream_id="node-7", app="graph500", rank=7))
    assert msg == Hello(stream_id="node-7", app="graph500", rank=7)


def test_snapshot_roundtrip_preserves_gmon():
    msg = roundtrip(SnapshotMsg(stream_id="s", seq=11, gmon=gmon()))
    assert msg.seq == 11
    assert msg.gmon.hist == {"kernel": 5}
    assert msg.gmon.arcs == {("main", "kernel"): 2}
    assert msg.gmon.rank == 3
    assert msg.gmon.timestamp == 2.5


def test_heartbeat_roundtrip():
    record = HeartbeatRecord(rank=1, hb_id=2, interval_index=3, time=4.0,
                             count=5.0, avg_duration=0.25, min_duration=0.1,
                             max_duration=0.4)
    msg = roundtrip(HeartbeatMsg(stream_id="s", records=[record]))
    assert msg.records == [record]


def test_control_and_reply_roundtrip():
    assert roundtrip(Control(command="stats", args={"verbose": True})) == \
        Control(command="stats", args={"verbose": True})
    reply = roundtrip(Reply(ok=False, error="nope", data={"outcome": "rejected"}))
    assert not reply.ok and reply.error == "nope"
    assert reply.data == {"outcome": "rejected"}


def test_bye_roundtrip():
    assert roundtrip(Bye(stream_id="s")) == Bye(stream_id="s")


def test_stream_read_write_multiple_messages():
    buf = io.BytesIO()
    write_message(buf, Hello(stream_id="a"))
    write_message(buf, Bye(stream_id="a"))
    buf.seek(0)
    assert read_message(buf) == Hello(stream_id="a")
    assert read_message(buf) == Bye(stream_id="a")
    assert read_message(buf) is None  # clean EOF


# ----------------------------------------------------------------------
# malformed input
# ----------------------------------------------------------------------
def frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


def test_truncated_prefix_rejected():
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(b"\x00\x00"))


def test_truncated_payload_rejected():
    blob = frame(b'{"v":1,"type":"bye"}')[:-3]
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(blob))


def test_oversized_frame_rejected_before_read():
    blob = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(blob + b"x"))


def test_bad_json_rejected():
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(b"{not json")))


def test_non_object_payload_rejected():
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(b"[1,2,3]")))


def test_unknown_type_rejected():
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "teleport"}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_wrong_version_rejected():
    payload = json.dumps({"v": 99, "type": "bye"}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_missing_field_rejected():
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "hello"}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_bad_base64_snapshot_rejected():
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "snapshot",
                          "stream_id": "s", "seq": 0, "gmon": "!!!"}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_corrupt_gmon_inside_valid_base64_rejected():
    import base64
    truncated = base64.b64encode(dumps_gmon(gmon())[:10]).decode()
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "snapshot",
                          "stream_id": "s", "seq": 0,
                          "gmon": truncated}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_bool_is_not_an_int_field():
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "snapshot",
                          "stream_id": "s", "seq": True, "gmon": ""}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


def test_heartbeat_bad_record_rejected():
    payload = json.dumps({"v": PROTOCOL_VERSION, "type": "heartbeat",
                          "stream_id": "s", "records": [{"rank": 0}]}).encode()
    with pytest.raises(ProtocolError):
        read_message(io.BytesIO(frame(payload)))


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
def test_endpoint_parse_tcp():
    ep = Endpoint.parse("10.0.0.5:9271")
    assert (ep.kind, ep.host, ep.port) == ("tcp", "10.0.0.5", 9271)


def test_endpoint_parse_unix():
    ep = Endpoint.parse("unix:/tmp/incprofd.sock")
    assert (ep.kind, ep.path) == ("unix", "/tmp/incprofd.sock")


def test_endpoint_parse_garbage_rejected():
    with pytest.raises(ProtocolError):
        Endpoint.parse("not-an-endpoint")
    with pytest.raises(ProtocolError):
        Endpoint(kind="carrier-pigeon")
