"""Heartbeat accumulator: per-interval aggregation semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heartbeat.accumulator import HeartbeatAccumulator, HeartbeatRecord
from repro.util.errors import ValidationError


def test_heartbeat_attributed_to_ending_interval():
    """A heartbeat belongs to the interval its end falls in (paper Fig 2)."""
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, t_begin=0.5, t_end=1.5)  # spans boundary, ends in interval 1
    records = acc.finalize(now=3.0)
    assert len(records) == 1
    assert records[0].interval_index == 1
    assert records[0].avg_duration == pytest.approx(1.0)


def test_counts_and_mean_duration_accumulate():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, 0.0, 0.1)
    acc.record(1, 0.2, 0.5)
    acc.record(2, 0.5, 0.6)
    records = acc.finalize(now=1.0)
    by_id = {r.hb_id: r for r in records}
    assert by_id[1].count == 2
    assert by_id[1].avg_duration == pytest.approx(0.2)
    assert by_id[2].count == 1


def test_no_per_heartbeat_records():
    """AppEKG's core property: one record per (interval, id), not per beat."""
    acc = HeartbeatAccumulator(interval=1.0)
    for i in range(1000):
        acc.record(1, i * 0.001, i * 0.001 + 0.0005)
    records = acc.finalize(now=1.0)
    assert len(records) == 1
    assert records[0].count == 1000


def test_quiet_intervals_produce_no_records():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, 0.1, 0.2)
    acc.record(1, 5.1, 5.2)
    records = acc.finalize(now=6.0)
    assert [r.interval_index for r in records] == [0, 5]


def test_sink_called_on_flush():
    seen = []
    acc = HeartbeatAccumulator(interval=1.0, sink=seen.append)
    acc.record(1, 0.1, 0.2)
    assert seen == []  # not yet flushed
    acc.record(1, 1.5, 1.6)  # crossing into interval 1 flushes interval 0
    assert len(seen) == 1 and seen[0].interval_index == 0


def test_record_validation():
    acc = HeartbeatAccumulator(interval=1.0)
    with pytest.raises(ValidationError):
        acc.record(1, 2.0, 1.0)
    with pytest.raises(ValidationError):
        HeartbeatAccumulator(interval=0.0)


def test_span_distributes_proportionally():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record_span(1, n=100, t0=0.0, t1=2.0)  # half in each interval
    records = acc.finalize(now=2.0)
    assert [r.interval_index for r in records] == [0, 1]
    assert records[0].count == pytest.approx(50.0)
    assert records[1].count == pytest.approx(50.0)
    assert records[0].avg_duration == pytest.approx(0.02)


def test_span_partial_overlap():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record_span(1, n=10, t0=0.75, t1=1.25)
    records = acc.finalize(now=2.0)
    counts = {r.interval_index: r.count for r in records}
    assert counts[0] == pytest.approx(5.0)
    assert counts[1] == pytest.approx(5.0)


def test_span_zero_length():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record_span(1, n=7, t0=0.5, t1=0.5)
    records = acc.finalize(now=1.0)
    assert records[0].count == pytest.approx(7.0)


def test_span_validation():
    acc = HeartbeatAccumulator(interval=1.0)
    with pytest.raises(ValidationError):
        acc.record_span(1, n=0, t0=0.0, t1=1.0)
    with pytest.raises(ValidationError):
        acc.record_span(1, n=5, t0=1.0, t1=0.5)


def test_duration_sum_property():
    record = HeartbeatRecord(rank=0, hb_id=1, interval_index=0, time=1.0,
                             count=4.0, avg_duration=0.25)
    assert record.duration_sum == pytest.approx(1.0)


def test_total_events_counted():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, 0.0, 0.1)
    acc.record_span(2, n=9, t0=0.0, t1=0.5)
    assert acc.total_events == 10


@settings(max_examples=50, deadline=None)
@given(
    beats=st.lists(
        st.tuples(st.integers(1, 3),
                  st.floats(0, 50, allow_nan=False),
                  st.floats(0, 2, allow_nan=False)),
        max_size=60,
    )
)
def test_accumulator_conservation_property(beats):
    """Total count and total duration are conserved through aggregation."""
    beats = sorted(((hb, t0, t0 + d) for hb, t0, d in beats), key=lambda b: b[2])
    acc = HeartbeatAccumulator(interval=1.0)
    for hb, t0, t1 in beats:
        acc.record(hb, t0, t1)
    records = acc.finalize(now=60.0)
    assert sum(r.count for r in records) == pytest.approx(len(beats))
    expected = sum(t1 - t0 for _hb, t0, t1 in beats)
    assert sum(r.duration_sum for r in records) == pytest.approx(expected, abs=1e-6)


def test_min_max_durations_tracked():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, 0.0, 0.1)
    acc.record(1, 0.2, 0.5)
    acc.record(1, 0.6, 0.65)
    records = acc.finalize(now=1.0)
    assert records[0].min_duration == pytest.approx(0.05)
    assert records[0].max_duration == pytest.approx(0.3)
    assert records[0].min_duration <= records[0].avg_duration <= records[0].max_duration


def test_min_max_reset_per_interval():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record(1, 0.0, 0.5)   # interval 0: duration 0.5
    acc.record(1, 1.0, 1.1)   # interval 1: duration 0.1
    records = acc.finalize(now=2.0)
    assert records[0].max_duration == pytest.approx(0.5)
    assert records[1].max_duration == pytest.approx(0.1)


def test_span_min_max_is_per_beat_duration():
    acc = HeartbeatAccumulator(interval=1.0)
    acc.record_span(1, n=100, t0=0.0, t1=0.5)
    records = acc.finalize(now=1.0)
    assert records[0].min_duration == pytest.approx(0.005)
    assert records[0].max_duration == pytest.approx(0.005)


# ----------------------------------------------------------------------
# min_duration sentinel + merge_records
# ----------------------------------------------------------------------
def _rec(hb_id=1, interval_index=0, count=1.0, avg=0.2, low=None, high=0.4,
         rank=0):
    from repro.heartbeat.accumulator import HeartbeatRecord

    return HeartbeatRecord(rank=rank, hb_id=hb_id,
                           interval_index=interval_index, time=1.0,
                           count=count, avg_duration=avg,
                           min_duration=low, max_duration=high)


def test_min_duration_defaults_to_none_sentinel():
    rec = _rec()
    assert rec.min_duration is None
    assert rec.min_duration_or_inf() == float("inf")


def test_csv_round_trips_none_minimum(tmp_path):
    """The not-observed sentinel survives the CSV sink and loader."""
    from repro.heartbeat.output import CSVSink, read_csv_records

    path = tmp_path / "none.csv"
    with CSVSink(path) as sink:
        sink(_rec(low=None))
    loaded = read_csv_records(path)
    assert loaded[0].min_duration is None
    assert loaded[0].max_duration == pytest.approx(0.4)


def test_merge_records_none_minimum_is_identity():
    """An unobserved minimum must never clobber a real one to 0."""
    from repro.heartbeat.accumulator import merge_records

    merged = merge_records([
        _rec(rank=0, count=2.0, avg=0.2, low=None, high=0.3),
        _rec(rank=1, count=2.0, avg=0.4, low=0.15, high=0.5),
    ])
    assert len(merged) == 1
    row = merged[0]
    assert row.count == pytest.approx(4.0)
    assert row.avg_duration == pytest.approx(0.3)  # count-weighted
    assert row.min_duration == pytest.approx(0.15)  # None is identity
    assert row.max_duration == pytest.approx(0.5)
    assert row.rank == -1  # differing ranks collapse to the merged marker


def test_merge_records_all_none_stays_none():
    from repro.heartbeat.accumulator import merge_records

    merged = merge_records([_rec(rank=0, low=None), _rec(rank=1, low=None)])
    assert merged[0].min_duration is None


def test_merge_records_keeps_distinct_cells_apart():
    from repro.heartbeat.accumulator import merge_records

    merged = merge_records([
        _rec(hb_id=1, interval_index=0, low=0.1),
        _rec(hb_id=1, interval_index=1, low=0.2),
        _rec(hb_id=2, interval_index=0, low=0.3),
    ])
    assert len(merged) == 3
    # Output is interval-major: the non-decreasing interval order every
    # downstream sink expects.
    assert [(r.interval_index, r.hb_id) for r in merged] == [
        (0, 1), (0, 2), (1, 1)]
