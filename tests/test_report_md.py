"""Markdown reproduction report."""

import pytest

from repro.apps import paper_app_names
from repro.eval.report_md import render_markdown_report, write_markdown_report


@pytest.fixture(scope="module")
def report(experiments):
    return render_markdown_report(experiments)


def test_report_has_all_sections(report):
    assert report.startswith("# IncProf reproduction report")
    assert "## Table I — overview" in report
    for name in paper_app_names():
        assert f"## {name}" in report


def test_report_contains_paper_and_ours(report):
    assert "TABLE I — paper vs reproduced" in report
    assert "(paper)" in report


def test_report_mentions_extensions(report):
    assert "Call-graph lifts" in report
    assert "Phase merging" in report
    assert "Outliers" in report


def test_report_figure_summaries(report):
    for number in (2, 3, 4, 5, 6):
        assert f"Figure {number} summary" in report


def test_write_report(tmp_path, experiments):
    path = write_markdown_report(tmp_path / "REPORT.md", experiments)
    assert path.exists()
    assert path.read_text().startswith("# IncProf")


def test_cli_report_all(tmp_path, capsys, experiments):
    from repro.cli import main

    out = tmp_path / "r.md"
    assert main(["report-all", "--out", str(out)]) == 0
    assert out.exists()
