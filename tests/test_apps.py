"""Workload models: registry, structure, and live-kernel correctness."""

import numpy as np
import pytest

from repro.apps import app_names, get_app, paper_app_names, register_app
from repro.apps.base import AppModel
from repro.apps import graph500, lammps, gadget2, miniamr, minife
from repro.core.model import InstType
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import AppError


def test_registry_lists_all_five_in_paper_order():
    assert paper_app_names() == ["graph500", "minife", "miniamr", "lammps", "gadget2"]
    # The full registry leads with the paper's five; extras follow.
    assert app_names()[:5] == paper_app_names()
    assert "synthetic" in app_names()


def test_get_app_unknown():
    with pytest.raises(AppError):
        get_app("nope")


def test_duplicate_registration_rejected():
    class Dup(AppModel):
        name = "graph500"

        def build_main(self, scale=1.0):
            raise NotImplementedError

        @property
        def manual_sites(self):
            return ()

    with pytest.raises(AppError):
        register_app(Dup)


def test_reregistering_same_class_is_idempotent():
    """Module reloads re-run @register_app on the same class; that must
    not raise — only a genuinely different class claiming the name does."""
    import importlib

    from repro.apps.graph500 import Graph500

    assert register_app(Graph500) is Graph500  # literal re-registration
    before = app_names()
    importlib.reload(graph500)  # decorator runs again on a fresh class
    assert app_names() == before
    assert get_app("graph500").name == "graph500"
    # Restore the canonical module state for other tests.
    importlib.reload(graph500)


def test_registry_describes_kinds():
    from repro.apps import describe_apps

    rows = {row["name"]: row for row in describe_apps()}
    assert rows["graph500"]["kind"] == "paper"
    assert rows["synthetic"]["kind"] == "synthetic"
    assert any(name.startswith("scenario:") and row["kind"] == "generated"
               for name, row in rows.items())
    assert all(row["description"] for row in rows.values())


def test_nameless_app_rejected():
    class NoName(AppModel):
        def build_main(self, scale=1.0):
            raise NotImplementedError

        @property
        def manual_sites(self):
            return ()

    with pytest.raises(AppError):
        NoName()


@pytest.mark.parametrize("name", ["graph500", "minife", "miniamr", "lammps", "gadget2"])
def test_every_app_runs_small_scale(name):
    app = get_app(name)
    result = Session(app, SessionConfig(ranks=1, scale=0.1)).run()
    assert result.runtime > 0
    assert len(result.samples(0)) >= 2
    # Manual sites name functions, and every body/loop type is valid.
    for site in app.manual_sites:
        assert site.inst_type in (InstType.BODY, InstType.LOOP)


@pytest.mark.parametrize("name", ["graph500", "minife", "miniamr", "lammps", "gadget2"])
def test_manual_site_functions_exist_in_profile(name):
    """Manual sites refer to functions the workload actually exercises."""
    app = get_app(name)
    result = Session(app, SessionConfig(ranks=1, scale=0.2)).run()
    final = result.samples(0)[-1]
    profiled = set(final.functions())
    for site in app.manual_sites:
        assert site.function in profiled


def test_describe():
    info = get_app("lammps").describe()
    assert info["name"] == "lammps"
    assert info["default_ranks"] == 16
    assert info["has_live_mode"]


def test_scale_shrinks_runtime():
    app = get_app("minife")
    small = Session(app, SessionConfig(ranks=1, scale=0.05)).run().runtime
    bigger = Session(app, SessionConfig(ranks=1, scale=0.15)).run().runtime
    assert small < bigger


# ----------------------------------------------------------------------
# live kernels: genuinely correct computations
# ----------------------------------------------------------------------
def test_graph500_live_bfs_and_validation():
    edges = graph500.live_generate_kronecker_range(7, 8, seed=3)
    n = 1 << 7
    indptr, adjacency = graph500.live_make_graph_data_structure(edges, n)
    degrees = np.diff(indptr)
    root = int(np.argmax(degrees))
    parent = graph500.live_run_bfs(indptr, adjacency, root)
    assert parent[root] == root
    assert (parent >= 0).sum() > 1  # actually reached something
    assert graph500.live_validate_bfs_result(indptr, adjacency, parent, root)


def test_graph500_live_validation_rejects_corruption():
    edges = graph500.live_generate_kronecker_range(7, 8, seed=3)
    n = 1 << 7
    indptr, adjacency = graph500.live_make_graph_data_structure(edges, n)
    root = int(np.argmax(np.diff(indptr)))
    parent = graph500.live_run_bfs(indptr, adjacency, root)
    reached = np.nonzero(parent >= 0)[0]
    victim = int(reached[reached != root][0])
    parent[victim] = victim  # claim it is its own parent: invalid tree
    assert not graph500.live_validate_bfs_result(indptr, adjacency, parent, root)


def test_minife_live_cg_solves_system():
    x, iters, residual = minife.live_main(0.8)
    assert residual < 1e-6
    assert np.isfinite(x).all()
    assert iters > 1


def test_minife_live_matvec_symmetric_operator():
    rows, cols = minife.live_generate_matrix_structure(4, 4, 4)
    n = 64
    indptr, cols_s, values = minife.live_init_matrix(rows, cols, n)
    minife.live_perform_element_loop(indptr, cols_s, values, n)
    matvec = minife.live_make_local_matrix(indptr, cols_s, values)
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)
    # Symmetry: <Ax, y> == <x, Ay> for the assembled Laplacian.
    assert x @ matvec(y) == pytest.approx(y @ matvec(x), rel=1e-9)


def test_miniamr_live_stencil_preserves_mean():
    block = np.random.default_rng(0).uniform(1, 2, size=(8, 8, 8))
    out = miniamr.live_stencil_calc(block)
    # Averaging stencil: interior values stay within the block's range.
    assert out[1:-1, 1:-1, 1:-1].min() >= block.min() - 1e-12
    assert out[1:-1, 1:-1, 1:-1].max() <= block.max() + 1e-12


def test_miniamr_live_pack_unpack_roundtrip():
    block = np.random.default_rng(1).normal(size=(6, 6, 6))
    buf = miniamr.live_pack_block(block)
    clone = block.copy()
    miniamr.live_unpack_block(clone, buf)
    assert np.allclose(clone, block)  # self-exchange is identity


def test_miniamr_live_refinement_creates_children():
    blocks = {(0, 0, 0, 0): np.ones((8, 8, 8))}
    miniamr.live_allocate(blocks, (0, 0, 0, 0))
    assert len(blocks) == 8
    assert all(key[0] == 1 for key in blocks)
    assert all(b.shape == (8, 8, 8) for b in blocks.values())


def test_lammps_live_forces_newtons_third_law():
    # A jittered lattice avoids near-overlapping atoms whose huge pair
    # forces would turn exact cancellation into float round-off noise.
    rng = np.random.default_rng(2)
    grid = np.stack(np.meshgrid(*[np.arange(4)] * 3), axis=-1).reshape(-1, 3)
    box = 4 * 1.8
    positions = grid * 1.8 + rng.uniform(-0.2, 0.2, size=grid.shape) + 0.9
    pairs = lammps.live_npair_build(positions, box, cutoff=2.5)
    forces = lammps.live_pair_lj_cut_compute(positions, pairs, box)
    scale = np.abs(forces).max() or 1.0
    assert np.abs(forces.sum(axis=0)).max() / scale < 1e-10


def test_lammps_live_neighbor_list_complete():
    """Cell-list pairs match the brute-force pair set."""
    rng = np.random.default_rng(4)
    box = 6.0
    positions = rng.uniform(0, box, size=(40, 3))
    cutoff = 2.0
    i, j = lammps.live_npair_build(positions, box, cutoff)
    found = set(zip(i.tolist(), j.tolist()))
    brute = set()
    for a in range(40):
        for b in range(a + 1, 40):
            delta = positions[b] - positions[a]
            delta -= box * np.round(delta / box)
            if (delta @ delta) < cutoff * cutoff:
                brute.add((a, b))
    assert found == brute


def test_lammps_live_velocity_zero_momentum():
    v = lammps.live_velocity_create(100, temperature=1.0)
    assert np.allclose(v.mean(axis=0), 0.0, atol=1e-12)


def test_gadget2_live_tree_force_matches_direct_sum():
    rng = np.random.default_rng(5)
    n = 80
    positions = rng.uniform(0.1, 0.9, size=(n, 3))
    masses = np.full(n, 1.0 / n)
    root = gadget2.live_force_treebuild(positions, masses, 1.0)
    gadget2.live_force_update_node_recursive(root)
    target = positions[0]
    bh = gadget2.live_force_treeevaluate_shortrange(root, target, theta=0.0)
    eps = 0.05
    direct = np.zeros(3)
    for k in range(n):
        delta = positions[k] - target
        dist = np.sqrt(delta @ delta) + eps
        if dist > eps:
            direct += masses[k] * delta / dist**3
    # theta=0 opens every node: exact agreement with direct summation.
    assert np.allclose(bh, direct, rtol=1e-6, atol=1e-9)


def test_gadget2_live_node_masses_sum():
    rng = np.random.default_rng(6)
    positions = rng.uniform(0.1, 0.9, size=(50, 3))
    masses = rng.uniform(0.5, 2.0, size=50)
    root = gadget2.live_force_treebuild(positions, masses, 1.0)
    total = gadget2.live_force_update_node_recursive(root)
    assert total == pytest.approx(masses.sum())


def test_gadget2_live_pm_potential_zero_mean():
    rng = np.random.default_rng(7)
    positions = rng.uniform(0, 1, size=(64, 3))
    masses = np.full(64, 1.0)
    phi = gadget2.live_pm_setup_nonperiodic_kernel(positions, masses, 1.0, grid=8)
    assert phi.shape == (8, 8, 8)
    assert abs(phi.mean()) < 1e-8  # k=0 mode removed
    assert np.isfinite(phi).all()


@pytest.mark.parametrize("name", ["graph500", "minife", "miniamr", "lammps", "gadget2"])
def test_live_main_runs(name):
    live = get_app(name).live_run()
    assert live is not None
    live.main(0.3)  # tiny but real execution


def test_miniamr_live_coarsen_inverts_refine():
    """Refine then coarsen returns the original block (it is piecewise
    constant, so the 2:1 average is exact)."""
    original = np.arange(8**3, dtype=float).reshape(8, 8, 8)
    blocks = {(0, 0, 0, 0): original.copy()}
    miniamr.live_allocate(blocks, (0, 0, 0, 0))
    assert len(blocks) == 8
    miniamr.live_coarsen(blocks, (0, 0, 0, 0))
    assert len(blocks) == 1
    assert np.allclose(blocks[(0, 0, 0, 0)], original)


def test_miniamr_live_coarsen_conserves_mass():
    rng = np.random.default_rng(8)
    blocks = {(0, 0, 0, 0): rng.uniform(size=(8, 8, 8))}
    miniamr.live_allocate(blocks, (0, 0, 0, 0))
    refined_mean = np.mean([b.mean() for b in blocks.values()])
    miniamr.live_coarsen(blocks, (0, 0, 0, 0))
    assert blocks[(0, 0, 0, 0)].mean() == pytest.approx(refined_mean)


def test_miniamr_live_main_refines_and_coarsens():
    sums = miniamr.live_main(0.5)
    assert len(sums) >= 6
    assert all(np.isfinite(sums))


def test_lammps_live_velocity_verlet_conserves_energy():
    """NVE total energy drifts by well under a percent per handful of
    steps on a near-lattice start (symplectic integrator sanity)."""
    energies = lammps.live_main(0.5)
    totals = [k + p for k, p in energies]
    drift = abs(totals[-1] - totals[0]) / max(abs(totals[0]), 1e-9)
    assert drift < 0.05


def test_lammps_live_potential_finite_and_negative_near_equilibrium():
    rng = np.random.default_rng(2)
    grid = np.stack(np.meshgrid(*[np.arange(3)] * 3), axis=-1).reshape(-1, 3)
    box = 3 * 1.7
    positions = (grid * 1.7 + 0.85) % box
    pairs = lammps.live_npair_build(positions, box, cutoff=2.5)
    potential = lammps.live_lj_potential(positions, pairs, box)
    assert np.isfinite(potential)
    assert potential < 0  # attractive well near lattice spacing ~2^(1/6)*sigma


def test_minife_live_pcg_matches_plain_cg():
    rows, cols_raw = minife.live_generate_matrix_structure(5, 5, 5)
    n = 125
    indptr, cols, values = minife.live_init_matrix(rows, cols_raw, n)
    minife.live_perform_element_loop(indptr, cols, values, n)
    diag_mask = cols == np.repeat(np.arange(n), np.diff(indptr))
    values[diag_mask] += 1.0
    matvec = minife.live_make_local_matrix(indptr, cols, values)
    diag = minife.extract_diagonal(indptr, cols, values, n)
    rng = np.random.default_rng(4)
    b = rng.normal(size=n)
    x_cg, _i1, r_cg = minife.live_cg_solve(matvec, b, max_iter=800, tol=1e-10)
    x_pcg, _i2, r_pcg = minife.live_pcg_solve(matvec, b, diag,
                                              max_iter=800, tol=1e-10)
    assert r_cg < 1e-8 and r_pcg < 1e-8
    assert np.allclose(x_cg, x_pcg, atol=1e-6)


def test_minife_extract_diagonal():
    rows, cols_raw = minife.live_generate_matrix_structure(3, 3, 3)
    n = 27
    indptr, cols, values = minife.live_init_matrix(rows, cols_raw, n)
    minife.live_perform_element_loop(indptr, cols, values, n)
    diag = minife.extract_diagonal(indptr, cols, values, n)
    # Corner nodes of the brick have degree 3; the diagonal equals degree.
    assert diag[0] == pytest.approx(3.0)
