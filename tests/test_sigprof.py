"""SIGPROF statistical sampler on real CPU-bound code."""

import math
import threading
import time

import pytest

from repro.profiler.sigprof import SigprofSampler
from repro.util.errors import CollectorError, ValidationError


def spin(seconds: float) -> float:
    """CPU-bound work (ITIMER_PROF only ticks on CPU time)."""
    total = 0.0
    end = time.process_time() + seconds
    while time.process_time() < end:
        total += math.sqrt(total + 2.0)
    return total


def hot_spin():
    return spin(0.25)


def cold_spin():
    return spin(0.05)


def test_samples_land_in_hot_function():
    sampler = SigprofSampler(sample_period=0.005)
    with sampler:
        hot_spin()
        cold_spin()
    snap = sampler.snapshot()
    # Samples attribute to spin (the innermost matching frame).
    assert sampler.total_samples >= 20
    assert snap.hist.get("spin", 0) >= 20


def test_name_filter_walks_to_matching_ancestor():
    sampler = SigprofSampler(sample_period=0.005,
                             name_filter=lambda n: n in ("hot_spin", "cold_spin"))
    with sampler:
        hot_spin()
        cold_spin()
    snap = sampler.snapshot()
    assert snap.hist.get("hot_spin", 0) > snap.hist.get("cold_spin", 0)
    assert "spin" not in snap.hist


def test_sampling_roughly_proportional():
    sampler = SigprofSampler(sample_period=0.002,
                             name_filter=lambda n: n in ("hot_spin", "cold_spin"))
    with sampler:
        hot_spin()   # ~0.25s CPU
        cold_spin()  # ~0.05s CPU
    snap = sampler.snapshot()
    hot = snap.hist.get("hot_spin", 0)
    cold = max(1, snap.hist.get("cold_spin", 0))
    # 5x CPU ratio: allow generous statistical slack.
    assert hot / cold > 2.0


def test_blocked_time_unsampled():
    """ITIMER_PROF counts CPU time: sleeping gets (almost) no samples."""
    sampler = SigprofSampler(sample_period=0.005)
    with sampler:
        time.sleep(0.2)
    assert sampler.total_samples <= 3


def test_double_start_rejected():
    sampler = SigprofSampler()
    sampler.start()
    try:
        with pytest.raises(CollectorError):
            sampler.start()
    finally:
        sampler.stop()


def test_must_start_on_main_thread():
    sampler = SigprofSampler()
    failures = []

    def worker():
        try:
            sampler.start()
        except CollectorError:
            failures.append(True)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert failures == [True]


def test_stop_idempotent():
    sampler = SigprofSampler()
    sampler.stop()  # never started: no-op


def test_reset():
    sampler = SigprofSampler(sample_period=0.005)
    with sampler:
        spin(0.05)
    sampler.reset()
    assert sampler.snapshot().hist == {}


def test_invalid_period():
    with pytest.raises(ValidationError):
        SigprofSampler(sample_period=0.0)


def test_snapshot_has_no_arcs():
    sampler = SigprofSampler(sample_period=0.005)
    with sampler:
        spin(0.05)
    assert sampler.snapshot().arcs == {}
