"""Call-graph site lifting (the paper's proposed improvement)."""

import numpy as np
import pytest

from repro.core.callgraph_lift import lifted_site_names, suggest_lifts
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.eval.experiments import run_experiment
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def minife_result():
    return run_experiment("minife")


@pytest.fixture(scope="module")
def graph500_result():
    return run_experiment("graph500")


def test_minife_lifts_assembly_to_element_loop(minife_result):
    """The paper's exact case: discovery chose sum_in_symm_elem_matrix;
    call-graph analysis should recover the manual perform_element_loop."""
    lifts = lifted_site_names(minife_result.analysis)
    assert lifts.get("sum_in_symm_elem_matrix") == "perform_element_loop"


def test_graph500_lifts_edge_gen(graph500_result):
    """make_one_edge lifts to the manual generate_kronecker_range site."""
    lifts = lifted_site_names(graph500_result.analysis)
    assert lifts.get("make_one_edge") == "generate_kronecker_range"


def test_lifted_targets_are_manual_sites(minife_result, graph500_result):
    """Lifting recovers sites the authors chose by hand — the paper's
    motivation for the extension."""
    from repro.apps import get_app

    for name, result in (("minife", minife_result), ("graph500", graph500_result)):
        manual = {s.function for s in get_app(name).manual_sites}
        for suggestion in suggest_lifts(result.analysis):
            assert suggestion.caller in manual


def test_no_lift_for_top_level_sites(minife_result):
    """cg_solve etc. are called once from main: no beneficial lift."""
    lifts = lifted_site_names(minife_result.analysis)
    assert "cg_solve" not in lifts
    assert "impose_dirichlet" not in lifts


def test_suggestion_metrics_in_range(minife_result):
    for suggestion in suggest_lifts(minife_result.analysis):
        assert 0.0 < suggestion.dominance <= 1.0
        assert 0.0 < suggestion.coverage <= 1.0
        assert suggestion.call_ratio < 1.0


def test_thresholds_validated(minife_result):
    with pytest.raises(ValidationError):
        suggest_lifts(minife_result.analysis, dominance=0.0)
    with pytest.raises(ValidationError):
        suggest_lifts(minife_result.analysis, coverage=1.5)


def test_requires_interval_gmons(graph500_result):
    from dataclasses import replace

    data = graph500_result.analysis.interval_data
    stripped = replace(graph500_result.analysis,
                       interval_data=_without_gmons(data))
    with pytest.raises(ValidationError):
        suggest_lifts(stripped)


def _without_gmons(data):
    from repro.core.intervals import IntervalData

    return IntervalData(
        functions=data.functions,
        self_time=data.self_time,
        calls=data.calls,
        timestamps=data.timestamps,
        interval=data.interval,
        interval_gmons=None,
    )


def test_strict_dominance_prunes(minife_result):
    loose = suggest_lifts(minife_result.analysis, dominance=0.5, coverage=0.5)
    strict = suggest_lifts(minife_result.analysis, dominance=1.0, coverage=1.0)
    assert len(strict) <= len(loose)
