"""Stream lifecycle, service metrics, and the bounded stream queue."""

import threading
import time

import pytest

from repro.service.metrics import LatencyWindow, ServiceMetrics
from repro.service.registry import StreamRegistry
from repro.service.server import (
    ACCEPTED,
    DROPPED_OLDEST,
    REJECTED,
    BoundedStreamQueue,
)
from repro.util.errors import ServiceError, ValidationError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_register_get_and_duplicate():
    reg = StreamRegistry(idle_timeout=10.0)
    state = reg.register("s1", app="graph500", rank=2)
    assert reg.get("s1") is state
    assert len(reg) == 1
    with pytest.raises(ServiceError):
        reg.register("s1")
    with pytest.raises(ServiceError):
        reg.register("")


def test_unknown_stream_rejected():
    with pytest.raises(ServiceError):
        StreamRegistry().get("ghost")


def test_idle_expiry_uses_last_seen():
    clock = FakeClock()
    reg = StreamRegistry(idle_timeout=5.0, clock=clock)
    reg.register("fresh")
    reg.register("stale")
    clock.advance(4.0)
    reg.touch("fresh")
    clock.advance(2.0)  # stale idle 6s, fresh idle 2s
    assert reg.expire_idle() == ["stale"]
    assert len(reg) == 1
    assert reg.expired == 1
    # expired streams keep their final stats in the fleet view
    assert any(row["stream_id"] == "stale"
               for row in reg.fleet_status()["finished"])


def test_close_removes_and_archives():
    reg = StreamRegistry()
    reg.register("s1")
    state = reg.close("s1")
    assert state is not None and state.closed
    assert len(reg) == 0
    assert reg.close("s1") is None  # idempotent


def test_sequence_gap_tracking():
    reg = StreamRegistry()
    state = reg.register("s")
    state.note_sequence(0)
    state.note_sequence(1)
    state.note_sequence(4)  # lost 2, 3
    assert state.last_seq == 4
    assert state.seq_gaps == 2


def test_fleet_status_aggregates_lag_and_counts():
    reg = StreamRegistry()
    a = reg.register("a")
    b = reg.register("b")
    with a.lock:
        a.enqueued, a.processed, a.novel = 10, 7, 1
    with b.lock:
        b.enqueued, b.processed = 4, 4
    status = reg.fleet_status()
    assert status["n_streams"] == 2
    assert status["total_lag"] == 3
    assert status["novel_total"] == 1
    rows = {r["stream_id"]: r for r in status["streams"]}
    assert rows["a"]["lag"] == 3 and rows["b"]["lag"] == 0


def test_phase_occupancy_includes_finished_streams():
    """A dashboard polled right after a fleet drains still sees occupancy."""

    class StubTracker:
        def __init__(self, counts):
            self._counts = counts

        def phase_counts(self):
            return dict(self._counts)

        def phase_sequence(self):
            return []

    reg = StreamRegistry()
    reg.register("live", tracker=StubTracker({0: 3, 1: 1}))
    reg.register("done", tracker=StubTracker({0: 1, -1: 2}))
    reg.close("done")
    occupancy = reg.fleet_status()["phase_occupancy"]
    assert occupancy["0"]["intervals"] == 4
    assert occupancy["1"]["intervals"] == 1
    assert occupancy["-1"]["intervals"] == 2
    total = sum(o["intervals"] for o in occupancy.values())
    assert abs(sum(o["share"] for o in occupancy.values()) - 1.0) < 1e-9
    assert total == 7


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_latency_window_is_bounded():
    window = LatencyWindow(capacity=10)
    for i in range(100):
        window.record(float(i))
    assert window.observed == 100
    pct = window.percentiles()
    # only the last 10 observations (90..99) remain
    assert 90.0 <= pct["p50"] <= 99.0


def test_latency_window_empty_percentiles_zero():
    assert LatencyWindow().percentiles() == {
        "p50": 0.0, "p90": 0.0, "p99": 0.0, "p99.9": 0.0}


def test_metrics_ingest_rate_with_fake_clock():
    clock = FakeClock()
    metrics = ServiceMetrics(clock=clock)
    assert metrics.ingest_rate() == 0.0
    metrics.note_ingested()
    clock.advance(2.0)
    for _ in range(10):
        metrics.note_processed(novel=False, latency=0.001)
    assert metrics.ingest_rate() == pytest.approx(5.0)


def test_metrics_snapshot_counts():
    metrics = ServiceMetrics()
    metrics.note_ingested(3)
    metrics.note_processed(novel=True, latency=0.01)
    metrics.note_dropped_oldest()
    metrics.note_rejected(2)
    metrics.note_heartbeats(7)
    snap = metrics.snapshot()
    assert snap["ingested"] == 3
    assert snap["processed"] == 1 and snap["novel"] == 1
    assert snap["drops"] == 3
    assert snap["heartbeats"] == 7
    assert snap["classify_latency"]["p50"] == pytest.approx(0.01)


# ----------------------------------------------------------------------
# bounded queue policies
# ----------------------------------------------------------------------
def test_queue_validates_arguments():
    with pytest.raises(ValidationError):
        BoundedStreamQueue(0)
    with pytest.raises(ValidationError):
        BoundedStreamQueue(4, policy="yolo")


def test_reject_policy():
    q = BoundedStreamQueue(2, policy="reject")
    assert q.put(1) == ACCEPTED
    assert q.put(2) == ACCEPTED
    assert q.put(3) == REJECTED
    assert q.pop_batch(10) == [1, 2]
    assert q.put(3) == ACCEPTED


def test_drop_oldest_policy():
    q = BoundedStreamQueue(2, policy="drop-oldest")
    q.put("a")
    q.put("b")
    assert q.put("c") == DROPPED_OLDEST
    assert q.pop_batch(10) == ["b", "c"]


def test_block_policy_waits_for_consumer():
    q = BoundedStreamQueue(1, policy="block")
    q.put("first")
    outcomes = []

    def producer():
        outcomes.append(q.put("second", timeout=5.0))

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.05)
    assert not outcomes  # producer is parked on the full queue
    assert q.pop_batch(1) == ["first"]
    thread.join(timeout=5.0)
    assert outcomes == [ACCEPTED]
    assert q.pop_batch(1) == ["second"]


def test_block_policy_times_out():
    q = BoundedStreamQueue(1, policy="block")
    q.put("x")
    with pytest.raises(ServiceError):
        q.put("y", timeout=0.05)


def test_close_unblocks_producer():
    q = BoundedStreamQueue(1, policy="block")
    q.put("x")
    errors = []

    def producer():
        try:
            q.put("y", timeout=5.0)
        except ServiceError as exc:
            errors.append(exc)

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.05)
    q.close()
    thread.join(timeout=5.0)
    assert len(errors) == 1
