"""Protocol v2 binary codec: golden bytes, negotiation, fuzz, acks.

The JSON v1 codec's round-trips and framing errors live in
``test_service_protocol.py``; this module pins the *binary* wire format
(a struct-packed header carrying raw gmon bytes) and the version
negotiation that keeps v1 and v2 peers interoperable on one port.
"""

import random
import struct

import pytest

from repro.gprof.gmon import GmonBlob, GmonData, dumps_gmon
from repro.service.protocol import (
    BINARY_CODEC,
    BINARY_MAGIC,
    BINARY_PROTOCOL_VERSION,
    JSON_CODEC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    Endpoint,
    FrameReader,
    Hello,
    Reply,
    SnapshotMsg,
    binary_envelope,
    codec_for,
    decode_message,
    encode_message,
    negotiate,
)
from repro.util.errors import ProtocolError


def gmon(ticks: int = 5) -> GmonData:
    data = GmonData(rank=3, timestamp=2.5)
    data.add_ticks("kernel", ticks)
    data.add_arc("main", "kernel", 2)
    return data


def snapshot_msg(seq: int = 42) -> SnapshotMsg:
    return SnapshotMsg(stream_id="node-7", seq=seq, gmon=gmon(),
                       trace_id="0123456789abcdef")


def v2_payload(msg=None) -> bytes:
    return BINARY_CODEC.encode(msg if msg is not None else snapshot_msg())


# ----------------------------------------------------------------------
# golden frame pin
# ----------------------------------------------------------------------
#: The exact v2 frame (length prefix included) for ``snapshot_msg()``.
#: This is the wire contract: if this test breaks, deployed v2 peers
#: can no longer read this build's frames — bump the codec version
#: instead of editing the hex.
GOLDEN_V2_FRAME = bytes.fromhex(
    "00000081004950420201000000000000002a00000055000600106e6f"
    "64652d373031323334353637383961626364656649474d4f4e01007b"
    "14ae47e17a843f00000000000004400300000002000000060000006b"
    "65726e656c040000006d61696e010000000000000005000000000000"
    "000100000001000000000000000200000000000000"
)


def test_golden_v2_frame_bytes_pinned():
    assert encode_message(snapshot_msg(), version=2) == GOLDEN_V2_FRAME


def test_golden_v2_frame_decodes_back():
    msg = decode_message(GOLDEN_V2_FRAME)
    assert isinstance(msg, SnapshotMsg)
    assert (msg.stream_id, msg.seq, msg.trace_id) == \
        ("node-7", 42, "0123456789abcdef")
    assert msg.gmon.hist == {"kernel": 5}
    assert msg.gmon.arcs == {("main", "kernel"): 2}


def test_golden_frame_carries_raw_gmon_bytes():
    # Zero-copy contract: the gmon section of the frame IS the IGMON
    # serialization, byte for byte — no base64, no JSON.
    assert dumps_gmon(gmon()) in GOLDEN_V2_FRAME


def test_blob_and_parsed_gmon_encode_identically():
    blob = SnapshotMsg(stream_id="node-7", seq=42,
                       gmon=GmonBlob(dumps_gmon(gmon())),
                       trace_id="0123456789abcdef")
    assert encode_message(blob, version=2) == GOLDEN_V2_FRAME


# ----------------------------------------------------------------------
# malformed / truncated / oversized binary payloads
# ----------------------------------------------------------------------
def test_truncated_binary_prefix_rejected():
    with pytest.raises(ProtocolError, match="shorter than its prefix"):
        BINARY_CODEC.decode(v2_payload()[:3])


def test_bad_magic_rejected():
    payload = bytearray(v2_payload())
    payload[1] = ord("X")
    with pytest.raises(ProtocolError, match="magic"):
        BINARY_CODEC.decode(bytes(payload))


def test_unknown_codec_version_byte_rejected():
    payload = bytearray(v2_payload())
    payload[4] = 9
    with pytest.raises(ProtocolError, match="version 9"):
        BINARY_CODEC.decode(bytes(payload))


def test_unknown_kind_code_rejected():
    payload = bytearray(v2_payload())
    payload[5] = 7
    with pytest.raises(ProtocolError, match="kind 7"):
        BINARY_CODEC.decode(bytes(payload))


def test_truncated_snapshot_header_rejected():
    with pytest.raises(ProtocolError, match="truncated in its header"):
        BINARY_CODEC.decode(v2_payload()[:10])


def test_length_mismatch_rejected():
    payload = v2_payload()
    with pytest.raises(ProtocolError, match="length mismatch"):
        BINARY_CODEC.decode(payload[:-1])
    with pytest.raises(ProtocolError, match="length mismatch"):
        BINARY_CODEC.decode(payload + b"\x00")


def test_empty_stream_id_rejected():
    msg = SnapshotMsg(stream_id="x", seq=1, gmon=gmon())
    payload = bytearray(BINARY_CODEC.encode(msg))
    # Rewrite the one-byte stream id to length 0 is a length mismatch;
    # instead patch the id bytes' length field and drop the byte.
    sid_off = len(payload) - len(dumps_gmon(gmon())) - 1
    del payload[sid_off]
    struct.pack_into(">H", payload, 6 + 12, 0)
    with pytest.raises(ProtocolError, match="empty stream id"):
        BINARY_CODEC.decode(bytes(payload))


def test_non_utf8_stream_id_rejected():
    payload = bytearray(v2_payload())
    sid_off = 6 + struct.calcsize(">QIHH")
    payload[sid_off] = 0xFF
    payload[sid_off + 1] = 0xFE
    with pytest.raises(ProtocolError, match="not UTF-8"):
        BINARY_CODEC.decode(bytes(payload))


def test_corrupt_gmon_bytes_fail_eager_but_not_lazy_decode():
    payload = bytearray(v2_payload())
    gmon_start = len(payload) - len(dumps_gmon(gmon()))
    payload[gmon_start:gmon_start + 5] = b"\x00" * 5  # break the IGMON magic
    with pytest.raises(ProtocolError, match="not a valid gmon"):
        BINARY_CODEC.decode(bytes(payload))
    # Lazy decode admits the envelope; the corrupt blob surfaces when
    # (and where) the worker loads it.
    msg = BINARY_CODEC.decode(bytes(payload), lazy_gmon=True)
    assert isinstance(msg.gmon, GmonBlob)
    with pytest.raises(Exception):
        msg.gmon.load()


def test_oversized_snapshot_fails_on_encode():
    msg = SnapshotMsg(stream_id="s", seq=0,
                      gmon=GmonBlob(b"\x00" * (MAX_FRAME_BYTES + 1)))
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_message(msg, version=2)


def test_seq_must_fit_u64():
    msg = SnapshotMsg(stream_id="s", seq=2 ** 64, gmon=gmon())
    with pytest.raises(ProtocolError, match="u64"):
        BINARY_CODEC.encode(msg)


# ----------------------------------------------------------------------
# struct-header fuzz
# ----------------------------------------------------------------------
def test_header_fuzz_never_escapes_protocol_error():
    """Arbitrary corruption of the packed header either still decodes
    or raises ProtocolError — never KeyError/IndexError/struct.error."""
    rng = random.Random(7)
    base = v2_payload()
    header_len = 6 + struct.calcsize(">QIHH")
    for _ in range(500):
        payload = bytearray(base)
        for _flip in range(rng.randint(1, 4)):
            payload[rng.randrange(header_len)] = rng.randrange(256)
        try:
            BINARY_CODEC.decode(bytes(payload))
        except ProtocolError:
            pass


def test_random_nul_prefixed_garbage_rejected():
    rng = random.Random(11)
    for _ in range(200):
        blob = b"\x00" + bytes(rng.randrange(256)
                               for _ in range(rng.randrange(64)))
        try:
            BINARY_CODEC.decode(blob)
        except ProtocolError:
            pass


def test_truncation_fuzz_every_prefix_rejected():
    payload = v2_payload()
    for cut in range(len(payload)):
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(payload[:cut])


# ----------------------------------------------------------------------
# binary snapshot acks
# ----------------------------------------------------------------------
def ack(**over) -> Reply:
    data = {"outcome": "accepted", "seq": 42,
            "trace": "0123456789abcdef", "model_version": 3}
    data.update(over)
    return Reply(ok=True, data=data)


def test_ack_roundtrip_packs_binary():
    payload = BINARY_CODEC.encode(ack())
    assert payload.startswith(BINARY_MAGIC)
    assert BINARY_CODEC.decode(payload) == ack()


def test_every_outcome_roundtrips():
    for outcome in ("accepted", "dropped-oldest", "rejected", "duplicate"):
        reply = Reply(ok=outcome != "rejected",
                      error="" if outcome != "rejected" else "queue full",
                      data={"outcome": outcome, "seq": 7, "trace": "",
                            "code": "" if outcome != "rejected"
                            else "backpressure"})
        # decode_message dispatches per frame: packed acks and the
        # JSON fallback (an empty ``code`` is inexpressible) both land.
        decoded = decode_message(encode_message(reply, version=2))
        # JSON-side normalization drops empty optional fields the same way.
        assert decoded.ok == reply.ok
        assert decoded.error == reply.error
        assert decoded.data["outcome"] == outcome
        assert decoded.data["seq"] == 7


def test_ack_without_model_version_roundtrips():
    reply = ack()
    del reply.data["model_version"]
    decoded = BINARY_CODEC.decode(BINARY_CODEC.encode(reply))
    assert "model_version" not in decoded.data
    assert decoded == reply


def test_inexpressible_replies_fall_back_to_json():
    # Extra keys, oversize fields, or non-ack replies must ride JSON —
    # fallback, never failure (and never a silently lossy pack).
    for reply in (
        Reply(ok=True, data={"outcome": "accepted", "seq": 1, "trace": "",
                             "phase_sequence": [1, 2]}),
        Reply(ok=True, data={"outcome": "weird", "seq": 1, "trace": ""}),
        Reply(ok=True, data={"outcome": "accepted", "seq": -1, "trace": ""}),
        Reply(ok=True, data={"outcome": "accepted", "seq": 2 ** 64,
                             "trace": ""}),
        Reply(ok=True, data={"outcome": "accepted", "seq": True,
                             "trace": ""}),
        Reply(ok=True, data={}),
    ):
        payload = BINARY_CODEC.encode(reply)
        assert not payload.startswith(BINARY_MAGIC)
        assert JSON_CODEC.decode(payload) == reply


def test_ack_fuzz_never_escapes_protocol_error():
    rng = random.Random(13)
    base = BINARY_CODEC.encode(ack())
    for _ in range(300):
        payload = bytearray(base)
        for _flip in range(rng.randint(1, 3)):
            payload[rng.randrange(len(payload))] = rng.randrange(256)
        try:
            BINARY_CODEC.decode(bytes(payload))
        except ProtocolError:
            pass


# ----------------------------------------------------------------------
# negotiation
# ----------------------------------------------------------------------
def test_negotiate_picks_highest_common():
    assert negotiate((1, 2), (1, 2)) == 2
    assert negotiate((1,), (1, 2)) == 1
    assert negotiate((1, 2), (1,)) == 1
    assert negotiate((2,), (1, 2)) == 2


def test_negotiate_disjoint_falls_back_to_v1():
    # A peer from the future still speaks the v1 floor.
    assert negotiate((3, 4), SUPPORTED_PROTOCOLS) == PROTOCOL_VERSION
    assert negotiate((), SUPPORTED_PROTOCOLS) == PROTOCOL_VERSION


def test_codec_registry_rejects_unknown_version():
    assert codec_for(1) is JSON_CODEC
    assert codec_for(2) is BINARY_CODEC
    with pytest.raises(ProtocolError, match="unsupported protocol"):
        codec_for(3)


def test_hello_carries_offered_protocols():
    msg = decode_message(encode_message(
        Hello(stream_id="s", protocols=(1, 2))))
    assert msg.protocols == (1, 2)


def test_v1_encoded_hello_still_decodes_without_protocols():
    # A PR-1-era peer sends hellos with no protocols field at all.
    import json as _json
    from repro.service.protocol import frame_bytes, message_to_obj
    obj = message_to_obj(Hello(stream_id="s"))
    del obj["protocols"]
    frame = frame_bytes(_json.dumps(obj).encode("utf-8"))
    msg = decode_message(frame)
    assert msg.protocols == (PROTOCOL_VERSION,)


# ----------------------------------------------------------------------
# envelope peek (router forward path)
# ----------------------------------------------------------------------
def test_binary_envelope_peeks_without_gmon_decode():
    payload = bytearray(v2_payload())
    payload[-20:] = b"\x00" * 20  # corrupt gmon: the peek must not care
    env = binary_envelope(bytes(payload))
    assert (env.stream_id, env.seq, env.trace_id) == \
        ("node-7", 42, "0123456789abcdef")


def test_binary_envelope_ignores_json_payloads():
    assert binary_envelope(JSON_CODEC.encode(snapshot_msg())) is None
    assert binary_envelope(b"") is None


# ----------------------------------------------------------------------
# frame reader
# ----------------------------------------------------------------------
class _FakeSock:
    def __init__(self, chunks):
        self._chunks = list(chunks)

    def recv(self, _n):
        return self._chunks.pop(0) if self._chunks else b""


def test_frame_reader_reads_split_and_coalesced_frames():
    f1 = encode_message(snapshot_msg(1), version=2)
    f2 = encode_message(snapshot_msg(2), version=2)
    blob = f1 + f2
    reader = FrameReader(_FakeSock([blob[:5], blob[5:]]))
    assert BINARY_CODEC.decode(reader.read_frame()).seq == 1
    # The second frame is already buffered: lookahead sees it without
    # touching the socket, which is what lets the server cork replies.
    assert reader.buffered_frame()
    assert BINARY_CODEC.decode(reader.read_frame()).seq == 2
    assert not reader.buffered_frame()
    assert reader.read_frame() is None  # clean EOF


def test_frame_reader_mid_frame_eof_is_protocol_error():
    frame = encode_message(snapshot_msg(), version=2)
    reader = FrameReader(_FakeSock([frame[:10]]))
    with pytest.raises(ProtocolError, match="mid-frame"):
        reader.read_frame()


def test_frame_reader_oversized_length_rejected_before_buffering():
    good = encode_message(snapshot_msg(), version=2)
    evil_prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    reader = FrameReader(_FakeSock([good + evil_prefix]))
    assert BINARY_CODEC.decode(reader.read_frame()).seq == 42
    # The oversized follow-up is decidable from its prefix alone: the
    # lookahead reports a frame (read_frame will raise, not block
    # waiting for 16 MiB that may never come)...
    assert reader.buffered_frame()
    with pytest.raises(ProtocolError, match="exceeds"):
        reader.read_frame()


# ----------------------------------------------------------------------
# end-to-end negotiation matrix (live server)
# ----------------------------------------------------------------------
def _server(max_protocol: int = BINARY_PROTOCOL_VERSION):
    from repro.core.online import OnlinePhaseTracker
    from repro.core.pipeline import AnalysisConfig, analyze_snapshots
    from repro.service.client import SyntheticLoadGenerator
    from repro.service.server import PhaseMonitorServer, ServerConfig

    gen = SyntheticLoadGenerator()
    template = OnlinePhaseTracker.from_analysis(
        analyze_snapshots(gen.stream(0, 16), AnalysisConfig(kmax=3)))
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                          workers=1, log_level="error",
                          max_protocol=max_protocol)
    return PhaseMonitorServer(template, config), gen


@pytest.mark.socket
@pytest.mark.parametrize(
    "client_protocols,server_max,expected",
    [
        ((1, 2), 2, 2),   # both v2-capable: binary
        ((1,), 2, 1),     # v1-only client vs v2 server: JSON
        ((1, 2), 1, 1),   # v2 client vs v1-pinned server: JSON
        ((2,), 2, 2),     # a client that only offers v2 still lands it
    ])
def test_negotiation_matrix_end_to_end(client_protocols, server_max,
                                       expected):
    from repro.service.client import PhaseClient

    server, gen = _server(max_protocol=server_max)
    samples = gen.stream(1, 3)
    with server:
        with PhaseClient(server.endpoint,
                         protocols=client_protocols) as client:
            reply = client.hello("nego")
            assert reply.ok
            assert int(reply.data["protocol"]) == expected
            assert client.wire_version == expected
            # The negotiated codec carries real traffic either way.
            for seq, snap in enumerate(samples):
                ack = client.snapshot("nego", seq, snap)
                assert ack.ok and ack.data["outcome"] == "accepted"
            assert client.bye("nego").ok


@pytest.mark.socket
@pytest.mark.parametrize("protocols", [(1,), (1, 2)])
def test_duplicate_ack_semantics_identical_across_codecs(protocols):
    from repro.service.client import PhaseClient

    server, gen = _server()
    snap = gen.stream(1, 1)[0]
    with server:
        with PhaseClient(server.endpoint, protocols=protocols) as client:
            client.hello("dup")
            first = client.snapshot("dup", 0, snap)
            again = client.snapshot("dup", 0, snap)
            assert first.ok and first.data["outcome"] == "accepted"
            assert again.ok and again.data["outcome"] == "duplicate"
            assert again.data["seq"] == 0


@pytest.mark.socket
def test_burst_pipelined_v2_matches_single_shot_v1():
    from repro.service.client import publish_samples

    server, gen = _server()
    samples = gen.stream(2, 40)
    with server:
        single = publish_samples(server.endpoint, "lane-v1", samples,
                                 protocols=(1,), pipeline=1)
        burst = publish_samples(server.endpoint, "lane-v2", samples,
                                protocols=(1, 2), pipeline=None)
    for report in (single, burst):
        assert report.error == "" and report.drained
        assert report.accepted == len(samples) and report.rejected == 0
    # Equal correctness: the wire format and submission shape must not
    # change what the daemon concludes about the stream.
    assert single.phase_sequence == burst.phase_sequence
    assert single.processed == burst.processed == len(samples)
