"""Live sys.setprofile profiler on real Python code."""

import time

import pytest

from repro.gprof.flatprofile import FlatProfile
from repro.profiler.tracing import TracingProfiler, module_filter, names_filter
from repro.util.errors import CollectorError


def busy(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def hot_function():
    busy(0.05)


def cold_function():
    busy(0.005)


def caller():
    hot_function()
    cold_function()


def test_measures_self_time_and_arcs():
    profiler = TracingProfiler(sample_period=0.001)
    with profiler:
        caller()
    snap = profiler.snapshot()
    # busy() holds the actual loop time, attributed to busy itself.
    assert snap.self_seconds("busy") >= 0.04
    assert snap.calls_into("hot_function") == 1
    assert snap.calls_into("busy") == 2


def test_name_filter_folds_time_into_ancestor():
    profiler = TracingProfiler(
        sample_period=0.001,
        name_filter=names_filter({"hot_function", "cold_function", "caller"}),
    )
    with profiler:
        caller()
    snap = profiler.snapshot()
    # busy's time folds into the unfiltered callers.
    assert "busy" not in snap.hist
    assert snap.self_seconds("hot_function") >= 0.04
    assert snap.self_seconds("hot_function") > snap.self_seconds("cold_function")


def test_snapshot_while_running():
    profiler = TracingProfiler(sample_period=0.001)
    profiler.start()
    busy(0.02)
    mid = profiler.snapshot()
    busy(0.02)
    profiler.stop()
    final = profiler.snapshot()
    assert final.self_seconds("busy") > mid.self_seconds("busy") > 0.0


def test_double_start_rejected():
    profiler = TracingProfiler()
    profiler.start()
    try:
        with pytest.raises(CollectorError):
            profiler.start()
    finally:
        profiler.stop()


def test_reset_clears_state():
    profiler = TracingProfiler(sample_period=0.001)
    with profiler:
        busy(0.01)
    profiler.reset()
    assert profiler.snapshot().hist == {}


def test_elapsed_recorded():
    profiler = TracingProfiler()
    with profiler:
        busy(0.02)
    assert profiler.elapsed >= 0.015


def test_snapshot_feeds_flat_profile():
    profiler = TracingProfiler(sample_period=0.001)
    with profiler:
        caller()
    text = FlatProfile.from_gmon(profiler.snapshot()).render()
    assert "busy" in text


def test_module_filter():
    accept = module_filter("hot_", "cold_")
    assert accept("hot_function")
    assert not accept("caller")


def test_names_filter():
    accept = names_filter(["a", "b"])
    assert accept("a") and not accept("c")
