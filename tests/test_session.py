"""Session orchestration: collection, heartbeats, costs, storage."""

import pytest

from repro.apps import get_app
from repro.core.model import InstType, Site
from repro.heartbeat.instrument import bindings_from_sites
from repro.incprof.session import Session, SessionConfig
from repro.store.loose import LooseStore
from repro.util.errors import ValidationError


def test_config_validation():
    with pytest.raises(ValidationError):
        SessionConfig(interval=0.0)
    with pytest.raises(ValidationError):
        SessionConfig(scale=-1.0)


def test_collection_produces_samples():
    result = Session(get_app("graph500"), SessionConfig(ranks=1, scale=0.2)).run()
    samples = result.samples(0)
    assert len(samples) >= 5
    assert samples[0].timestamp == pytest.approx(1.0)


def test_seed_determinism():
    def run():
        return Session(get_app("graph500"),
                       SessionConfig(ranks=1, scale=0.2, seed=9)).run()

    a, b = run(), run()
    assert a.runtime == b.runtime
    assert a.samples(0)[-1].hist == b.samples(0)[-1].hist


def test_different_seeds_differ():
    def run(seed):
        return Session(get_app("graph500"),
                       SessionConfig(ranks=1, scale=0.2, seed=seed)).run()

    assert run(1).runtime != run(2).runtime


def test_costs_lengthen_runtime():
    plain = Session(get_app("graph500"),
                    SessionConfig(ranks=1, scale=0.2, charge_costs=False)).run()
    instrumented = Session(get_app("graph500"),
                           SessionConfig(ranks=1, scale=0.2, charge_costs=True)).run()
    assert instrumented.runtime > plain.runtime
    assert instrumented.rank0.total_overhead > 0


def test_no_profiles_mode():
    result = Session(get_app("graph500"),
                     SessionConfig(ranks=1, scale=0.2, collect_profiles=False)).run()
    assert result.samples(0) == []


def test_heartbeat_sites_produce_records():
    app = get_app("graph500")
    bindings = bindings_from_sites(app.manual_sites)
    result = Session(app, SessionConfig(ranks=1, scale=0.2,
                                        heartbeat_sites=bindings)).run()
    records = result.heartbeat_records(0)
    assert records
    ids = {r.hb_id for r in records}
    assert ids <= {b.hb_id for b in bindings}


def test_store_dir_persists(tmp_path):
    Session(get_app("graph500"),
            SessionConfig(ranks=1, scale=0.2, store_dir=tmp_path)).run()
    assert list(LooseStore(tmp_path).scan("0"))


def test_default_ranks_from_app():
    app = get_app("graph500")  # paper config: 1 rank
    result = Session(app, SessionConfig(scale=0.15)).run()
    assert len(result.per_rank) == app.default_ranks


def test_loop_sites_record_heartbeats():
    app = get_app("minife")
    bindings = bindings_from_sites([Site("cg_solve", InstType.LOOP)])
    result = Session(app, SessionConfig(ranks=1, scale=0.05,
                                        heartbeat_sites=bindings)).run()
    assert any(r.hb_id == 1 for r in result.heartbeat_records(0))


# ----------------------------------------------------------------------
# stream export (the incprofd publishing hook)
# ----------------------------------------------------------------------
def test_stream_events_merged_by_time():
    result = Session(get_app("synthetic"),
                     SessionConfig(ranks=3, seed=111)).run()
    events = list(result.stream_events())
    total = sum(len(rr.samples) for rr in result.per_rank)
    assert len(events) == total
    # globally non-decreasing timestamps...
    stamps = [snap.timestamp for _rank, _seq, snap in events]
    assert stamps == sorted(stamps)
    # ...and per-rank sequence numbers stay in order
    last_seq = {}
    for rank, seq, _snap in events:
        assert seq == last_seq.get(rank, -1) + 1
        last_seq[rank] = seq
    assert set(last_seq) == {0, 1, 2}


def test_publish_delivers_every_snapshot():
    result = Session(get_app("synthetic"),
                     SessionConfig(ranks=2, seed=111)).run()
    seen = []
    count = result.publish(lambda rank, seq, snap: seen.append((rank, seq)))
    assert count == len(seen)
    assert count == sum(len(rr.samples) for rr in result.per_rank)
    assert len(set(seen)) == count  # no duplicates
