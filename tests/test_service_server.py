"""``incprofd`` end to end: ingestion, classification, backpressure.

Everything here binds real sockets (loopback TCP or unix); the whole
module carries the ``socket`` marker so restricted environments can
deselect it with ``-m "not socket"``.
"""

import socket
import threading
import time

import pytest

from repro.apps import get_app
from repro.apps.synthetic import PhaseSpec, Synthetic
from repro.cli import main as cli_main
from repro.core.online import NOVEL, OnlinePhaseTracker
from repro.core.pipeline import analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.service import (
    Endpoint,
    PhaseClient,
    PhaseMonitorServer,
    ServerConfig,
    SyntheticLoadGenerator,
    publish_samples,
    publish_session,
)
from repro.service.protocol import write_message, read_message, Control
from repro.util.errors import StreamConflictError, UnknownStreamError

pytestmark = pytest.mark.socket


def can_bind_loopback() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


if not can_bind_loopback():  # pragma: no cover - restricted environments
    pytest.skip("cannot bind loopback sockets here", allow_module_level=True)


def make_config(**overrides) -> ServerConfig:
    defaults = dict(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=4,
                    queue_capacity=64, policy="block", block_timeout=10.0,
                    idle_timeout=30.0, housekeeping_interval=0.05)
    defaults.update(overrides)
    return ServerConfig(**defaults)


# ----------------------------------------------------------------------
# offline training + simulated fleet (module-scoped: several tests share)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_template():
    """Tracker template trained on one offline synthetic run."""
    train = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(train.samples(0))
    return analysis, OnlinePhaseTracker.from_analysis(analysis)


@pytest.fixture(scope="module")
def fleet_run():
    """A 4-rank deployment run of the same workload (new seed)."""
    return Session(get_app("synthetic"), SessionConfig(ranks=4, seed=777)).run()


# ----------------------------------------------------------------------
# the acceptance demo: train offline, stream a fleet, verify
# ----------------------------------------------------------------------
def test_fleet_demo_end_to_end(trained_template, fleet_run):
    """4 concurrent ranks through the daemon: per-stream phase sequences
    match the offline tracker, throughput is measured, nothing dropped."""
    _analysis, template = trained_template

    # What each stream *should* classify to, computed offline.
    expected = {}
    for rank_result in fleet_run.per_rank:
        local = template.spawn(zero_start=True)
        for snap in rank_result.samples:
            local.observe_snapshot(snap)
        expected[rank_result.rank] = local.phase_sequence()

    with PhaseMonitorServer(template, make_config()) as server:
        reports = publish_session(server.endpoint, fleet_run,
                                  stream_prefix="fleet")
        stats = server.stats()
        status = server.fleet_status()

    assert len(reports) == 4
    total_sent = 0
    for rank_result in fleet_run.per_rank:
        report = reports[f"fleet-r{rank_result.rank}"]
        assert report.error == ""
        assert report.drained
        assert report.sent == len(rank_result.samples)
        assert report.processed == report.sent
        # The server-side classification equals the offline one, exactly.
        assert report.phase_sequence == expected[rank_result.rank]
        total_sent += report.sent

    # Same workload, same model: the fleet tracks the trained phases.
    novel_total = sum(r.novel for r in reports.values())
    assert novel_total / total_sent < 0.15

    # Service self-metrics: measured throughput, zero drops under the
    # default blocking policy, everything ingested got classified.
    assert stats["processed"] == total_sent
    assert stats["ingested"] == total_sent
    assert stats["drops"] == 0
    assert stats["ingest_rate"] > 0
    assert stats["classify_latency"]["p99"] >= 0
    # Streams said bye, so the live registry is empty but the fleet view
    # retains their final stats.
    assert status["n_streams"] == 0
    assert len(status["finished"]) == 4


def test_anomalous_stream_flagged_novel(trained_template):
    """A run with an unseen phase produces novel intervals server-side."""
    _analysis, template = trained_template
    app = Synthetic()
    rogue_script = list(app.ground_truth_phases())
    rogue_script.insert(
        2, PhaseSpec("rogue", 15.0, (("garbage_collect", 0.7, 3.0),))
    )
    rogue_run = Session(Synthetic(rogue_script),
                        SessionConfig(ranks=1, seed=555)).run()

    with PhaseMonitorServer(template, make_config()) as server:
        report = publish_samples(server.endpoint, "rogue-r0",
                                 rogue_run.samples(0), app="synthetic")
        status = server.fleet_status()

    assert report.drained and report.processed == report.sent
    assert report.novel > 0
    assert NOVEL in report.phase_sequence
    assert status["service"]["novel"] == report.novel


# ----------------------------------------------------------------------
# protocol/server behaviour over real connections
# ----------------------------------------------------------------------
def test_ping_stats_and_unknown_stream():
    with PhaseMonitorServer(None, make_config()) as server:
        with PhaseClient(server.endpoint) as client:
            assert client.ping().ok
            stats = client.stats()
            assert stats.ok and stats.data["streams"] == 0
            # snapshot before hello is a typed error, not a hang/crash
            sample = SyntheticLoadGenerator().stream(0, 1)[0]
            with pytest.raises(UnknownStreamError, match="ghost"):
                client.snapshot("ghost", 0, sample)
            # check=False keeps the raw-reply escape hatch working
            reply = client.snapshot("ghost", 0, sample, check=False)
            assert not reply.ok and "ghost" in reply.error
            assert reply.data["code"] == "unknown-stream"


def test_duplicate_hello_rejected():
    with PhaseMonitorServer(None, make_config()) as server:
        with PhaseClient(server.endpoint) as client:
            assert client.hello("twin").ok
            with pytest.raises(StreamConflictError, match="already registered"):
                client.hello("twin")
            # resume=True makes the handshake idempotent instead
            reply = client.hello("twin", resume=True)
            assert reply.ok and reply.data["resumed"] is True


def test_unix_socket_endpoint(tmp_path):
    endpoint = Endpoint.unix(str(tmp_path / "incprofd.sock"))
    with PhaseMonitorServer(None, make_config(endpoint=endpoint)) as server:
        assert server.endpoint.kind == "unix"
        with PhaseClient(server.endpoint) as client:
            assert client.ping().ok


def test_malformed_frame_gets_error_reply_and_connection_survives():
    with PhaseMonitorServer(None, make_config()) as server:
        sock = server.endpoint.connect()
        fh = sock.makefile("rwb")
        # A well-framed but undecodable payload: error reply, then the
        # same connection keeps working.
        payload = b"{broken json"
        fh.write(len(payload).to_bytes(4, "big") + payload)
        fh.flush()
        reply = read_message(fh)
        assert not reply.ok and "JSON" in reply.error
        write_message(fh, Control(command="ping"))
        assert read_message(fh).ok
        fh.close()
        sock.close()
        deadline = time.monotonic() + 2.0
        while server.metrics.protocol_errors < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.metrics.protocol_errors == 1


def test_shutdown_via_control():
    server = PhaseMonitorServer(None, make_config())
    server.start()
    with PhaseClient(server.endpoint) as client:
        assert client.shutdown().ok
    assert server.wait(timeout=5.0)


# ----------------------------------------------------------------------
# backpressure policies under a deliberately slow worker
# ----------------------------------------------------------------------
def slow_server(policy: str) -> PhaseMonitorServer:
    server = PhaseMonitorServer(None, make_config(
        policy=policy, queue_capacity=2, workers=1, block_timeout=10.0))
    original = server._classify_batch

    def dawdling(state, batch):
        time.sleep(0.05 * len(batch))
        original(state, batch)

    server._classify_batch = dawdling
    return server


def test_reject_policy_pushes_back_on_publisher():
    generator = SyntheticLoadGenerator()
    with slow_server("reject") as server:
        report = publish_samples(server.endpoint, "hot",
                                 generator.stream(0, 12))
        stats = server.stats()
    assert report.rejected > 0
    assert report.accepted + report.rejected == report.sent
    assert stats["rejected"] == report.rejected
    assert stats["processed"] == report.accepted


def test_drop_oldest_policy_sheds_load():
    generator = SyntheticLoadGenerator()
    with slow_server("drop-oldest") as server:
        report = publish_samples(server.endpoint, "hot",
                                 generator.stream(0, 12))
        stats = server.stats()
    assert report.dropped_oldest > 0
    assert stats["dropped_oldest"] == report.dropped_oldest
    assert stats["processed"] == report.sent - report.dropped_oldest
    assert report.processed == report.sent - report.dropped_oldest


def test_block_policy_is_lossless_under_load():
    generator = SyntheticLoadGenerator()
    with slow_server("block") as server:
        report = publish_samples(server.endpoint, "hot",
                                 generator.stream(0, 12))
        stats = server.stats()
    assert report.rejected == 0 and report.dropped_oldest == 0
    assert report.processed == report.sent
    assert stats["drops"] == 0


# ----------------------------------------------------------------------
# stream lifecycle + heartbeat transport
# ----------------------------------------------------------------------
def test_idle_stream_expires():
    generator = SyntheticLoadGenerator()
    with PhaseMonitorServer(None, make_config(idle_timeout=0.15)) as server:
        with PhaseClient(server.endpoint) as client:
            client.hello("sleepy")
            client.snapshot("sleepy", 0, generator.stream(0, 1)[0])
            deadline = time.monotonic() + 5.0
            while len(server.registry) and time.monotonic() < deadline:
                time.sleep(0.02)
            status = server.fleet_status()
    assert status["n_streams"] == 0
    assert status["expired_total"] == 1
    assert any(r["stream_id"] == "sleepy" for r in status["finished"])


def test_heartbeats_flow_through_ldms_sampler():
    """Heartbeat rows reach LDMS subscribers via the housekeeping sampler."""
    hb_run = Session(
        get_app("synthetic"),
        SessionConfig(ranks=1, seed=111, collect_profiles=False,
                      heartbeat_sites=_synthetic_bindings()),
    ).run()
    records = hb_run.heartbeat_records(0)
    assert records
    delivered = []
    with PhaseMonitorServer(None, make_config()) as server:
        server.transport.subscribe(lambda batch: delivered.extend(batch))
        with PhaseClient(server.endpoint) as client:
            client.hello("hb-stream")
            reply = client.heartbeats("hb-stream", records)
            assert reply.ok and reply.data["accepted"] == len(records)
            deadline = time.monotonic() + 5.0
            while len(delivered) < len(records) and time.monotonic() < deadline:
                time.sleep(0.02)
    assert len(delivered) == len(records)
    assert server.metrics.heartbeats == len(records)


def _synthetic_bindings():
    from repro.heartbeat.instrument import bindings_from_sites

    return bindings_from_sites(get_app("synthetic").manual_sites)


# ----------------------------------------------------------------------
# load generator + CLI selftest
# ----------------------------------------------------------------------
def test_synthetic_load_many_streams():
    generator = SyntheticLoadGenerator()
    with PhaseMonitorServer(None, make_config(workers=8)) as server:
        load = generator.run(server.endpoint, n_streams=8, n_intervals=10)
        stats = server.stats()
    assert load.sent == 80
    assert load.processed == 80
    assert load.rejected == 0
    assert load.throughput > 0
    assert stats["connections"] == 8


def test_cli_serve_selftest(capsys):
    assert cli_main(["serve", "--selftest"]) == 0
    out = capsys.readouterr().out
    assert "selftest PASS" in out
    assert "intervals/s" in out
