"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_apps_command(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "graph500" in out and "gadget2" in out


def test_run_then_analyze(tmp_path, capsys):
    out_dir = str(tmp_path / "samples")
    assert main(["run", "--app", "graph500", "--out", out_dir, "--scale", "0.2"]) == 0
    assert main(["analyze", out_dir]) == 0
    out = capsys.readouterr().out
    assert "Phase ID" in out
    assert "k-means sweep" in out


def test_analyze_kselect_option(tmp_path, capsys):
    out_dir = str(tmp_path / "samples")
    main(["run", "--app", "miniamr", "--out", out_dir, "--scale", "0.15"])
    assert main(["analyze", out_dir, "--kselect", "chord"]) == 0


def test_report_command(capsys):
    assert main(["report", "--app", "graph500", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "INSTRUMENTED FUNCTIONS" in out
    assert "discovered-site agreement" in out


def test_figure_command(capsys):
    assert main(["figure", "--app", "graph500", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Fig." in out
    assert "legend" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--app", "doom", "--out", "/tmp/x"])


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("apps", "run", "analyze", "report", "figure", "table1",
                "serve", "submit", "fleet-status"):
        assert cmd in text


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.policy == "block"
    assert args.workers == 4
    assert not args.selftest
    args = build_parser().parse_args(
        ["serve", "--policy", "drop-oldest", "--queue", "8", "--selftest"])
    assert args.policy == "drop-oldest" and args.queue == 8 and args.selftest


def test_report_with_lift_and_merge(capsys):
    assert main(["report", "--app", "minife", "--scale", "0.3",
                 "--lift", "--merge"]) == 0
    out = capsys.readouterr().out
    assert "call-graph lift suggestions" in out
    assert "site-equivalence merging" in out


def test_live_command(capsys):
    assert main(["live", "--app", "miniamr", "--scale", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "live snapshots" in out
    assert "Flat profile:" in out


def test_merge_command(tmp_path, capsys):
    from repro.gprof.gmon import GmonData, read_gmon, write_gmon

    paths = []
    for i in range(3):
        data = GmonData()
        data.add_ticks("f", 10 * (i + 1))
        path = tmp_path / f"g{i}.gmon"
        write_gmon(data, path)
        paths.append(str(path))
    out = tmp_path / "merged.gmon"
    assert main(["merge", *paths, "--out", str(out)]) == 0
    merged = read_gmon(out)
    assert merged.hist["f"] == 60


def test_analyze_merge_ranks(tmp_path, capsys):
    out_dir = str(tmp_path / "mr")
    main(["run", "--app", "miniamr", "--out", out_dir,
          "--scale", "0.2", "--ranks", "2"])
    assert main(["analyze", out_dir, "--merge-ranks"]) == 0
    out = capsys.readouterr().out
    assert "merged 2 ranks" in out


def test_analyze_follow_tails_a_growing_directory(tmp_path, capsys):
    """--follow with a poll budget: live per-interval lines, then the
    final batch report once polling stops."""
    out_dir = str(tmp_path / "follow")
    main(["run", "--app", "graph500", "--out", out_dir, "--scale", "0.2"])
    assert main(["analyze", out_dir, "--follow", "--poll", "0.01",
                 "--max-polls", "2"]) == 0
    out = capsys.readouterr().out
    assert "following" in out
    assert "phase" in out
    assert "[    0]" in out  # live line for the first interval
    assert "Phase summary" in out or "phase" in out.lower()


def test_analyze_follow_rejects_merge_ranks(tmp_path, capsys):
    out_dir = str(tmp_path / "fm")
    main(["run", "--app", "graph500", "--out", out_dir, "--scale", "0.2"])
    assert main(["analyze", out_dir, "--follow", "--merge-ranks",
                 "--max-polls", "1"]) == 2


def test_analyze_follow_saves_model(tmp_path, capsys):
    out_dir = str(tmp_path / "fs")
    model = tmp_path / "followed.ipm"
    main(["run", "--app", "miniamr", "--out", out_dir, "--scale", "0.15"])
    assert main(["analyze", out_dir, "--follow", "--max-polls", "1",
                 "--save-model", str(model)]) == 0
    assert model.exists()


def test_analyze_follow_needs_two_intervals(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    assert main(["analyze", str(tmp_path / "empty"), "--follow",
                 "--poll", "0.01", "--max-polls", "2"]) == 1
    assert "need at least 2" in capsys.readouterr().out


def test_serve_refit_parser_flags():
    args = build_parser().parse_args(["serve"])
    assert args.refit_interval is None  # frozen model by default
    assert args.refit_drift_threshold == 0.3
    args = build_parser().parse_args(
        ["serve", "--refit-interval", "5", "--refit-drift-threshold", "0.2"])
    assert args.refit_interval == 5.0
    assert args.refit_drift_threshold == 0.2


def test_list_apps_command(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "graph500" in out and "paper" in out
    assert "synthetic" in out
    assert "scenario:" in out and "generated" in out


def test_list_apps_kind_filter_and_json(capsys):
    assert main(["list-apps", "--kind", "generated", "--json"]) == 0
    import json

    rows = json.loads(capsys.readouterr().out)
    assert rows and all(r["kind"] == "generated" for r in rows)


def test_generate_command(capsys):
    assert main(["generate", "--n", "3", "--tier", "easy", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert out.count("scenario:") == 3
    assert "tier=easy" in out


def test_generate_writes_spec_files(tmp_path, capsys):
    out_dir = tmp_path / "specs"
    assert main(["generate", "--n", "2", "--out", str(out_dir)]) == 0
    import json

    files = sorted(out_dir.glob("*.json"))
    assert len(files) == 2
    spec = json.loads(files[0].read_text())
    assert {"kernels", "phases", "timeline"} <= set(spec)


def test_run_accepts_scenario_address(tmp_path, capsys):
    out_dir = str(tmp_path / "scn")
    assert main(["run", "--app", "scenario:seed=3,tier=easy",
                 "--out", out_dir]) == 0
    assert main(["analyze", out_dir]) == 0
    out = capsys.readouterr().out
    assert "Phase ID" in out


def test_run_rejects_bad_scenario_address():
    with pytest.raises(SystemExit):
        main(["run", "--app", "scenario:tier=easy", "--out", "/tmp/x"])


def test_sweep_scenarios_command(tmp_path, capsys):
    bench = tmp_path / "bench.json"
    assert main(["sweep-scenarios", "--n", "6", "--tiers", "easy",
                 "--min-median", "easy=0.5",
                 "--bench-out", str(bench)]) == 0
    out = capsys.readouterr().out
    assert "scenario sweep" in out
    import json

    record = json.loads(bench.read_text())
    assert record["scenarios"]["n_scenarios"] == 6
    assert "easy" in record["scenarios"]["tiers"]


def test_sweep_scenarios_enforces_floor(capsys):
    assert main(["sweep-scenarios", "--n", "2", "--tiers", "easy",
                 "--min-median", "easy=1.1"]) == 1
    assert "FAIL" in capsys.readouterr().out
