"""Phase merging (the paper's suggested post-processing)."""

import pytest

from repro.core.postprocess import merge_equivalent_phases
from repro.eval.experiments import run_experiment


@pytest.fixture(scope="module")
def lammps_result():
    return run_experiment("lammps")


@pytest.fixture(scope="module")
def minife_result():
    return run_experiment("minife")


def test_lammps_compute_phases_merge(lammps_result):
    """Paper Table V: phases 0 and 2 (both PairLJCut::compute) 'should
    really be identified as a single phase' — merging does exactly that."""
    merged = merge_equivalent_phases(lammps_result.analysis)
    assert merged.n_original == 4
    assert merged.merges_applied() >= 1
    compute_groups = [g for g in merged.merged
                      if g.functions == frozenset({"PairLJCut::compute"})]
    assert len(compute_groups) == 1
    assert compute_groups[0].was_merged
    assert len(compute_groups[0].phase_ids) == 2


def test_merged_share_is_sum_of_members(lammps_result):
    merged = merge_equivalent_phases(lammps_result.analysis)
    total_intervals = lammps_result.analysis.interval_data.n_intervals
    for group in merged.merged:
        assert group.app_pct == pytest.approx(
            100.0 * len(group.interval_indices) / total_intervals
        )
    assert sum(g.app_pct for g in merged.merged) == pytest.approx(100.0)


def test_intervals_partition_preserved(lammps_result):
    merged = merge_equivalent_phases(lammps_result.analysis)
    seen = [i for g in merged.merged for i in g.interval_indices]
    assert len(seen) == len(set(seen)) == lammps_result.analysis.interval_data.n_intervals


def test_distinct_phases_not_merged(minife_result):
    """MiniFE's five phases have distinct site sets: nothing merges."""
    merged = merge_equivalent_phases(minife_result.analysis)
    assert merged.n_phases == merged.n_original == 5
    assert all(not g.was_merged for g in merged.merged)


def test_merged_ordering_by_size(lammps_result):
    merged = merge_equivalent_phases(lammps_result.analysis)
    sizes = [len(g.interval_indices) for g in merged.merged]
    assert sizes == sorted(sizes, reverse=True)
    assert [g.merged_id for g in merged.merged] == list(range(len(sizes)))


def test_sites_union_deduplicated(lammps_result):
    merged = merge_equivalent_phases(lammps_result.analysis)
    for group in merged.merged:
        assert len(group.sites) == len(set(group.sites))
        assert {s.function for s in group.sites} == set(group.functions)
