"""gmon merging (gprof -s semantics) and merged-series analysis."""

import pytest

from repro.apps import get_app
from repro.core.pipeline import analyze_snapshots
from repro.gprof.gmon import GmonData
from repro.gprof.merge import merge_gmons, merge_sample_series
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import ValidationError


def snap(hist, arcs=None, t=1.0, period=0.01):
    data = GmonData(sample_period=period, timestamp=t)
    for func, ticks in hist.items():
        data.add_ticks(func, ticks)
    for arc, count in (arcs or {}).items():
        data.add_arc(*arc, count)
    return data


def test_merge_sums_hist_and_arcs():
    a = snap({"f": 10, "g": 5}, {("m", "f"): 2})
    b = snap({"f": 3}, {("m", "f"): 1, ("m", "g"): 4})
    merged = merge_gmons([a, b])
    assert merged.hist == {"f": 13, "g": 5}
    assert merged.arcs == {("m", "f"): 3, ("m", "g"): 4}


def test_merge_keeps_latest_timestamp_and_rank():
    merged = merge_gmons([snap({"f": 1}, t=1.0), snap({"f": 1}, t=7.0)], rank=-1)
    assert merged.timestamp == 7.0
    assert merged.rank == -1


def test_merge_rejects_mixed_periods():
    with pytest.raises(ValidationError):
        merge_gmons([snap({"f": 1}, period=0.01), snap({"f": 1}, period=0.02)])


def test_merge_empty_rejected():
    with pytest.raises(ValidationError):
        merge_gmons([])
    with pytest.raises(ValidationError):
        merge_sample_series([])


def test_merge_series_elementwise():
    rank0 = [snap({"f": 10}, t=1.0), snap({"f": 20}, t=2.0)]
    rank1 = [snap({"f": 12}, t=1.0), snap({"f": 22}, t=2.0), snap({"f": 30}, t=3.0)]
    merged = merge_sample_series([rank0, rank1])
    assert len(merged) == 2  # up to the shortest series
    assert merged[0].hist == {"f": 22}
    assert merged[1].hist == {"f": 42}


def test_merged_multirank_analysis_matches_rank0_shape():
    """Aggregate-then-analyze finds the same phase structure as rank 0
    (the paper's symmetric-parallel premise, by another route)."""
    result = Session(get_app("miniamr"), SessionConfig(ranks=3, scale=0.6)).run()
    rank0_analysis = analyze_snapshots(result.samples(0))
    merged = merge_sample_series([r.samples for r in result.per_rank])
    merged_analysis = analyze_snapshots(merged)
    # Aggregation smooths per-rank noise, which can shift the elbow by
    # one; the phase structure must stay comparable, not identical.
    assert abs(merged_analysis.n_phases - rank0_analysis.n_phases) <= 1
    rank0_top = max(rank0_analysis.sites(), key=lambda s: s.app_pct)
    merged_top = max(merged_analysis.sites(), key=lambda s: s.app_pct)
    assert rank0_top.function == merged_top.function  # dominant site shared
