"""Heartbeat series extraction and statistics."""

import numpy as np
import pytest

from repro.heartbeat.accumulator import HeartbeatRecord
from repro.heartbeat.analysis import HeartbeatSeries, series_from_records


def rec(hb_id, idx, count=1.0, dur=0.1, rank=0):
    return HeartbeatRecord(rank=rank, hb_id=hb_id, interval_index=idx,
                           time=float(idx + 1), count=count, avg_duration=dur)


def sample_series():
    records = [
        rec(1, 0, count=2.0), rec(1, 1, count=3.0), rec(1, 4, count=1.0),
        rec(2, 2, count=5.0, dur=0.4),
    ]
    return series_from_records(records, n_intervals=6, interval=1.0,
                               labels={1: "alpha", 2: "beta"})


def test_dense_arrays_with_zero_fill():
    series = sample_series()
    assert series.counts[1].tolist() == [2, 3, 0, 0, 1, 0]
    assert series.counts[2].tolist() == [0, 0, 5, 0, 0, 0]


def test_n_intervals_inferred():
    series = series_from_records([rec(1, 7)], interval=1.0)
    assert series.n_intervals == 8


def test_rank_filter():
    records = [rec(1, 0, rank=0), rec(1, 1, rank=3)]
    series = series_from_records(records, rank=0, n_intervals=2)
    assert series.counts[1].tolist() == [1.0, 0.0]


def test_activity_span_and_gaps():
    series = sample_series()
    assert series.activity_span(1) == (0, 4)
    assert series.gaps(1) == [(2, 3)]
    assert series.gaps(2) == []


def test_silent_heartbeat():
    series = series_from_records([rec(1, 0)], n_intervals=3)
    series.counts[2] = np.zeros(3)
    series.durations[2] = np.zeros(3)
    assert series.activity_span(2) is None
    assert series.gaps(2) == []


def test_rates_and_durations():
    series = sample_series()
    assert series.total_count(1) == pytest.approx(6.0)
    assert series.mean_rate(1) == pytest.approx(1.0)
    assert series.mean_duration(2) == pytest.approx(0.4)
    assert series.mean_duration(1) == pytest.approx(0.1)


def test_summary_rows():
    rows = sample_series().summary()
    assert [r["hb_id"] for r in rows] == [1, 2]
    alpha = rows[0]
    assert alpha["label"] == "alpha"
    assert alpha["active_intervals"] == 3
    assert alpha["n_gaps"] == 1


def test_labels_fallback():
    series = series_from_records([rec(9, 0)], n_intervals=1)
    assert series.label(9) == "HB9"


def test_duration_plot_renders():
    text = sample_series().duration_plot("durations").render()
    assert "alpha" in text and "beta" in text


def test_count_plot_renders():
    text = sample_series().count_plot("counts").render()
    assert "counts" in text
