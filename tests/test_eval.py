"""Evaluation harness: experiments, overheads, tables, figures."""

import pytest

from repro.apps import paper_app_names
from repro.eval import paperdata
from repro.eval.experiments import run_experiment
from repro.eval.figures import FIGURES, heartbeat_figure
from repro.eval.overhead import measure_overheads
from repro.eval.tables import (
    app_sites_table,
    comparison_table,
    paper_sites_table,
    render_all,
    table1,
    table1_comparison,
)
from repro.apps import get_app


def test_experiment_memoized(experiments):
    again = run_experiment("graph500")
    assert again is experiments["graph500"]


def test_experiment_has_all_artifacts(experiments):
    result = experiments["minife"]
    assert result.analysis.n_phases > 0
    assert result.discovered_records
    assert result.manual_records
    assert result.overheads.uninstrumented_s > 0


def test_overhead_percentages_finite(experiments):
    for result in experiments.values():
        assert -20 < result.overheads.incprof_overhead_pct < 25
        assert -5 < result.overheads.heartbeat_overhead_pct < 15


def test_overhead_model_accounting():
    overheads = measure_overheads(get_app("graph500"), scale=0.2)
    assert overheads.incprof_overhead_model_s > 0
    assert overheads.total_calls > 1_000_000


def test_table1_contains_all_apps(experiments):
    text = table1(experiments).render()
    for name in paper_app_names():
        assert name in text


def test_table1_comparison_renders(experiments):
    text = table1_comparison(experiments).render()
    assert "paper" in text


def test_app_sites_tables(experiments):
    for name, result in experiments.items():
        text = app_sites_table(result).render()
        assert "INSTRUMENTED FUNCTIONS" in text
        assert "Manual Instrumentation Sites" in text


def test_comparison_table_lists_paper_functions(experiments):
    for name, result in experiments.items():
        text = comparison_table(result).render()
        for row in paperdata.SITES[name]:
            assert row.function in text


def test_paper_sites_tables_render():
    for name in paper_app_names():
        assert name.upper() in paper_sites_table(name).render()


def test_render_all(experiments):
    text = render_all(experiments)
    assert "TABLE I" in text
    assert "GADGET2" in text


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------
def test_all_figures_regenerate(experiments):
    for name, result in experiments.items():
        figure = heartbeat_figure(result)
        assert figure.number == FIGURES[name]["number"]
        text = figure.render()
        assert f"Fig. {figure.number}" in text
        assert figure.summary_rows()


def test_figure_manual_series_where_paper_shows_them(experiments):
    assert heartbeat_figure(experiments["graph500"]).manual is not None
    assert heartbeat_figure(experiments["minife"]).manual is None
    assert heartbeat_figure(experiments["miniamr"]).manual is not None


def test_discovered_series_spans_run(experiments):
    result = experiments["graph500"]
    series = result.discovered_series()
    assert series.n_intervals >= 150
    # The dominant discovered site is active over most of the run's tail.
    best = max(series.hb_ids(), key=series.total_count)
    assert series.total_count(best) > 50


def test_paperdata_helpers():
    assert paperdata.paper_function_share("graph500", "run_bfs") == pytest.approx(25.5)
    sites = paperdata.paper_site_set("miniamr")
    assert ("check_sum", paperdata.SITES["miniamr"][0].inst_type) in sites


# ----------------------------------------------------------------------
# experiment cache bounds (daemon-safe memoization)
# ----------------------------------------------------------------------
def test_cache_is_lru_bounded():
    from repro.eval import experiments as exp

    saved = dict(exp._CACHE)
    saved_capacity = exp.cache_info()["capacity"]
    try:
        exp.clear_cache()
        exp.set_cache_capacity(2)
        for seed in (1, 2, 3):
            exp.run_experiment("synthetic", scale=0.25, seed=seed)
        info = exp.cache_info()
        assert info["size"] == 2  # the oldest entry was evicted
        seeds_cached = {key[2] for key in exp._CACHE}
        assert seeds_cached == {2, 3}
        # a cache hit refreshes recency: seed 2 survives the next insert
        exp.run_experiment("synthetic", scale=0.25, seed=2)
        exp.run_experiment("synthetic", scale=0.25, seed=4)
        seeds_cached = {key[2] for key in exp._CACHE}
        assert seeds_cached == {2, 4}
    finally:
        exp.clear_cache()
        exp.set_cache_capacity(saved_capacity)
        exp._CACHE.update(saved)


def test_cache_capacity_validation():
    from repro.eval.experiments import set_cache_capacity

    with pytest.raises(ValueError):
        set_cache_capacity(0)


def test_convergence_curve_reaches_agreement():
    from repro.eval import label_agreement, measure_convergence

    result = measure_convergence("synthetic", checkpoints=4)
    assert len(result.points) == 4
    assert [p.intervals for p in result.points] == \
        sorted(p.intervals for p in result.points)
    assert result.points[-1].intervals == result.n_intervals
    assert 0.0 <= result.final_agreement <= 1.0
    # the online engine must substantially agree with hindsight
    assert result.final_agreement > 0.75
    # versions only move forward as the live model refits
    versions = [p.model_version for p in result.points]
    assert versions == sorted(versions)
    table = result.to_table().render()
    assert "agreement" in table and "%" in table
    # the alignment metric itself: permuted-alphabet perfection
    assert label_agreement([None, 5, 5, 9], [0, 1, 1, 0]) == 1.0
    assert label_agreement([1, 1], [0, 1]) == 0.5
    assert label_agreement([], []) == 0.0
