"""Phase timeline rendering."""

import pytest

from repro.core.pipeline import analyze_snapshots
from repro.core.timeline import phase_strip, render_timeline, run_lengths


def test_strip_symbols():
    assert phase_strip([0, 0, 1, 2]) == "0012"


def test_strip_novel_symbol():
    assert phase_strip([0, -1, 1]) == "0!1"


def test_strip_empty():
    assert phase_strip([]) == ""


def test_strip_compression_majority():
    labels = [0] * 50 + [1] * 50
    strip = phase_strip(labels, width=10)
    assert strip == "0000011111"


def test_strip_overflow_symbol():
    assert phase_strip([25]) == "?"


def test_run_lengths():
    assert run_lengths([0, 0, 1, 1, 1, 0]) == [(0, 2), (1, 3), (0, 1)]
    assert run_lengths([]) == []


def test_render_timeline_real_run(graph500_samples):
    analysis = analyze_snapshots(graph500_samples)
    text = render_timeline(analysis, width=80)
    assert "phase timeline" in text
    # Every phase appears in the legend with its sites.
    for phase in analysis.phase_model.phases:
        assert f"phase {phase.phase_id}" in text
    # The strip is exactly the requested width.
    strip_line = text.splitlines()[1].strip()
    assert len(strip_line) == 80


def test_timeline_temporal_structure(graph500_samples):
    """Graph500's init phase occupies the left edge of the strip."""
    analysis = analyze_snapshots(graph500_samples)
    labels = analysis.phase_model.labels.tolist()
    # Whatever phase interval 0 belongs to should dominate the first 10%.
    head = labels[: max(1, len(labels) // 10)]
    assert head.count(labels[0]) / len(head) > 0.8
