"""Profiling arbitrary scripts/callables (the preload analogue)."""

import textwrap
import time

import pytest

from repro.gprof.flatprofile import FlatProfile
from repro.incprof.script_runner import profile_callable, profile_script
from repro.store.loose import LooseStore
from repro.util.errors import CollectorError


def busy(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def two_stage():
    busy(0.12)
    busy(0.06)
    return "ok"


def test_profile_callable_collects_and_returns():
    profile = profile_callable(two_stage, interval=0.05)
    assert profile.result == "ok"
    assert len(profile.samples) >= 2
    assert profile.final.self_seconds("busy") >= 0.15


def test_profile_callable_persists(tmp_path):
    profile_callable(two_stage, interval=0.05, store_dir=tmp_path)
    assert list(LooseStore(tmp_path).scan("0"))


DEMO = textwrap.dedent('''
    import sys, time

    def hot(seconds):
        end = time.perf_counter() + seconds
        while time.perf_counter() < end:
            pass

    def cold(seconds):
        end = time.perf_counter() + seconds
        while time.perf_counter() < end:
            pass

    if __name__ == "__main__":
        hot(float(sys.argv[1]))
        cold(float(sys.argv[2]))
''')


@pytest.fixture()
def demo_script(tmp_path):
    path = tmp_path / "demo.py"
    path.write_text(DEMO)
    return path


def test_profile_script_measures_user_functions(demo_script):
    profile = profile_script(demo_script, argv=["0.2", "0.05"], interval=0.05)
    final = profile.final
    assert final.self_seconds("hot") > final.self_seconds("cold") > 0.0
    assert final.calls_into("hot") == 1


def test_profile_script_excludes_stdlib(demo_script):
    profile = profile_script(demo_script, argv=["0.05", "0.05"], interval=0.05)
    names = set(profile.final.functions())
    # No import machinery in the profile.
    assert not any("Importer" in n or "Finder" in n or "importlib" in n
                   for n in names)


def test_profile_script_include_stdlib_option(demo_script):
    profile = profile_script(demo_script, argv=["0.05", "0.02"],
                             interval=0.1, exclude_stdlib=False)
    names = set(profile.final.functions())
    assert "hot" in names
    assert len(names) > 4  # machinery present


def test_profile_script_argv_restored(demo_script):
    import sys

    before = list(sys.argv)
    profile_script(demo_script, argv=["0.02", "0.02"], interval=0.1)
    assert sys.argv == before


def test_missing_script_rejected(tmp_path):
    with pytest.raises(CollectorError):
        profile_script(tmp_path / "ghost.py")


def test_snapshots_feed_flat_profile(demo_script):
    profile = profile_script(demo_script, argv=["0.1", "0.05"], interval=0.05)
    text = FlatProfile.from_gmon(profile.final).render()
    assert "hot" in text and "cold" in text
