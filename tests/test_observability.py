"""Observability layer: tracing, exposition, self-heartbeats, logging.

Unit tests run everywhere; the end-to-end tests bind loopback sockets
and carry the ``socket`` marker (deselect with ``-m "not socket"``).
"""

import io
import json
import math
import socket
import threading
import urllib.request

import pytest

from repro.core.online import OnlinePhaseTracker
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.heartbeat.analysis import phase_assignment, series_from_records
from repro.heartbeat.output import CSVSink, read_csv_records
from repro.service import (
    Endpoint,
    PhaseClient,
    PhaseMonitorServer,
    ServerConfig,
    SyntheticLoadGenerator,
    TRACE_STAGES,
    parse_prometheus,
    publish_samples,
    render_prometheus,
)
from repro.service.exposition import MetricsHTTPServer
from repro.service.selfekg import (
    SELF_RANK,
    SELF_STAGE_LABELS,
    SELF_STAGES,
    SelfInstrument,
)
from repro.service.tracing import TraceStore, new_trace_id
from repro.util.errors import ValidationError
from repro.util.jsonlog import JsonLogger, NullLogger


def can_bind_loopback() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
def test_jsonlog_emits_one_json_object_per_line():
    stream = io.StringIO()
    log = JsonLogger("test", level="info", stream=stream,
                     clock=lambda: 42.0)
    log.info("server-started", endpoint="127.0.0.1:1", workers=2)
    log.warning("slow-op", total_seconds=1.5)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "server-started"
    assert first["level"] == "info"
    assert first["logger"] == "test"
    assert first["workers"] == 2
    assert first["ts"] == 42.0
    assert json.loads(lines[1])["level"] == "warning"


def test_jsonlog_level_threshold_filters():
    stream = io.StringIO()
    log = JsonLogger("test", level="warning", stream=stream)
    log.debug("noise")
    log.info("noise")
    log.error("boom", code=7)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "boom"
    assert log.emitted == 1


def test_jsonlog_bind_carries_context():
    stream = io.StringIO()
    log = JsonLogger("root", level="info", stream=stream).bind(stream_id="s1")
    log.info("hello")
    assert json.loads(stream.getvalue())["stream_id"] == "s1"


def test_null_logger_discards_everything():
    log = NullLogger()
    log.error("boom")
    assert log.emitted == 0


# ----------------------------------------------------------------------
# trace store
# ----------------------------------------------------------------------
def test_trace_lifecycle_records_all_spans():
    store = TraceStore(capacity=8)
    tid = new_trace_id()
    store.begin(tid, "s1", 3)
    for stage in TRACE_STAGES:
        store.add_span(tid, stage, 0.25)
    record = store.complete(tid)
    assert record is not None and record.completed
    row = store.get(tid)
    assert row["stream_id"] == "s1" and row["seq"] == 3
    assert set(row["spans"]) == set(TRACE_STAGES)
    assert row["total_seconds"] == pytest.approx(1.0)
    assert store.stats() == {"stored": 1, "started": 1, "finished": 1,
                             "evicted": 0}


def test_trace_unknown_stage_rejected():
    store = TraceStore()
    store.begin("t", "s", 0)
    with pytest.raises(ValidationError):
        store.add_span("t", "teleport", 0.1)


def test_trace_ring_evicts_oldest():
    store = TraceStore(capacity=2)
    for i in range(4):
        store.begin(f"t{i}", "s", i)
    assert len(store) == 2
    assert store.get("t0") is None and store.get("t3") is not None
    assert store.stats()["evicted"] == 2
    # Spans for evicted traces are ignored, not an error (the worker may
    # still hold an evicted id under sustained load).
    store.add_span("t0", "classify", 0.1)


def test_trace_rows_filter_and_order():
    store = TraceStore()
    for i in range(3):
        store.begin(f"t{i}", "a" if i < 2 else "b", i)
    store.complete("t0")
    rows = store.rows(stream_id="a")
    assert [r["trace_id"] for r in rows] == ["t1", "t0"]  # recent first
    assert [r["trace_id"] for r in store.rows(completed_only=True)] == ["t0"]
    assert len(store.rows(limit=1)) == 1


def test_trace_export_restore_round_trip():
    store = TraceStore()
    store.begin("t1", "s", 0)
    store.add_span("t1", "enqueue", 0.5)
    store.complete("t1")
    clone = TraceStore()
    assert clone.restore_rows(store.export_rows()) == 1
    assert clone.get("t1")["spans"] == {"enqueue": 0.5}
    assert clone.get("t1")["completed"]
    # Malformed rows are skipped, never fatal (old checkpoints).
    assert clone.restore_rows([{"nope": 1}, "junk"]) == 0


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_render_prometheus_counters_gauges_and_labels():
    stats = {
        "processed": 7, "ingested": 9, "streams": 2,
        "queue_depths": {"a": 3, "b": 0},
        "stages": {"classify": {"calls": 2, "items": 8, "seconds": 0.5}},
        "classify_latency": {"p50": 0.01, "p99.9": 0.2},
        "traces": {"started": 9, "finished": 7, "evicted": 0},
    }
    text = render_prometheus(stats)
    parsed = parse_prometheus(text)
    assert parsed["incprofd_processed_total"] == 7.0
    assert parsed["incprofd_streams"] == 2.0
    assert parsed['incprofd_queue_depth{stream="a"}'] == 3.0
    assert parsed['incprofd_stage_seconds_total{stage="classify"}'] == 0.5
    assert parsed['incprofd_classify_latency_seconds{quantile="0.999"}'] == 0.2
    assert parsed["incprofd_traces_finished_total"] == 7.0
    # Text format contract: HELP/TYPE headers and a trailing newline.
    assert "# TYPE incprofd_processed_total counter" in text
    assert text.endswith("\n")


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValidationError):
        parse_prometheus("not metrics at all\n")


def test_render_prometheus_non_finite_values_round_trip():
    # Regression: _fmt crashed the whole scrape on NaN/inf (int(nan)
    # raises), so one poisoned stat took down every metric.  The text
    # format has spellings for all three — use them.
    stats = {
        "processed": 3,
        "ingest_rate": float("nan"),
        "queue_depths": {"a": float("inf"), "b": float("-inf")},
    }
    text = render_prometheus(stats)
    assert "NaN" in text and "+Inf" in text and "-Inf" in text
    parsed = parse_prometheus(text)
    assert parsed["incprofd_processed_total"] == 3.0
    assert math.isnan(parsed["incprofd_ingest_rate"])
    assert parsed['incprofd_queue_depth{stream="a"}'] == float("inf")
    assert parsed['incprofd_queue_depth{stream="b"}'] == float("-inf")


@pytest.mark.socket
def test_metrics_http_scrape_survives_nan_stat():
    # End-to-end form of the acceptance criterion: a NaN gauge must not
    # turn /metrics into a 500.
    stats = {"processed": 1, "ingest_rate": float("nan")}
    with MetricsHTTPServer(lambda: render_prometheus(stats),
                           host="127.0.0.1", port=0) as srv:
        with urllib.request.urlopen(srv.url, timeout=10) as resp:
            assert resp.status == 200
            body = resp.read().decode()
    assert math.isnan(parse_prometheus(body)["incprofd_ingest_rate"])


def test_render_prometheus_analytics_gauges():
    stats = {
        "processed": 1,
        "analytics": {
            "streams": 6, "cohorts": 2, "anomalies": 1,
            "drift_events": 0, "cohort_sizes": {"0": 4, "1": 2},
        },
    }
    parsed = parse_prometheus(render_prometheus(stats))
    assert parsed["incprofd_analytics_streams"] == 6.0
    assert parsed["incprofd_analytics_cohorts"] == 2.0
    assert parsed["incprofd_analytics_anomalies"] == 1.0
    assert parsed["incprofd_analytics_drift_events"] == 0.0
    assert parsed['incprofd_analytics_cohort_size{cohort="0"}'] == 4.0
    assert parsed['incprofd_analytics_cohort_size{cohort="1"}'] == 2.0


# ----------------------------------------------------------------------
# self-instrumentation
# ----------------------------------------------------------------------
def test_selfekg_flushes_stage_records_with_self_rank():
    fake = [0.0]
    inst = SelfInstrument(interval=1.0, clock=lambda: fake[0])
    inst.record("ingest", 0.2)
    inst.record("classify", 0.1)
    fake[0] = 2.5
    inst.tick()
    records = inst.records
    assert records, "tick must flush completed intervals"
    assert all(r.rank == SELF_RANK for r in records)
    assert {r.hb_id for r in records} <= {i + 1
                                          for i in range(len(SELF_STAGES))}


def test_selfekg_concurrent_records_never_violate_ordering():
    """Worker threads record stages concurrently; the accumulator's
    non-decreasing end-time contract must hold (no exception)."""
    inst = SelfInstrument(interval=0.01)

    def hammer(stage):
        for _ in range(200):
            inst.record(stage, 0.0001)

    threads = [threading.Thread(target=hammer, args=(s,))
               for s in SELF_STAGES]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    inst.tick()
    assert inst.events == 800


def test_selfekg_stage_summary_minimum_not_clobbered():
    fake = [0.0]
    inst = SelfInstrument(interval=1.0, clock=lambda: fake[0])
    inst.record("ingest", 0.5)
    fake[0] = 1.5
    inst.record("ingest", 0.3)
    fake[0] = 3.0
    inst.tick()
    summary = inst.stage_summary()
    ingest = summary["stages"]["ingest"]
    assert ingest["count"] == pytest.approx(2.0)
    # Two intervals, minima 0.5 and 0.3: the merged lifetime minimum is
    # 0.3 — a zero-default merge would have reported 0.0.
    assert ingest["min"] == pytest.approx(0.3)
    assert summary["events"] == 2


# ----------------------------------------------------------------------
# phase assignment over heartbeat series
# ----------------------------------------------------------------------
def _series_two_phases():
    from repro.heartbeat.accumulator import HeartbeatRecord

    records = []
    for i in range(12):
        busy = i < 6
        records.append(HeartbeatRecord(
            rank=0, hb_id=1, interval_index=i, time=float(i + 1),
            count=20.0 if busy else 2.0,
            avg_duration=0.01 if busy else 0.3,
            min_duration=None, max_duration=0.4))
    return series_from_records(records, interval=1.0)


def test_phase_assignment_labels_every_interval():
    series = _series_two_phases()
    assignment = phase_assignment(series, kmax=4, seed=0)
    assert len(assignment.phase_sequence()) == series.n_intervals
    assert assignment.k == 2
    # The two behavioural halves land in different phases.
    labels = assignment.phase_sequence()
    assert len(set(labels[:6])) == 1 and len(set(labels[6:])) == 1
    assert labels[0] != labels[-1]


def test_phase_assignment_rejects_empty_series():
    empty = series_from_records([], n_intervals=0)
    with pytest.raises(ValidationError):
        phase_assignment(empty)


# ----------------------------------------------------------------------
# end-to-end over real sockets
# ----------------------------------------------------------------------
@pytest.mark.socket
def test_metrics_http_server_serves_text():
    if not can_bind_loopback():
        pytest.skip("cannot bind loopback sockets here")
    with MetricsHTTPServer(lambda: render_prometheus({"processed": 5}),
                           port=0) as http:
        body = urllib.request.urlopen(http.url, timeout=5).read().decode()
        assert parse_prometheus(body)["incprofd_processed_total"] == 5.0
        health = urllib.request.urlopen(
            http.url.replace("/metrics", "/healthz"), timeout=5)
        assert health.status == 200


@pytest.mark.socket
def test_observability_end_to_end(tmp_path):
    """The acceptance chaos run: N traced streams, mid-run scrapes,
    and the daemon's own heartbeats analysed by its own pipeline."""
    if not can_bind_loopback():
        pytest.skip("cannot bind loopback sockets here")
    generator = SyntheticLoadGenerator()
    analysis = analyze_snapshots(
        generator.stream(0, 24),
        AnalysisConfig(kmax=4, drop_short_final=False))
    template = OnlinePhaseTracker.from_analysis(analysis)
    config = ServerConfig(
        endpoint=Endpoint.tcp("127.0.0.1", 0), workers=2,
        housekeeping_interval=0.05, self_heartbeat_interval=0.05,
        metrics_port=0, log_level="error")
    n_streams, n_intervals = 3, 10
    reports = {}
    with PhaseMonitorServer(template, config) as server:
        url = server.metrics_http.url

        def publish(i):
            reports[i] = publish_samples(
                server.endpoint, f"obs-{i}",
                generator.stream(i, n_intervals), app="obs", rank=i,
                delay=0.005)

        threads = [threading.Thread(target=publish, args=(i,))
                   for i in range(n_streams)]
        for thread in threads:
            thread.start()
        # Mid-run scrapes: both exposition paths must serve while the
        # daemon is under load.
        mid_http = urllib.request.urlopen(url, timeout=5).read().decode()
        assert "incprofd_ingested_total" in mid_http
        parse_prometheus(mid_http)  # must parse mid-run too
        with PhaseClient(server.endpoint) as client:
            parse_prometheus(client.metrics())
        for thread in threads:
            thread.join()

        with PhaseClient(server.endpoint) as client:
            # (a) every submitted interval's trace id has all four spans.
            for i, report in reports.items():
                assert report.error == ""
                assert set(report.trace_ids) == set(range(n_intervals))
                for seq, trace_id in report.trace_ids.items():
                    reply = client.trace(trace_id=trace_id)
                    row = reply.data["traces"][0]
                    assert row["stream_id"] == f"obs-{i}"
                    assert row["seq"] == seq
                    assert row["completed"]
                    assert set(row["spans"]) == set(TRACE_STAGES)
                    assert row["total_seconds"] >= 0.0
                # Stream-scoped query sees this stream's traces too.
                scoped = client.trace(stream_id=f"obs-{i}",
                                      limit=n_intervals).data["traces"]
                assert len(scoped) == n_intervals

            # (b) Prometheus output parses and agrees with wire stats
            # (quiescent: all streams drained before the scrape).
            stats = client.stats().data
            parsed = parse_prometheus(client.metrics())
            assert parsed["incprofd_processed_total"] == float(
                stats["processed"])
            parsed_http = parse_prometheus(
                urllib.request.urlopen(url, timeout=5).read().decode())
            assert parsed_http["incprofd_processed_total"] == float(
                stats["processed"])
            assert stats["traces"]["finished"] >= n_streams * n_intervals
            assert stats["self_heartbeats"]["events"] > 0

        # (c) the daemon's self-heartbeat records round-trip through CSV
        # into a non-empty phase assignment of incprofd itself.
        records = server.selfekg.records
        assert records, "housekeeping should have flushed self-heartbeats"
    csv_path = tmp_path / "incprofd-self.csv"
    with CSVSink(csv_path) as sink:
        for record in records:
            sink(record)
    loaded = read_csv_records(csv_path)
    assert loaded and all(r.rank == SELF_RANK for r in loaded)
    series = series_from_records(loaded, rank=SELF_RANK,
                                 labels=SELF_STAGE_LABELS)
    assignment = phase_assignment(series, kmax=3, seed=0)
    assert assignment.k >= 1
    assert len(assignment.phase_sequence()) == series.n_intervals
    assert series.n_intervals > 0


@pytest.mark.socket
def test_trace_survives_checkpoint_restart(tmp_path):
    if not can_bind_loopback():
        pytest.skip("cannot bind loopback sockets here")
    generator = SyntheticLoadGenerator()
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                          checkpoint_dir=str(tmp_path / "ckpt"),
                          self_heartbeat_interval=None, log_level="error")
    with PhaseMonitorServer(None, config) as server:
        report = publish_samples(server.endpoint, "s1",
                                 generator.stream(0, 4), app="x", rank=0)
        assert report.error == ""
        trace_ids = dict(report.trace_ids)
    # stop() wrote a final checkpoint; a fresh daemon restores the traces.
    with PhaseMonitorServer(None, config) as revived:
        with PhaseClient(revived.endpoint) as client:
            for seq, trace_id in trace_ids.items():
                row = client.trace(trace_id=trace_id).data["traces"][0]
                assert row["seq"] == seq
                assert set(row["spans"]) == set(TRACE_STAGES)


@pytest.mark.socket
def test_untraced_snapshot_gets_server_minted_trace():
    if not can_bind_loopback():
        pytest.skip("cannot bind loopback sockets here")
    generator = SyntheticLoadGenerator()
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                          self_heartbeat_interval=None, log_level="error")
    with PhaseMonitorServer(None, config) as server:
        with PhaseClient(server.endpoint) as client:
            client.hello("bare", app="x")
            reply = client.snapshot("bare", 0, generator.stream(0, 1)[0])
            minted = reply.data["trace"]
            assert minted  # server minted an id for the untraced publisher
            client.bye("bare")
            row = client.trace(trace_id=minted).data["traces"][0]
            assert row["completed"]


@pytest.mark.socket
def test_cli_metrics_and_top_verbs(capsys):
    if not can_bind_loopback():
        pytest.skip("cannot bind loopback sockets here")
    from repro.cli import main as cli_main

    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                          self_heartbeat_interval=None, log_level="error")
    with PhaseMonitorServer(None, config) as server:
        to = f"{server.endpoint.host}:{server.endpoint.port}"
        assert cli_main(["metrics", "--to", to]) == 0
        out = capsys.readouterr().out
        assert parse_prometheus(out)["incprofd_processed_total"] == 0.0
        assert cli_main(["top", "--to", to, "--iterations", "2",
                         "--refresh", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "incprofd @" in out and "rate" in out
    assert cli_main(["metrics", "--to", to]) == 1  # daemon gone: error path
