"""Failure injection: the pipeline on damaged or degenerate inputs.

Production profile data gets truncated, reordered, and corrupted; the
analysis should fail loudly on structural damage and degrade gracefully
on statistical damage (missing samples, empty intervals, tiny runs).
"""

import numpy as np
import pytest

from repro.core.intervals import intervals_from_snapshots
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.store.loose import LooseStore
from repro.util.errors import FormatError, ProfileDataError, ReproError


def test_missing_middle_sample_still_analyzable(graph500_samples):
    """A lost dump merges two intervals; analysis proceeds (coarser)."""
    damaged = graph500_samples[:50] + graph500_samples[51:]
    analysis = analyze_snapshots(damaged)
    assert analysis.n_phases >= 2


def test_truncated_run_analyzable(graph500_samples):
    """Only the first quarter of the run collected (killed job)."""
    analysis = analyze_snapshots(graph500_samples[: len(graph500_samples) // 4])
    assert analysis.n_phases >= 1


def test_duplicate_final_sample_harmless(graph500_samples):
    """The exit dump can duplicate the last periodic one (same timestamp
    modulo the partial-interval filter)."""
    damaged = list(graph500_samples) + [graph500_samples[-1]]
    analysis = analyze_snapshots(damaged)
    assert analysis.n_phases >= 2


def test_reordered_snapshots_rejected(graph500_samples):
    damaged = list(graph500_samples)
    damaged[10], damaged[20] = damaged[20], damaged[10]
    with pytest.raises(ProfileDataError):
        analyze_snapshots(damaged)


def test_two_snapshot_minimum():
    with pytest.raises(ProfileDataError):
        analyze_snapshots(graph_snaps(1))
    analysis = analyze_snapshots(graph_snaps(3))
    assert analysis.n_phases >= 1


def graph_snaps(n):
    snaps = []
    cum = GmonData()
    for i in range(n):
        cum.add_ticks("f", 100)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    return snaps


def test_single_function_run_one_phase():
    analysis = analyze_snapshots(graph_snaps(20))
    assert analysis.n_phases == 1
    assert analysis.sites()[0].function == "f"


def test_idle_only_intervals_in_middle():
    """A stall (no samples for several intervals) must not break anything."""
    snaps = []
    cum = GmonData()
    for i in range(30):
        if not 10 <= i < 15:  # five fully idle intervals
            cum.add_ticks("f", 100)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    analysis = analyze_snapshots(snaps)
    assert analysis.n_phases >= 1
    # The idle intervals cannot be covered by any site.
    covered = {i for s in analysis.sites() for i in s.covered_intervals}
    assert not covered & set(range(10, 15))


def test_corrupt_sample_file_raises(tmp_path, graph500_samples):
    store = LooseStore(tmp_path)
    for i, snap in enumerate(graph500_samples[:5]):
        store.append("0", i, snap)
    # Corrupt the third file in place.
    path = store.path_for(0, 2)
    blob = bytearray(path.read_bytes())
    blob[3] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(ReproError):
        list(store.scan("0"))


def test_bitflip_in_counts_detected_or_clamped():
    """A bit flip in a count either fails parsing or yields clamped,
    non-negative interval data — never negative self-time."""
    snaps = graph_snaps(5)
    blob = bytearray(dumps_gmon(snaps[2]))
    blob[-3] ^= 0x40
    try:
        snaps[2] = loads_gmon(bytes(blob))
    except FormatError:
        return  # detected: fine
    try:
        data = intervals_from_snapshots(snaps)
    except ReproError:
        return  # detected downstream: fine
    assert (data.self_time >= 0).all()


def test_constant_profile_is_single_phase():
    """Zero variance across intervals: elbow must settle on one phase."""
    snaps = []
    cum = GmonData()
    for i in range(40):
        cum.add_ticks("steady", 80)
        cum.add_ticks("helper", 20)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    analysis = analyze_snapshots(snaps)
    assert analysis.n_phases == 1


def test_extreme_magnitude_functions():
    """A function a million times hotter than another must not overflow
    or distort shares beyond [0, 100]."""
    snaps = []
    cum = GmonData()
    for i in range(10):
        cum.add_ticks("huge", 10**9)
        cum.add_ticks("tiny", 1)
        snap = cum.copy()
        snap.timestamp = float(i + 1)
        snaps.append(snap)
    analysis = analyze_snapshots(snaps)
    for site in analysis.sites():
        assert 0.0 <= site.phase_pct <= 100.0
        assert 0.0 <= site.app_pct <= 100.0
