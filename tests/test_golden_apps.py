"""Golden-equivalence pin for the paper applications.

The scenario-substrate refactor (spec/generator IR under the workload
layer) must not move a single byte of the paper reproduction.  The
fixture was generated *before* the refactor landed; these tests
regenerate the same outputs from the current tree and compare strings
byte for byte.

Regenerating the fixture is only legitimate when the change is a
deliberate, reviewed behaviour change of the analysis pipeline itself —
never as part of a workload-layer refactor.
"""

import json
from pathlib import Path

import pytest

from repro.apps import paper_app_names
from repro.core.pipeline import analyze_snapshots
from repro.core.report import render_full_report
from repro.eval.experiments import run_experiment
from repro.eval.tables import app_sites_table, comparison_table
from repro.incprof.session import Session, SessionConfig

FIXTURE = Path(__file__).parent / "fixtures" / "golden_paper_apps.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


def test_fixture_covers_all_paper_apps(golden):
    for name in paper_app_names():
        assert name in golden
        assert f"table_{name}" in golden


@pytest.mark.parametrize("name", ["graph500", "minife", "miniamr",
                                  "lammps", "gadget2"])
def test_analyze_report_byte_identical(golden, name):
    scale = golden["_meta"]["scales"][name]
    from repro.apps import get_app

    result = Session(get_app(name),
                     SessionConfig(ranks=1, seed=111, scale=scale)).run()
    analysis = analyze_snapshots(result.samples(0))
    assert render_full_report(analysis, app_name=name) == golden[name]


@pytest.mark.parametrize("name", ["graph500", "minife", "miniamr",
                                  "lammps", "gadget2"])
def test_paper_tables_byte_identical(golden, name):
    """Tables II-VI (sites + comparison) at full paper scale."""
    result = run_experiment(name, scale=1.0, seed=111)
    rendered = (app_sites_table(result).render() + "\n\n"
                + comparison_table(result).render())
    assert rendered == golden[f"table_{name}"]
