"""Every example script runs to completion as a subprocess.

Examples are user-facing documentation; a broken one is a broken README.
Each runs with reduced scales where the script supports them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "discovered" in out
    assert "INSTRUMENTED FUNCTIONS" in out.upper() or "phases" in out


def test_paper_tables_single_app_small():
    out = run_example("paper_tables.py", "--scale", "0.2", "--app", "graph500")
    assert "TABLE I" in out
    assert "GRAPH500" in out


def test_heartbeat_monitoring():
    out = run_example("heartbeat_monitoring.py")
    assert "LDMS transport" in out
    assert "per-heartbeat summary" in out


def test_custom_app():
    out = run_example("custom_app.py")
    assert "PIPELINE" in out.upper()
    assert "Interpretation" in out


def test_regression_detection():
    out = run_example("regression_detection.py")
    assert "verdict: healthy" in out
    assert "REGRESSION" in out


def test_online_phase_tracking():
    out = run_example("online_phase_tracking.py")
    assert "novel intervals" in out
    assert "!" in out  # the rogue stage shows as novelty marks


@pytest.mark.socket
def test_fleet_monitoring():
    out = run_example("fleet_monitoring.py")
    assert "incprofd listening" in out
    assert "intervals/s" in out and "drops=0" in out
    assert "novel intervals" in out and "!" in out
    assert "phase occupancy" in out
    assert "daemon stopped cleanly" in out


@pytest.mark.slow
def test_live_python_profiling():
    out = run_example("live_python_profiling.py")
    assert "Flat profile:" in out
    assert "SIGPROF sampler" in out
