"""Cost and noise models."""

import numpy as np
import pytest

from repro.simulate.noise import NoiseModel
from repro.simulate.overhead import CostModel
from repro.util.errors import ValidationError


def test_disabled_costmodel_all_zero():
    cost = CostModel.disabled()
    assert not cost.enabled
    assert cost.per_call == 0.0
    assert cost.per_dump == 0.0


def test_gprof_defaults_enabled():
    cost = CostModel.gprof_defaults()
    assert cost.enabled
    assert cost.per_call > 0


def test_heartbeat_only_has_no_gprof_costs():
    cost = CostModel.heartbeat_only()
    assert cost.per_call == 0.0
    assert cost.per_dump == 0.0
    assert cost.per_heartbeat_event > 0


def test_with_overrides():
    cost = CostModel.gprof_defaults().with_overrides(per_dump=1.0)
    assert cost.per_dump == 1.0
    assert cost.per_call == CostModel.gprof_defaults().per_call


def test_noise_quiet_is_identity():
    model = NoiseModel.quiet()
    rng = np.random.default_rng(0)
    assert model.apply(100.0, rng, instrumented=False) == 100.0


def test_noise_jitter_centered():
    model = NoiseModel(sigma=0.01)
    rng = np.random.default_rng(0)
    draws = [model.jitter(rng) for _ in range(2000)]
    assert np.mean(draws) == pytest.approx(1.0, abs=0.002)
    assert np.std(draws) == pytest.approx(0.01, abs=0.002)


def test_systematic_bias_applied_only_when_instrumented():
    model = NoiseModel(sigma=0.0, systematic_bias=-0.06)
    rng = np.random.default_rng(0)
    assert model.apply(100.0, rng, instrumented=True) == pytest.approx(94.0)
    assert model.apply(100.0, rng, instrumented=False) == pytest.approx(100.0)


def test_noise_validation():
    with pytest.raises(ValidationError):
        NoiseModel(sigma=-0.1)
    with pytest.raises(ValidationError):
        NoiseModel(systematic_bias=-1.5)


def test_jitter_clamped_below():
    model = NoiseModel(sigma=10.0)  # absurd sigma: clamp kicks in
    rng = np.random.default_rng(3)
    assert all(model.jitter(rng) >= 0.5 for _ in range(100))
