"""The ground-truth synthetic workload."""

import pytest

from repro import analyze_snapshots
from repro.apps import get_app
from repro.apps.synthetic import DEFAULT_SCRIPT, PhaseSpec, Synthetic, detection_accuracy
from repro.core.model import InstType
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import AppError


def run_analysis(app, scale=1.0, seed=111):
    result = Session(app, SessionConfig(ranks=1, scale=scale, seed=seed)).run()
    return analyze_snapshots(result.samples(0))


def test_default_script_fully_recovered():
    app = Synthetic()
    analysis = run_analysis(app)
    score = detection_accuracy(app, analysis)
    assert score["phase_count_error"] == 0
    assert score["dominant_recall"] == 1.0


def test_discovered_types_are_body():
    """Every synthetic function is batch-called each interval -> body."""
    analysis = run_analysis(Synthetic())
    assert all(s.inst_type is InstType.BODY for s in analysis.sites())


def test_custom_script_two_phases():
    script = (
        PhaseSpec("a", 30.0, (("alpha", 0.9, 10.0),)),
        PhaseSpec("b", 30.0, (("beta", 0.9, 10.0),)),
    )
    app = Synthetic(script)
    analysis = run_analysis(app)
    assert analysis.n_phases == 2
    assert {s.function for s in analysis.sites()} == {"alpha", "beta"}


def test_phase_spec_validation():
    with pytest.raises(AppError):
        PhaseSpec("bad", -1.0, ())
    with pytest.raises(AppError):
        PhaseSpec("overfull", 10.0, (("f", 0.8, 1.0), ("g", 0.3, 1.0)))
    with pytest.raises(AppError):
        Synthetic(())


def test_manual_sites_are_dominants():
    app = Synthetic()
    manual = {s.function for s in app.manual_sites}
    expected = {max(p.functions, key=lambda f: f[1])[0] for p in DEFAULT_SCRIPT}
    assert manual == expected


def test_expected_functions_listed():
    app = Synthetic()
    assert "kernel" in app.expected_functions()
    assert "pack" in app.expected_functions()


def test_registered_in_registry():
    app = get_app("synthetic")
    assert isinstance(app, Synthetic)
    assert app.live_run() is None


def test_scale_contracts_phases():
    app = Synthetic()
    short = Session(app, SessionConfig(ranks=1, scale=0.25)).run().runtime
    full = Session(app, SessionConfig(ranks=1, scale=1.0)).run().runtime
    assert short == pytest.approx(full * 0.25, rel=0.1)


def test_idle_share_respected():
    """Phases whose shares sum below 1 leave unattributed time."""
    script = (PhaseSpec("half", 20.0, (("busy", 0.5, 5.0),)),)
    result = Session(Synthetic(script), SessionConfig(ranks=1)).run()
    final = result.samples(0)[-1]
    assert final.total_seconds() == pytest.approx(10.0, rel=0.15)
    assert result.runtime == pytest.approx(20.0, rel=0.05)
