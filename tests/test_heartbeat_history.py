"""Persistent heartbeat history: recording, trends, baseline comparison."""

import pytest

from repro.heartbeat.accumulator import HeartbeatRecord
from repro.heartbeat.history import HeartbeatHistory
from repro.util.errors import ValidationError


def run_records(duration, n_intervals=10, hb_id=1):
    return [
        HeartbeatRecord(rank=0, hb_id=hb_id, interval_index=i, time=float(i + 1),
                        count=4.0, avg_duration=duration)
        for i in range(n_intervals)
    ]


def test_record_and_reload(tmp_path):
    history = HeartbeatHistory(tmp_path)
    info = history.record_run(run_records(0.1), labels={1: "kernel"},
                              tags={"node": "n01"}, timestamp=123.0)
    assert info.index == 0
    assert info.tags == {"node": "n01"}
    series = history.load_series(0)
    assert series.label(1) == "kernel"
    assert series.mean_duration(1) == pytest.approx(0.1)


def test_indices_monotone(tmp_path):
    history = HeartbeatHistory(tmp_path)
    for duration in (0.1, 0.2, 0.3):
        history.record_run(run_records(duration))
    assert history.run_indices() == [0, 1, 2]
    assert [r.index for r in history.runs()] == [0, 1, 2]


def test_duration_trend(tmp_path):
    history = HeartbeatHistory(tmp_path)
    for duration in (0.1, 0.11, 0.2):
        history.record_run(run_records(duration))
    trend = history.duration_trend(1)
    assert trend == pytest.approx([0.1, 0.11, 0.2])


def test_compare_latest_to_baseline_flags_regression(tmp_path):
    history = HeartbeatHistory(tmp_path)
    import numpy as np

    rng = np.random.default_rng(0)
    baseline = [
        HeartbeatRecord(0, 1, i, float(i + 1), 4.0,
                        0.1 * (1 + rng.normal(0, 0.02)))
        for i in range(30)
    ]
    slow = [
        HeartbeatRecord(0, 1, i, float(i + 1), 4.0,
                        0.15 * (1 + rng.normal(0, 0.02)))
        for i in range(30)
    ]
    history.record_run(baseline)
    history.record_run(slow)
    report = history.compare_latest_to_baseline()
    assert not report.is_healthy()


def test_compare_needs_two_runs(tmp_path):
    history = HeartbeatHistory(tmp_path)
    history.record_run(run_records(0.1))
    with pytest.raises(ValidationError):
        history.compare_latest_to_baseline()


def test_empty_run_rejected(tmp_path):
    with pytest.raises(ValidationError):
        HeartbeatHistory(tmp_path).record_run([])


def test_missing_directory_rejected(tmp_path):
    with pytest.raises(ValidationError):
        HeartbeatHistory(tmp_path / "nope", create=False)


def test_missing_run_rejected(tmp_path):
    history = HeartbeatHistory(tmp_path)
    history.record_run(run_records(0.1))
    with pytest.raises(ValidationError):
        history.load_series(7)


def test_end_to_end_with_session(tmp_path):
    """Record real session heartbeats into the history."""
    from repro.apps import get_app
    from repro.heartbeat.instrument import bindings_from_sites
    from repro.incprof.session import Session, SessionConfig

    app = get_app("graph500")
    bindings = bindings_from_sites(app.manual_sites)
    history = HeartbeatHistory(tmp_path)
    for seed in (1, 2):
        result = Session(app, SessionConfig(
            ranks=1, scale=0.2, seed=seed, collect_profiles=False,
            heartbeat_sites=bindings)).run()
        history.record_run(result.heartbeat_records(0),
                           labels={b.hb_id: b.function for b in bindings})
    report = history.compare_latest_to_baseline()
    assert report.deltas  # same instrumentation on both runs
