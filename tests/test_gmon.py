"""GmonData accounting, subtraction, and binary round-trip."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon, read_gmon, write_gmon
from repro.util.errors import FormatError, ValidationError


def sample_gmon():
    data = GmonData(sample_period=0.01, timestamp=3.5, rank=2)
    data.add_ticks("alpha", 120)
    data.add_ticks("beta", 30)
    data.add_arc("main", "alpha", 4)
    data.add_arc("main", "beta", 1)
    data.add_arc("alpha", "beta", 7)
    return data


def test_self_seconds():
    data = sample_gmon()
    assert data.self_seconds("alpha") == pytest.approx(1.2)
    assert data.self_seconds("missing") == 0.0


def test_total_seconds():
    assert sample_gmon().total_seconds() == pytest.approx(1.5)


def test_calls_into():
    data = sample_gmon()
    assert data.calls_into("beta") == 8
    assert data.calls_into("alpha") == 4
    assert data.calls_into("main") == 0


def test_functions_sorted_union():
    assert sample_gmon().functions() == ["alpha", "beta", "main"]


def test_copy_is_deep():
    data = sample_gmon()
    clone = data.copy()
    clone.add_ticks("alpha", 1)
    clone.add_arc("main", "alpha", 1)
    assert data.hist["alpha"] == 120
    assert data.arcs[("main", "alpha")] == 4


def test_negative_counts_rejected():
    data = GmonData()
    with pytest.raises(ValidationError):
        data.add_ticks("f", -1)
    with pytest.raises(ValidationError):
        data.add_arc("a", "b", -1)


def test_zero_counts_not_stored():
    data = GmonData()
    data.add_ticks("f", 0)
    data.add_arc("a", "b", 0)
    assert not data.hist and not data.arcs


def test_invalid_sample_period():
    with pytest.raises(ValidationError):
        GmonData(sample_period=0.0)


def test_subtract_interval_semantics():
    earlier = GmonData()
    earlier.add_ticks("f", 10)
    earlier.add_arc("m", "f", 2)
    later = earlier.copy()
    later.add_ticks("f", 5)
    later.add_ticks("g", 3)
    later.add_arc("m", "f", 1)
    delta = later.subtract(earlier)
    assert delta.hist == {"f": 5, "g": 3}
    assert delta.arcs == {("m", "f"): 1}


def test_subtract_clamps_negative():
    earlier = GmonData()
    earlier.add_ticks("f", 10)
    later = GmonData()
    later.add_ticks("f", 8)  # sampling artifact: fewer ticks than before
    delta = later.subtract(earlier)
    assert "f" not in delta.hist


def test_subtract_mismatched_period():
    with pytest.raises(ValidationError):
        GmonData(sample_period=0.01).subtract(GmonData(sample_period=0.02))


def test_roundtrip_file(tmp_path):
    data = sample_gmon()
    path = tmp_path / "snap.gmon"
    write_gmon(data, path)
    loaded = read_gmon(path)
    assert loaded.hist == data.hist
    assert loaded.arcs == data.arcs
    assert loaded.timestamp == data.timestamp
    assert loaded.rank == data.rank
    assert loaded.sample_period == data.sample_period


def test_bad_magic():
    blob = bytearray(dumps_gmon(sample_gmon()))
    blob[0:5] = b"WRONG"
    with pytest.raises(FormatError):
        loads_gmon(bytes(blob))


def test_truncated_data():
    blob = dumps_gmon(sample_gmon())
    with pytest.raises(FormatError):
        loads_gmon(blob[: len(blob) // 2])


def test_unsupported_version():
    blob = bytearray(dumps_gmon(sample_gmon()))
    blob[5:7] = (99).to_bytes(2, "little")
    with pytest.raises(FormatError):
        loads_gmon(bytes(blob))


names = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF),
                min_size=1, max_size=24)


@settings(max_examples=60, deadline=None)
@given(
    hist=st.dictionaries(names, st.integers(min_value=1, max_value=10**12), max_size=12),
    arcs=st.dictionaries(st.tuples(names, names),
                         st.integers(min_value=1, max_value=10**12), max_size=12),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    rank=st.integers(min_value=0, max_value=10_000),
)
def test_roundtrip_property(hist, arcs, timestamp, rank):
    """Any gmon state serializes and deserializes exactly."""
    data = GmonData(sample_period=0.01, timestamp=timestamp, rank=rank)
    data.hist = dict(hist)
    data.arcs = dict(arcs)
    loaded = loads_gmon(dumps_gmon(data))
    assert loaded.hist == data.hist
    assert loaded.arcs == data.arcs
    assert loaded.rank == data.rank
    assert loaded.timestamp == pytest.approx(timestamp)


@settings(max_examples=40, deadline=None)
@given(
    base=st.dictionaries(names, st.integers(min_value=0, max_value=1000), max_size=8),
    extra=st.dictionaries(names, st.integers(min_value=0, max_value=1000), max_size=8),
)
def test_subtract_property_nonnegative_and_exact(base, extra):
    """later - earlier recovers exactly the added increments."""
    earlier = GmonData()
    for func, ticks in base.items():
        earlier.add_ticks(func, ticks)
    later = earlier.copy()
    for func, ticks in extra.items():
        later.add_ticks(func, ticks)
    delta = later.subtract(earlier)
    assert all(v > 0 for v in delta.hist.values())
    for func, ticks in extra.items():
        if ticks > 0:
            assert delta.hist[func] == ticks


# ----------------------------------------------------------------------
# golden round-trip: the IGMON byte layout is frozen
# ----------------------------------------------------------------------
#: Exact serialization of GOLDEN_DATA, captured before the bulk-packed
#: (de)serializer landed — any byte difference is a format break.
GOLDEN_BLOB = bytes.fromhex(
    "49474d4f4e01007b14ae47e17a843f0000000000002940030000000400000005"
    "000000616c7068610400000062657461040000006d61696e070000006dc3bc6c"
    "6c65720300000000000000070000000000000001000000130000000000000003"
    "00000002000000000000000300000000000000010000000b0000000000000002"
    "00000000000000040000000000000002000000030000000100000000000000"
)


def golden_data() -> GmonData:
    return GmonData(
        sample_period=0.01,
        timestamp=12.5,
        rank=3,
        hist={"alpha": 7, "beta": 19, "müller": 2},
        arcs={("main", "alpha"): 4, ("alpha", "beta"): 11, ("main", "müller"): 1},
    )


def test_golden_blob_bytes_exact():
    assert dumps_gmon(golden_data()) == GOLDEN_BLOB


def test_golden_blob_roundtrip():
    data = loads_gmon(GOLDEN_BLOB)
    expected = golden_data()
    assert data.hist == expected.hist
    assert data.arcs == expected.arcs
    assert data.sample_period == expected.sample_period
    assert data.timestamp == expected.timestamp
    assert data.rank == expected.rank
