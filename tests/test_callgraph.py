"""Call-graph profile: propagation, parents/children, cycles."""

import pytest

from repro.gprof.callgraph import CallGraphProfile, ancestors_of
from repro.gprof.gmon import GmonData
from repro.simulate.engine import SPONTANEOUS


def chain_gmon():
    """main -> a -> b, with self time on each."""
    data = GmonData()
    data.add_ticks("main", 100)
    data.add_ticks("a", 200)
    data.add_ticks("b", 300)
    data.add_arc(SPONTANEOUS, "main", 1)
    data.add_arc("main", "a", 2)
    data.add_arc("a", "b", 4)
    return data


def test_total_time_propagates_up():
    profile = CallGraphProfile.from_gmon(chain_gmon())
    assert profile.get("b").total_seconds == pytest.approx(3.0)
    assert profile.get("a").total_seconds == pytest.approx(2.0 + 3.0)
    assert profile.get("main").total_seconds == pytest.approx(1.0 + 5.0)


def test_children_listed_with_shares():
    profile = CallGraphProfile.from_gmon(chain_gmon())
    children = profile.get("main").children
    assert len(children) == 1
    assert children[0].name == "a"
    assert children[0].self_seconds == pytest.approx(2.0)
    assert children[0].children_seconds == pytest.approx(3.0)


def test_parents_recorded():
    profile = CallGraphProfile.from_gmon(chain_gmon())
    parents = profile.get("b").parents
    assert [p.name for p in parents] == ["a"]
    assert parents[0].calls == 4


def test_split_attribution_by_call_counts():
    """A child called from two parents splits its time proportionally."""
    data = GmonData()
    data.add_ticks("shared", 100)
    data.add_arc("p1", "shared", 3)
    data.add_arc("p2", "shared", 1)
    profile = CallGraphProfile.from_gmon(data)
    p1_share = [c for c in profile.get("p1").children if c.name == "shared"][0]
    p2_share = [c for c in profile.get("p2").children if c.name == "shared"][0]
    assert p1_share.self_seconds == pytest.approx(0.75)
    assert p2_share.self_seconds == pytest.approx(0.25)


def test_cycle_does_not_crash_and_reports_cycle_total():
    data = GmonData()
    data.add_ticks("x", 100)
    data.add_ticks("y", 100)
    data.add_arc("x", "y", 1)
    data.add_arc("y", "x", 1)
    profile = CallGraphProfile.from_gmon(data)
    assert profile.get("x").total_seconds == pytest.approx(2.0)
    assert profile.get("y").total_seconds == pytest.approx(2.0)


def test_self_recursion_ignored_in_propagation():
    data = GmonData()
    data.add_ticks("rec", 100)
    data.add_arc("rec", "rec", 50)
    profile = CallGraphProfile.from_gmon(data)
    assert profile.get("rec").total_seconds == pytest.approx(1.0)


def test_index_ordering_by_total_time():
    profile = CallGraphProfile.from_gmon(chain_gmon())
    assert profile.get("main").index == 1  # largest total


def test_render_contains_primary_lines():
    text = CallGraphProfile.from_gmon(chain_gmon()).render()
    assert "Call graph" in text
    assert "main [1]" in text


def test_spontaneous_not_an_entry():
    profile = CallGraphProfile.from_gmon(chain_gmon())
    assert SPONTANEOUS not in profile.entries


def test_ancestors_of():
    data = chain_gmon()
    assert ancestors_of(data, "b") == ["a", "main"]
    assert ancestors_of(data, "main") == []
    assert ancestors_of(data, "not_there") == []
