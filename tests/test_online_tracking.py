"""Online phase tracking on deployment-style snapshot streams."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.online import NOVEL, OnlinePhaseTracker
from repro.core.pipeline import analyze_snapshots
from repro.gprof.gmon import GmonData
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def trained():
    """Tracker trained on one synthetic run, plus its analysis."""
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111))
    samples = session.run().samples(0)
    analysis = analyze_snapshots(samples)
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    return analysis, tracker


def test_training_run_reclassifies_to_itself(trained):
    """Feeding the training snapshots back reproduces the phase labels
    almost everywhere (boundary intervals may gate out)."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    matches = 0
    for i in range(data.n_intervals):
        profile = {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        tracked = tracker.classify(profile)
        if tracked.phase_id == analysis.phase_model.labels[i]:
            matches += 1
    assert matches / data.n_intervals > 0.9


def test_second_seed_run_tracks_same_phases(trained):
    """A fresh run of the same workload classifies with few novelties."""
    _, tracker_proto = trained
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=202))
    for snapshot in session.run().samples(0):
        tracker.observe_snapshot(snapshot)
    assert tracker.history  # first snapshot primes, rest classify
    assert tracker.novel_fraction() < 0.15
    assert set(tracker.phase_sequence()) - {NOVEL} != set()


def test_novel_behavior_flagged(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    tracked = tracker.classify({"totally_new_function": 1.0})
    assert tracked.is_novel
    assert tracked.phase_id == NOVEL


def test_unknown_functions_ignored_in_vectorization(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profile = {f: data.self_time[5, j] for j, f in enumerate(data.functions)}
    base = tracker.classify(dict(profile))
    profile["alien"] = 0.0
    with_alien = tracker.classify(profile)
    assert base.phase_id == with_alien.phase_id


def test_observe_snapshot_differences_stream(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    cum = GmonData()
    cum.add_ticks("kernel", 85)
    cum.add_ticks("reduce", 10)
    first = cum.copy()
    first.timestamp = 1.0
    assert tracker.observe_snapshot(first) is None  # primes
    cum.add_ticks("kernel", 85)
    cum.add_ticks("reduce", 10)
    second = cum.copy()
    second.timestamp = 2.0
    tracked = tracker.observe_snapshot(second)
    assert tracked is not None
    # ~0.85s kernel + 0.1s reduce is the compute phase of the script.
    assert not tracked.is_novel
    assert tracked.phase_id == tracked.nearest_phase


def test_transitions_reported(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    for i in range(data.n_intervals):
        profile = {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        tracker.classify(profile)
    transitions = tracker.transitions()
    # The synthetic staircase has >= 3 phase changes.
    assert len(transitions) >= 3
    for index, src, dst in transitions:
        assert src != dst
        assert 0 < index < data.n_intervals


def test_invalid_training_parameters(trained):
    analysis, _ = trained
    with pytest.raises(ValidationError):
        OnlinePhaseTracker.from_analysis(analysis, quantile=0.0)
    with pytest.raises(ValidationError):
        OnlinePhaseTracker.from_analysis(analysis, slack=0.0)


def test_constructor_shape_validation():
    with pytest.raises(ValidationError):
        OnlinePhaseTracker(functions=["f"], centroids=np.zeros((2, 2)),
                           gates=np.zeros(2))
    with pytest.raises(ValidationError):
        OnlinePhaseTracker(functions=["f"], centroids=np.zeros((2, 1)),
                           gates=np.zeros(3))


# ----------------------------------------------------------------------
# serving-side additions: spawn, zero-start, batches, thread safety
# ----------------------------------------------------------------------
def test_spawn_shares_model_but_not_history(trained):
    analysis, _ = trained
    template = OnlinePhaseTracker.from_analysis(analysis)
    template.classify({"kernel": 0.9})
    child = template.spawn()
    assert child.history == []
    assert child.functions == template.functions
    assert np.array_equal(child.centroids, template.centroids)
    assert np.array_equal(child.gates, template.gates)
    child.classify({"kernel": 0.9})
    assert len(template.history) == 1  # child's history is its own


def test_zero_start_classifies_first_snapshot(trained):
    analysis, _ = trained
    template = OnlinePhaseTracker.from_analysis(analysis)
    snap = GmonData()
    snap.add_ticks("kernel", 85)
    snap.add_ticks("reduce", 10)
    primed = template.spawn(zero_start=False)
    assert primed.observe_snapshot(snap.copy()) is None
    eager = template.spawn(zero_start=True)
    tracked = eager.observe_snapshot(snap.copy())
    assert tracked is not None and tracked.index == 0


def test_zero_start_matches_offline_labels(trained):
    """With a zero baseline, streaming the training run's cumulative
    snapshots reproduces the offline interval count exactly."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis).spawn(zero_start=True)
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111))
    samples = session.run().samples(0)
    for snapshot in samples:
        tracker.observe_snapshot(snapshot)
    assert len(tracker.history) == len(samples)
    labels = analysis.phase_model.labels
    seq = tracker.phase_sequence()
    matches = sum(1 for a, b in zip(seq, labels) if a == b)
    assert matches / len(labels) > 0.9


def test_classify_batch_appends_in_order(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profiles = [
        {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        for i in range(6)
    ]
    batch = tracker.classify_batch(profiles)
    assert [t.index for t in batch] == list(range(6))
    assert tracker.phase_sequence() == [t.phase_id for t in batch]


def test_phase_counts(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    tracker.classify({"totally_new_function": 5.0})
    data = analysis.interval_data
    tracker.classify({f: data.self_time[0, j] for j, f in enumerate(data.functions)})
    counts = tracker.phase_counts()
    assert counts[NOVEL] == 1
    assert sum(counts.values()) == 2


def test_concurrent_classification_is_safe(trained):
    """Many threads hammering one tracker: history stays consistent."""
    import threading

    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profile = {f: data.self_time[0, j] for j, f in enumerate(data.functions)}
    n_threads, per_thread = 8, 200
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            tracker.classify(dict(profile))

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = n_threads * per_thread
    assert len(tracker.history) == total
    # every interval got a unique, gapless index despite the races
    assert sorted(t.index for t in tracker.history) == list(range(total))


def test_classify_batch_matches_repeated_classify(trained):
    _, template = trained
    rng = np.random.default_rng(11)
    functions = template.functions
    profiles = []
    for _ in range(40):
        profile = {f: float(rng.random() * 2) for f in functions
                   if rng.random() < 0.8}
        profile["not_a_known_function"] = 1.0
        profiles.append(profile)

    one_by_one = template.spawn(zero_start=False)
    batched = template.spawn(zero_start=False)
    singles = [one_by_one.classify(p) for p in profiles]
    batch = batched.classify_batch(profiles)

    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        assert got.index == want.index
        assert got.phase_id == want.phase_id
        assert got.nearest_phase == want.nearest_phase
        assert got.distance == want.distance  # bit-identical math
    assert batched.phase_sequence() == one_by_one.phase_sequence()
