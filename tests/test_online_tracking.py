"""Online phase tracking on deployment-style snapshot streams."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.online import NOVEL, OnlinePhaseTracker
from repro.core.pipeline import analyze_snapshots
from repro.gprof.gmon import GmonData
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def trained():
    """Tracker trained on one synthetic run, plus its analysis."""
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111))
    samples = session.run().samples(0)
    analysis = analyze_snapshots(samples)
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    return analysis, tracker


def test_training_run_reclassifies_to_itself(trained):
    """Feeding the training snapshots back reproduces the phase labels
    almost everywhere (boundary intervals may gate out)."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    matches = 0
    for i in range(data.n_intervals):
        profile = {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        tracked = tracker.classify(profile)
        if tracked.phase_id == analysis.phase_model.labels[i]:
            matches += 1
    assert matches / data.n_intervals > 0.9


def test_second_seed_run_tracks_same_phases(trained):
    """A fresh run of the same workload classifies with few novelties."""
    _, tracker_proto = trained
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=202))
    for snapshot in session.run().samples(0):
        tracker.observe_snapshot(snapshot)
    assert tracker.history  # first snapshot primes, rest classify
    assert tracker.novel_fraction() < 0.15
    assert set(tracker.phase_sequence()) - {NOVEL} != set()


def test_novel_behavior_flagged(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    tracked = tracker.classify({"totally_new_function": 1.0})
    assert tracked.is_novel
    assert tracked.phase_id == NOVEL


def test_unknown_functions_ignored_in_vectorization(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profile = {f: data.self_time[5, j] for j, f in enumerate(data.functions)}
    base = tracker.classify(dict(profile))
    profile["alien"] = 0.0
    with_alien = tracker.classify(profile)
    assert base.phase_id == with_alien.phase_id


def test_observe_snapshot_differences_stream(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    cum = GmonData()
    cum.add_ticks("kernel", 85)
    cum.add_ticks("reduce", 10)
    first = cum.copy()
    first.timestamp = 1.0
    assert tracker.observe_snapshot(first) is None  # primes
    cum.add_ticks("kernel", 85)
    cum.add_ticks("reduce", 10)
    second = cum.copy()
    second.timestamp = 2.0
    tracked = tracker.observe_snapshot(second)
    assert tracked is not None
    # ~0.85s kernel + 0.1s reduce is the compute phase of the script.
    assert not tracked.is_novel
    assert tracked.phase_id == tracked.nearest_phase


def test_transitions_reported(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    for i in range(data.n_intervals):
        profile = {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        tracker.classify(profile)
    transitions = tracker.transitions()
    # The synthetic staircase has >= 3 phase changes.
    assert len(transitions) >= 3
    for index, src, dst in transitions:
        assert src != dst
        assert 0 < index < data.n_intervals


def test_invalid_training_parameters(trained):
    analysis, _ = trained
    with pytest.raises(ValidationError):
        OnlinePhaseTracker.from_analysis(analysis, quantile=0.0)
    with pytest.raises(ValidationError):
        OnlinePhaseTracker.from_analysis(analysis, slack=0.0)


def test_constructor_shape_validation():
    with pytest.raises(ValidationError):
        OnlinePhaseTracker(functions=["f"], centroids=np.zeros((2, 2)),
                           gates=np.zeros(2))
    with pytest.raises(ValidationError):
        OnlinePhaseTracker(functions=["f"], centroids=np.zeros((2, 1)),
                           gates=np.zeros(3))


# ----------------------------------------------------------------------
# serving-side additions: spawn, zero-start, batches, thread safety
# ----------------------------------------------------------------------
def test_spawn_shares_model_but_not_history(trained):
    analysis, _ = trained
    template = OnlinePhaseTracker.from_analysis(analysis)
    template.classify({"kernel": 0.9})
    child = template.spawn()
    assert child.history == []
    assert child.functions == template.functions
    assert np.array_equal(child.centroids, template.centroids)
    assert np.array_equal(child.gates, template.gates)
    child.classify({"kernel": 0.9})
    assert len(template.history) == 1  # child's history is its own


def test_zero_start_classifies_first_snapshot(trained):
    analysis, _ = trained
    template = OnlinePhaseTracker.from_analysis(analysis)
    snap = GmonData()
    snap.add_ticks("kernel", 85)
    snap.add_ticks("reduce", 10)
    primed = template.spawn(zero_start=False)
    assert primed.observe_snapshot(snap.copy()) is None
    eager = template.spawn(zero_start=True)
    tracked = eager.observe_snapshot(snap.copy())
    assert tracked is not None and tracked.index == 0


def test_zero_start_matches_offline_labels(trained):
    """With a zero baseline, streaming the training run's cumulative
    snapshots reproduces the offline interval count exactly."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis).spawn(zero_start=True)
    session = Session(get_app("synthetic"), SessionConfig(ranks=1, seed=111))
    samples = session.run().samples(0)
    for snapshot in samples:
        tracker.observe_snapshot(snapshot)
    assert len(tracker.history) == len(samples)
    labels = analysis.phase_model.labels
    seq = tracker.phase_sequence()
    matches = sum(1 for a, b in zip(seq, labels) if a == b)
    assert matches / len(labels) > 0.9


def test_classify_batch_appends_in_order(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profiles = [
        {f: data.self_time[i, j] for j, f in enumerate(data.functions)}
        for i in range(6)
    ]
    batch = tracker.classify_batch(profiles)
    assert [t.index for t in batch] == list(range(6))
    assert tracker.phase_sequence() == [t.phase_id for t in batch]


def test_phase_counts(trained):
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    tracker.classify({"totally_new_function": 5.0})
    data = analysis.interval_data
    tracker.classify({f: data.self_time[0, j] for j, f in enumerate(data.functions)})
    counts = tracker.phase_counts()
    assert counts[NOVEL] == 1
    assert sum(counts.values()) == 2


def test_concurrent_classification_is_safe(trained):
    """Many threads hammering one tracker: history stays consistent."""
    import threading

    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    data = analysis.interval_data
    profile = {f: data.self_time[0, j] for j, f in enumerate(data.functions)}
    n_threads, per_thread = 8, 200
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            tracker.classify(dict(profile))

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = n_threads * per_thread
    assert len(tracker.history) == total
    # every interval got a unique, gapless index despite the races
    assert sorted(t.index for t in tracker.history) == list(range(total))


def test_classify_batch_matches_repeated_classify(trained):
    _, template = trained
    rng = np.random.default_rng(11)
    functions = template.functions
    profiles = []
    for _ in range(40):
        profile = {f: float(rng.random() * 2) for f in functions
                   if rng.random() < 0.8}
        profile["not_a_known_function"] = 1.0
        profiles.append(profile)

    one_by_one = template.spawn(zero_start=False)
    batched = template.spawn(zero_start=False)
    singles = [one_by_one.classify(p) for p in profiles]
    batch = batched.classify_batch(profiles)

    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        assert got.index == want.index
        assert got.phase_id == want.phase_id
        assert got.nearest_phase == want.nearest_phase
        assert got.distance == want.distance  # bit-identical math
    assert batched.phase_sequence() == one_by_one.phase_sequence()


# ----------------------------------------------------------------------
# differencing edge cases: real dump streams are not always well behaved
# ----------------------------------------------------------------------
def _snap(ticks, timestamp):
    snap = GmonData(timestamp=timestamp)
    for func, n in ticks.items():
        snap.add_ticks(func, n)
    return snap


def test_decreasing_cumulative_times_clamp_to_zero(trained):
    """A counter that goes backwards (restarted collector, lost dump)
    must clamp to zero self time, not produce a negative interval."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    assert tracker.observe_snapshot(_snap({"kernel": 200, "reduce": 40},
                                          1.0)) is None
    profile = tracker.delta_profile(_snap({"kernel": 150, "reduce": 50}, 2.0))
    assert "kernel" not in profile  # decreased: clamped out entirely
    assert profile["reduce"] == pytest.approx((50 - 40) * 0.01)
    assert all(v >= 0 for v in profile.values())


def test_functions_disappearing_between_snapshots(trained):
    """A function absent from the newer dump contributes zero time; the
    interval still classifies against the full vocabulary."""
    analysis, _ = trained
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    assert tracker.observe_snapshot(_snap({"kernel": 85, "reduce": 10,
                                           "setup": 30}, 1.0)) is None
    profile = tracker.delta_profile(_snap({"kernel": 170, "reduce": 20}, 2.0))
    assert "setup" not in profile
    tracked = tracker.classify(profile)
    assert tracked is not None and not tracked.is_novel


def test_first_snapshot_after_spawn_primes_without_zero_start(trained):
    """spawn(zero_start=False) children treat their first snapshot as a
    baseline — mid-run attach must not classify a bogus cumulative blob."""
    analysis, _ = trained
    template = OnlinePhaseTracker.from_analysis(analysis)
    child = template.spawn(zero_start=False)
    huge = _snap({"kernel": 5000, "reduce": 800}, 10.0)  # mid-run totals
    assert child.observe_snapshot(huge) is None  # primes, no bogus novel
    assert child.history == []
    nxt = _snap({"kernel": 5085, "reduce": 810}, 11.0)
    tracked = child.observe_snapshot(nxt)
    assert tracked is not None and tracked.index == 0
    assert not tracked.is_novel  # one clean interval of the known phase


# ----------------------------------------------------------------------
# adaptive refits: the tracker rebuilds its own model on drift
# ----------------------------------------------------------------------
def adaptive_tracker(analysis):
    from repro.core.incremental import AdaptiveConfig, DriftConfig

    config = AdaptiveConfig(window=64, min_refit_window=16,
                            drift=DriftConfig(window=32, min_samples=16,
                                              novel_rate=0.3),
                            cooldown_s=0.0, cooldown_intervals=16)
    return OnlinePhaseTracker.from_analysis(analysis, adaptive=config)


def test_adaptive_refit_fires_on_drift_and_bumps_version(trained):
    analysis, _ = trained
    tracker = adaptive_tracker(analysis)
    data = analysis.interval_data
    known = {f: data.self_time[0, j] for j, f in enumerate(data.functions)}
    alien = {data.functions[0]: 47.0}
    events = []
    tracker.add_refit_listener(lambda trk, event: events.append(event))
    for _ in range(20):
        tracker.classify(dict(known))
    assert tracker.model_version == 0
    before = tracker.classify(dict(known)).phase_id
    for _ in range(40):
        tracker.classify(dict(alien))
    assert tracker.model_version >= 1
    assert events and events[0].version == 1
    assert tracker.refit_events == events
    # the stable phase keeps its id across the swap...
    after = tracker.classify(dict(known))
    assert after.phase_id == before
    assert after.model_version == tracker.model_version
    # ...and the drifted behavior now has a phase of its own
    adopted = tracker.classify(dict(alien))
    assert not adopted.is_novel
    assert adopted.phase_id not in (before, NOVEL)


def test_version_sequence_is_monotone_across_refits(trained):
    analysis, _ = trained
    tracker = adaptive_tracker(analysis)
    data = analysis.interval_data
    alien = {data.functions[0]: 47.0}
    for _ in range(40):
        tracker.classify(dict(alien))
    versions = tracker.version_sequence()
    assert versions == sorted(versions)
    assert versions[0] == 0 and versions[-1] >= 1


def test_force_refit_and_install_model_version_rules(trained):
    analysis, _ = trained
    tracker = adaptive_tracker(analysis)
    data = analysis.interval_data
    profile = {f: data.self_time[0, j] for j, f in enumerate(data.functions)}
    for _ in range(16):
        tracker.classify(dict(profile))
    event = tracker.force_refit(reason="operator")
    assert event is not None and event.reason == "operator"
    assert tracker.model_version == event.version == 1
    with pytest.raises(ValidationError):
        tracker.install_model(centroids=tracker.centroids.copy(),
                              gates=tracker.gates.copy(), version=0)
    tracker.install_model(centroids=tracker.centroids.copy(),
                          gates=tracker.gates.copy())
    assert tracker.model_version == 2  # default: bump past current


def test_runtime_state_round_trips_refit_machinery(trained):
    analysis, _ = trained
    tracker = adaptive_tracker(analysis)
    data = analysis.interval_data
    alien = {data.functions[0]: 47.0}
    for _ in range(40):
        tracker.classify(dict(alien))
    assert tracker.model_version >= 1
    state = tracker.runtime_state()
    clone = adaptive_tracker(analysis)
    clone.restore_runtime_state(state)
    assert clone.model_version == tracker.model_version
    assert clone.phase_sequence() == tracker.phase_sequence()
    assert clone.version_sequence() == tracker.version_sequence()
    assert np.array_equal(clone.centroids, tracker.centroids)
    assert np.array_equal(clone.phase_labels, tracker.phase_labels)
    assert ([e.to_obj() for e in clone.refit_events]
            == [e.to_obj() for e in tracker.refit_events])
    # the restored window keeps feeding the same drift machinery
    assert clone.classify(dict(alien)).phase_id == \
        tracker.classify(dict(alien)).phase_id
