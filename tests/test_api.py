"""The ``repro.api`` facade: surface completeness and stability.

``docs/API.md`` promises this module is the one import application code
needs; these tests pin the promise — every advertised name resolves,
the error hierarchy hangs together, and the facade actually works for
the headline train → save → load → classify loop.
"""

import inspect

import pytest

from repro import api


def test_all_names_resolve():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert missing == []


def test_all_is_sorted_within_sections():
    # __all__ must stay free of duplicates (a rename that leaves the old
    # name behind shows up here)
    assert len(api.__all__) == len(set(api.__all__))


def test_facade_covers_the_headline_workflow():
    """Every name the README quickstart uses comes from the facade."""
    for name in ("Session", "SessionConfig", "analyze_snapshots",
                 "AnalysisConfig", "save_model", "load_model",
                 "OnlinePhaseTracker", "PhaseClient", "RetryPolicy",
                 "SampleStore", "ReproError"):
        assert name in api.__all__, name


def test_every_public_name_has_a_docstring():
    undocumented = []
    for name in api.__all__:
        obj = getattr(api, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not obj.__doc__:
            undocumented.append(name)
    assert undocumented == []


def test_error_hierarchy_roots_at_reproerror():
    errors = [name for name in api.__all__ if name.endswith("Error")]
    assert len(errors) >= 15
    for name in errors:
        assert issubclass(getattr(api, name), api.ReproError), name


def test_format_error_branch():
    # all artifact/file format failures catchable with one except clause
    for cls in (api.SampleFileError, api.ModelFormatError,
                api.CheckpointError):
        assert issubclass(cls, api.FormatError)


def test_service_error_branch_carries_wire_codes():
    for cls in (api.UnknownStreamError, api.StreamConflictError,
                api.BackpressureError, api.ConnectionLostError,
                api.RetryExhaustedError):
        assert issubclass(cls, api.ServiceError)
        assert isinstance(cls.code, str) and cls.code


def test_validation_error_is_a_valueerror():
    # idiomatic call sites can catch ValueError without knowing repro
    assert issubclass(api.ValidationError, ValueError)


def test_tracker_constructor_is_keyword_only():
    params = inspect.signature(api.OnlinePhaseTracker.__init__).parameters
    for name, param in params.items():
        if name == "self":
            continue
        assert param.kind is inspect.Parameter.KEYWORD_ONLY, name


def test_retry_policy_validates():
    with pytest.raises(api.ValidationError):
        api.RetryPolicy(max_attempts=0)
    with pytest.raises(api.ValidationError):
        api.RetryPolicy(jitter=2.0)


def test_deep_import_and_facade_are_the_same_objects():
    from repro.core.model_io import save_model
    from repro.core.online import OnlinePhaseTracker
    from repro.service.client import PhaseClient

    assert api.save_model is save_model
    assert api.OnlinePhaseTracker is OnlinePhaseTracker
    assert api.PhaseClient is PhaseClient
