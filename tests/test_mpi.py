"""Simulated MPI ranks and aggregate statistics."""

import pytest

from repro.apps import get_app
from repro.incprof.session import Session, SessionConfig
from repro.simulate.mpi import RankResult, SimComm
from repro.util.errors import ValidationError


def test_requires_positive_ranks():
    with pytest.raises(ValidationError):
        SimComm(0)


def test_run_calls_job_per_rank():
    comm = SimComm(4)
    results = comm.run(lambda rank: RankResult(rank=rank, runtime=10.0 + rank))
    assert [r.rank for r in results] == [0, 1, 2, 3]


def test_runtime_stats():
    results = [RankResult(rank=i, runtime=r) for i, r in enumerate([10, 11, 12, 13])]
    stats = SimComm.runtime_stats(results)
    assert stats["mean"] == pytest.approx(11.5)
    assert stats["min"] == 10 and stats["max"] == 13
    assert stats["imbalance"] == pytest.approx(3 / 11.5)


def test_is_symmetric():
    even = [RankResult(rank=i, runtime=100.0) for i in range(4)]
    skewed = [RankResult(rank=0, runtime=100.0), RankResult(rank=1, runtime=150.0)]
    assert SimComm.is_symmetric(even)
    assert not SimComm.is_symmetric(skewed)


def test_overhead_stats():
    results = [
        RankResult(rank=0, runtime=100.0, total_overhead=5.0),
        RankResult(rank=1, runtime=100.0, total_overhead=15.0),
    ]
    stats = SimComm.overhead_stats(results)
    assert stats["mean_seconds"] == pytest.approx(10.0)
    assert stats["mean_fraction"] == pytest.approx(0.1)


def test_multirank_session_symmetric():
    """All ranks of a symmetric app behave alike (paper's premise)."""
    result = Session(get_app("graph500"),
                     SessionConfig(ranks=3, scale=0.15)).run()
    assert len(result.per_rank) == 3
    assert SimComm.is_symmetric(result.per_rank, tolerance=0.15)
    # Each rank produced its own sample stream.
    for rank_result in result.per_rank:
        assert len(rank_result.samples) >= 2
        assert rank_result.samples[0].rank == rank_result.rank


def test_ranks_have_distinct_noise_streams():
    result = Session(get_app("graph500"),
                     SessionConfig(ranks=2, scale=0.15)).run()
    r0, r1 = result.per_rank
    assert r0.runtime != r1.runtime  # jittered durations differ per rank
