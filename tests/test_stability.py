"""Seed-stability sweeps."""

import pytest

from repro.eval.stability import StabilityResult, stability_sweep
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def sweep():
    # Small scale + few seeds keeps this quick while exercising the path.
    return stability_sweep("synthetic", seeds=(1, 2, 3, 4), scale=0.5)


def test_sweep_shape(sweep):
    assert sweep.n_runs == 4
    assert len(sweep.phase_counts) == 4
    assert sweep.site_frequency


def test_histogram_and_mode(sweep):
    hist = sweep.phase_count_histogram()
    assert sum(hist.values()) == 4
    assert sweep.modal_phase_count() in hist
    assert 0 < sweep.phase_count_stability() <= 1.0


def test_synthetic_detection_stable(sweep):
    """The ground-truth staircase is found in (almost) every run."""
    assert sweep.modal_phase_count() == 4
    assert sweep.phase_count_stability() >= 0.75


def test_core_sites_frequent(sweep):
    core = sweep.core_sites(min_frequency=0.75)
    functions = {f for f, _t in core}
    assert "kernel" in functions


def test_table_renders(sweep):
    text = sweep.to_table().render()
    assert "site discovery over 4 seeds" in text


def test_empty_seeds_rejected():
    with pytest.raises(ValidationError):
        stability_sweep("synthetic", seeds=())
