"""From-scratch k-means: correctness and invariants (incl. hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.kmeans import KMeansResult, kmeans
from repro.util.errors import ClusteringError, ValidationError


def blobs(seed=0, centers=((0, 0), (10, 10), (-10, 5)), n=30, spread=0.3):
    rng = np.random.default_rng(seed)
    points = []
    for cx, cy in centers:
        points.append(rng.normal((cx, cy), spread, size=(n, 2)))
    return np.vstack(points)


def test_recovers_well_separated_blobs():
    points = blobs()
    result = kmeans(points, 3, seed=1)
    # Each blob of 30 points is one cluster.
    sizes = sorted(result.cluster_sizes().tolist())
    assert sizes == [30, 30, 30]
    # Centroids near the true centers.
    found = sorted(tuple(np.round(c).astype(int)) for c in result.centroids)
    assert found == [(-10, 5), (0, 0), (10, 10)]


def test_k1_exact_mean():
    points = np.array([[0.0], [2.0], [4.0]])
    result = kmeans(points, 1)
    assert result.centroids[0, 0] == pytest.approx(2.0)
    assert result.inertia == pytest.approx(8.0)


def test_k_equals_n_zero_inertia():
    points = np.array([[0.0, 0], [5, 5], [9, 1]])
    result = kmeans(points, 3, seed=0)
    assert result.inertia == pytest.approx(0.0)


def test_more_clusters_than_points_rejected():
    with pytest.raises(ClusteringError):
        kmeans(np.zeros((2, 2)), 3)


def test_invalid_args():
    with pytest.raises(ValidationError):
        kmeans(np.zeros((3,)), 2)
    with pytest.raises(ValidationError):
        kmeans(np.zeros((3, 2)), 0)
    with pytest.raises(ValidationError):
        kmeans(np.zeros((3, 2)), 2, n_init=0)


def test_deterministic_with_seed():
    points = blobs(seed=5)
    a = kmeans(points, 3, seed=42)
    b = kmeans(points, 3, seed=42)
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia


def test_duplicate_points_fine():
    points = np.ones((10, 3))
    result = kmeans(points, 2, seed=0)
    assert result.inertia == pytest.approx(0.0)


def test_labels_match_nearest_centroid():
    points = blobs(seed=2)
    result = kmeans(points, 3, seed=0)
    dists = ((points[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
    assert np.array_equal(result.labels, dists.argmin(axis=1))


def test_inertia_nonincreasing_in_k():
    points = blobs(seed=3)
    inertias = [kmeans(points, k, seed=0, n_init=8).inertia for k in range(1, 7)]
    for a, b in zip(inertias, inertias[1:]):
        assert b <= a + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    points=hnp.arrays(np.float64, shape=st.tuples(st.integers(5, 40), st.integers(1, 4)),
                      elements=st.floats(-100, 100, allow_nan=False)),
    k=st.integers(1, 5),
)
def test_kmeans_invariants(points, k):
    """Labels valid; every cluster non-empty; inertia consistent."""
    if points.shape[0] < k:
        return
    result = kmeans(points, k, seed=0, n_init=2)
    assert result.labels.shape == (points.shape[0],)
    assert set(np.unique(result.labels)) <= set(range(k))
    distinct = np.unique(points, axis=0).shape[0]
    if distinct >= k:
        assert (result.cluster_sizes() > 0).all()
    manual = sum(
        ((points[result.labels == j] - result.centroids[j]) ** 2).sum()
        for j in range(k)
    )
    assert result.inertia == pytest.approx(manual, rel=1e-9, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_kmeans_quality_vs_random_assignment(seed):
    """k-means inertia beats a random partition of the same data."""
    points = blobs(seed=seed, spread=1.0)
    result = kmeans(points, 3, seed=0)
    rng = np.random.default_rng(seed)
    random_labels = rng.integers(0, 3, size=points.shape[0])
    random_inertia = 0.0
    for j in range(3):
        members = points[random_labels == j]
        if len(members):
            random_inertia += ((members - members.mean(axis=0)) ** 2).sum()
    assert result.inertia <= random_inertia + 1e-9


def test_empty_cluster_repair():
    # Two coincident seeds collapse onto one cluster; the third seed is
    # far from every point.  The update leaves empty clusters that the
    # repair path must re-seat on far points.
    from repro.core.kmeans import _lloyd

    points = np.array([[0.0], [0.1], [0.2], [10.0], [10.1], [50.0]])
    centers = np.array([[0.0], [0.0], [1000.0]])
    result = _lloyd(points, centers.copy(), max_iter=100, tol=1e-9)
    sizes = result.cluster_sizes()
    assert sizes.shape == (3,)
    assert (sizes > 0).all()
    assert int(sizes.sum()) == len(points)
    assert np.isfinite(result.inertia)
    # Reported inertia matches the reported labels/centroids exactly.
    recomputed = sum(
        float(np.sum((points[i] - result.centroids[result.labels[i]]) ** 2))
        for i in range(len(points))
    )
    assert result.inertia == pytest.approx(recomputed)
