"""Site-quality scoring."""

import numpy as np
import pytest

from repro.eval.site_quality import SiteQuality, compare_site_sets, score_series
from repro.heartbeat.analysis import HeartbeatSeries
from repro.util.errors import ValidationError


def series_from_counts(counts_by_id, interval=1.0):
    n = max(len(v) for v in counts_by_id.values())
    series = HeartbeatSeries(n_intervals=n, interval=interval)
    for hb_id, counts in counts_by_id.items():
        arr = np.asarray(counts, dtype=float)
        series.counts[hb_id] = arr
        series.durations[hb_id] = np.where(arr > 0, 0.1, 0.0)
    return series


def test_perfect_discrimination():
    """One exclusive heartbeat per phase: purity 1, lift 1."""
    labels = [0] * 5 + [1] * 5
    series = series_from_counts({1: [1] * 5 + [0] * 5, 2: [0] * 5 + [1] * 5})
    quality = score_series(series, labels)
    assert quality.purity == pytest.approx(1.0)
    assert quality.lift == pytest.approx(1.0)
    assert quality.coverage == 1.0
    assert quality.n_signatures == 2


def test_uninformative_sites_floor():
    """A heartbeat active everywhere says nothing: purity == baseline."""
    labels = [0] * 6 + [1] * 4
    series = series_from_counts({1: [1] * 10})
    quality = score_series(series, labels)
    assert quality.purity == pytest.approx(0.6)  # majority phase share
    assert quality.lift == pytest.approx(0.0)


def test_silent_sites_low_coverage():
    labels = [0] * 4 + [1] * 4
    series = series_from_counts({1: [1, 0, 0, 0, 0, 0, 0, 1]})
    quality = score_series(series, labels)
    assert quality.coverage == pytest.approx(0.25)


def test_partial_discrimination_between_floor_and_one():
    labels = [0] * 4 + [1] * 4
    # Site 1 marks phase 0 in half its intervals only.
    series = series_from_counts({1: [1, 1, 0, 0, 0, 0, 0, 0]})
    quality = score_series(series, labels)
    assert 0.0 < quality.lift < 1.0


def test_length_mismatch_clipped():
    labels = [0, 0, 1]
    series = series_from_counts({1: [1, 1, 0, 0, 0]})
    quality = score_series(series, labels)  # scores min(3, 5) intervals
    assert quality.n_signatures >= 1


def test_empty_rejected():
    series = series_from_counts({1: [1]})
    with pytest.raises(ValidationError):
        score_series(series, [])


def test_compare_site_sets_on_experiment(experiments):
    discovered, manual = compare_site_sets(experiments["graph500"])
    assert isinstance(discovered, SiteQuality)
    assert discovered.kind == "discovered" and manual.kind == "manual"
    # The paper's Graph500 verdict, quantified.
    assert discovered.lift > manual.lift
    assert discovered.coverage > manual.coverage
