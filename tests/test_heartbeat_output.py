"""Sinks: memory, CSV round-trip, null, LDMS transport."""

import pytest

from repro.heartbeat.accumulator import HeartbeatRecord
from repro.heartbeat.ldms import LDMSTransport
from repro.heartbeat.output import CSVSink, MemorySink, NullSink, read_csv_records


def rec(hb_id=1, idx=0, count=2.0, dur=0.125):
    return HeartbeatRecord(rank=0, hb_id=hb_id, interval_index=idx,
                           time=float(idx + 1), count=count, avg_duration=dur)


def test_memory_sink_collects():
    sink = MemorySink()
    sink(rec())
    sink(rec(idx=1))
    assert len(sink.records) == 2


def test_null_sink_counts():
    sink = NullSink()
    for _ in range(5):
        sink(rec())
    assert sink.count == 5


def test_csv_roundtrip(tmp_path):
    path = tmp_path / "hb.csv"
    with CSVSink(path) as sink:
        sink(rec(hb_id=1, idx=0))
        sink(rec(hb_id=2, idx=3, count=7.5, dur=0.5))
    loaded = read_csv_records(path)
    assert len(loaded) == 2
    assert loaded[1].hb_id == 2
    assert loaded[1].count == pytest.approx(7.5)
    assert loaded[1].avg_duration == pytest.approx(0.5)
    assert loaded[1].interval_index == 3


def test_csv_has_header(tmp_path):
    path = tmp_path / "hb.csv"
    with CSVSink(path) as sink:
        sink(rec())
    with open(path) as fh:
        assert fh.readline().startswith("rank,hb_id,interval_index")


# ----------------------------------------------------------------------
# LDMS transport
# ----------------------------------------------------------------------
def test_ldms_pull_model():
    transport = LDMSTransport()
    transport(rec(idx=0))
    transport(rec(idx=1))
    assert transport.updates == 2
    assert transport.delivered == 0  # nothing delivered until sampled
    batch = transport.sample()
    assert len(batch) == 2
    assert transport.delivered == 2
    assert transport.sample() == []  # drained


def test_ldms_subscribers_receive_batches():
    transport = LDMSTransport()
    seen = []
    transport.subscribe(seen.extend)
    transport(rec())
    transport.sample()
    assert len(seen) == 1


def test_ldms_pending_metrics_view():
    transport = LDMSTransport()
    transport(rec(hb_id=1, count=3.0))
    transport(rec(hb_id=1, idx=1, count=5.0))
    view = transport.pending_metrics()
    assert view[(0, 1)] == 5.0  # latest wins
    transport.sample()
    assert transport.pending_metrics() == {}


def test_ldms_concurrent_updates_and_samples_lose_nothing():
    """App-side pushes racing the sampler thread: exactly-once delivery.

    This is the daemon's real shape — reader threads call the transport
    while the housekeeping thread plays the LDMS sampler — so updates
    and drains must be atomic with respect to each other.
    """
    import threading

    transport = LDMSTransport()
    delivered = []
    delivered_lock = threading.Lock()

    def subscriber(batch):
        with delivered_lock:
            delivered.extend(batch)

    transport.subscribe(subscriber)
    n_producers, per_producer = 8, 500
    start = threading.Barrier(n_producers + 1)
    stop_sampling = threading.Event()

    def produce(rank):
        start.wait()
        for i in range(per_producer):
            transport(HeartbeatRecord(rank=rank, hb_id=1, interval_index=i,
                                      time=float(i), count=1.0,
                                      avg_duration=0.01))

    def sample_loop():
        start.wait()
        while not stop_sampling.is_set():
            transport.sample()
        transport.sample()  # final drain

    producers = [threading.Thread(target=produce, args=(r,))
                 for r in range(n_producers)]
    sampler = threading.Thread(target=sample_loop)
    for thread in producers:
        thread.start()
    sampler.start()
    for thread in producers:
        thread.join()
    stop_sampling.set()
    sampler.join()

    total = n_producers * per_producer
    assert transport.updates == total
    assert transport.delivered == total
    assert len(delivered) == total  # nothing lost, nothing duplicated
    assert transport.pending_metrics() == {}


def test_csv_roundtrip_min_max(tmp_path):
    path = tmp_path / "hbmm.csv"
    with CSVSink(path) as sink:
        sink(HeartbeatRecord(rank=0, hb_id=1, interval_index=0, time=1.0,
                             count=3.0, avg_duration=0.2,
                             min_duration=0.1, max_duration=0.4))
    loaded = read_csv_records(path)
    assert loaded[0].min_duration == pytest.approx(0.1)
    assert loaded[0].max_duration == pytest.approx(0.4)


def test_csv_reader_tolerates_legacy_rows(tmp_path):
    """Files written before min/max existed still load."""
    path = tmp_path / "legacy.csv"
    path.write_text(
        "rank,hb_id,interval_index,time,count,avg_duration\n"
        "0,1,0,1.000000,2.0000,0.125000\n"
    )
    loaded = read_csv_records(path)
    assert loaded[0].avg_duration == pytest.approx(0.125)
    # A file without min/max columns never observed a minimum: the loader
    # reports None (not-observed), not a poisoning 0.0.
    assert loaded[0].min_duration is None
