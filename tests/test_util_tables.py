"""ASCII table rendering."""

import pytest

from repro.util.errors import ValidationError
from repro.util.tables import Table


def make_table():
    table = Table(headers=["name", "pct", "n"], title="demo")
    table.add_row("alpha", 12.345, 3)
    table.add_row("beta", None, 10)
    return table


def test_add_row_width_mismatch():
    table = Table(headers=["a", "b"])
    with pytest.raises(ValidationError):
        table.add_row(1)


def test_float_formatting_default_one_decimal():
    text = make_table().render()
    assert "12.3" in text
    assert "12.345" not in text


def test_none_renders_empty():
    text = make_table().render()
    line = [l for l in text.splitlines() if "beta" in l][0]
    cells = [c.strip() for c in line.split("|")]
    assert cells[1] == ""


def test_title_rendered():
    assert make_table().render().startswith("demo")


def test_separator_with_label():
    table = make_table()
    table.add_separator("Manual Sites")
    table.add_row("gamma", 1.0, 1)
    text = table.render()
    assert "Manual Sites" in text
    assert text.index("Manual Sites") < text.index("gamma")


def test_markdown_rendering():
    table = make_table()
    md = table.render_markdown()
    lines = md.splitlines()
    assert lines[0].startswith("**demo**")
    assert "| name | pct | n |" in md
    assert "| alpha | 12.3 | 3 |" in md


def test_markdown_separator():
    table = make_table()
    table.add_separator("Extra")
    assert "*Extra*" in table.render_markdown()


def test_add_rows_bulk():
    table = Table(headers=["x"])
    table.add_rows([[1], [2], [3]])
    assert len(table.rows) == 3


def test_custom_float_fmt():
    table = Table(headers=["v"], float_fmt=".3f")
    table.add_row(1.23456)
    assert "1.235" in table.render()


def test_column_alignment_consistent():
    text = make_table().render()
    rows = [l for l in text.splitlines() if "|" in l]
    pipes = [tuple(i for i, ch in enumerate(r) if ch == "|") for r in rows]
    assert len(set(pipes)) == 1
