"""Legacy shim so editable installs work without the ``wheel`` package.

The offline environment ships setuptools 65 without ``wheel``; PEP-517
editable installs need ``bdist_wheel``, so ``pip install -e .`` falls back
to this file via ``--no-use-pep517``.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
