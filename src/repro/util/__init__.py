"""Shared utilities: errors, seeded RNG streams, ASCII tables and plots.

These helpers are deliberately dependency-light; everything else in
:mod:`repro` builds on them.
"""

from repro.util.errors import (
    ReproError,
    ValidationError,
    FormatError,
    ProfileDataError,
    ClusteringError,
    CollectorError,
    AppError,
)
from repro.util.rng import derive_seed, rng_stream
from repro.util.tables import Table
from repro.util.asciiplot import AsciiPlot, sparkline

__all__ = [
    "ReproError",
    "ValidationError",
    "FormatError",
    "ProfileDataError",
    "ClusteringError",
    "CollectorError",
    "AppError",
    "derive_seed",
    "rng_stream",
    "Table",
    "AsciiPlot",
    "sparkline",
]
