"""Shared utilities: errors, seeded RNG streams, ASCII tables and plots.

These helpers are deliberately dependency-light; everything else in
:mod:`repro` builds on them.
"""

from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import (
    ReproError,
    ValidationError,
    FormatError,
    SampleFileError,
    ModelFormatError,
    CheckpointError,
    ProfileDataError,
    ClusteringError,
    CollectorError,
    AppError,
)
from repro.util.rng import derive_seed, rng_stream
from repro.util.tables import Table
from repro.util.asciiplot import AsciiPlot, sparkline

__all__ = [
    "ReproError",
    "ValidationError",
    "FormatError",
    "SampleFileError",
    "ModelFormatError",
    "CheckpointError",
    "ProfileDataError",
    "ClusteringError",
    "CollectorError",
    "AppError",
    "atomic_write_bytes",
    "derive_seed",
    "rng_stream",
    "Table",
    "AsciiPlot",
    "sparkline",
]
