"""Plain-text table rendering used by the evaluation report generators.

The evaluation code regenerates the paper's tables as text; this module
provides a small, dependency-free table type with column alignment,
separator rows (used for the "Manual Instrumentation Sites" sections of
Tables II-VI), and both grid and markdown output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from repro.util.errors import ValidationError

Cell = Union[str, int, float, None]

#: Sentinel row value that renders as a horizontal separator.
SEPARATOR = object()


def _format_cell(value: Cell, float_fmt: str) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


@dataclass
class Table:
    """A simple textual table.

    Parameters
    ----------
    headers:
        Column names.
    title:
        Optional caption rendered above the table.
    float_fmt:
        ``format()`` spec applied to float cells, default one decimal place
        (matching the paper's percentage columns).
    """

    headers: Sequence[str]
    title: Optional[str] = None
    float_fmt: str = ".1f"
    rows: List[object] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a data row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValidationError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(cells))

    def add_separator(self, label: Optional[str] = None) -> None:
        """Append a separator row, optionally labelled (spanning all columns)."""
        self.rows.append((SEPARATOR, label))

    def add_rows(self, rows: Iterable[Sequence[Cell]]) -> None:
        for row in rows:
            self.add_row(*row)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _formatted(self) -> List[object]:
        out: List[object] = []
        for row in self.rows:
            if isinstance(row, tuple) and row and row[0] is SEPARATOR:
                out.append(row)
            else:
                out.append(tuple(_format_cell(c, self.float_fmt) for c in row))
        return out

    def _widths(self, formatted: List[object]) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in formatted:
            if row and row[0] is SEPARATOR:
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an ASCII grid table."""
        formatted = self._formatted()
        widths = self._widths(formatted)
        total = sum(widths) + 3 * (len(widths) - 1)
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        rule = "-" * total
        lines.append(rule)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(rule)
        for row in formatted:
            if row and row[0] is SEPARATOR:
                label = row[1]
                if label:
                    lines.append(f"-- {label} ".ljust(total, "-"))
                else:
                    lines.append(rule)
            else:
                lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(rule)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        formatted = self._formatted()
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in formatted:
            if row and row[0] is SEPARATOR:
                label = row[1] or ""
                span = [f"*{label}*" if label else ""] + [""] * (len(self.headers) - 1)
                lines.append("| " + " | ".join(span) + " |")
            else:
                lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
