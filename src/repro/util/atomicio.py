"""Atomic file writes (temp file + rename in the target directory).

Every durable artifact this package writes — gmon samples, phase-model
files, daemon checkpoints — goes through :func:`atomic_write_bytes`: the
bytes land in a temporary file *in the same directory*, are fsynced, and
then renamed over the target.  A reader (or a crash at any instant)
therefore sees either the old complete file or the new complete file,
never a truncated hybrid.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.store.layout import tmp_path_for


def atomic_write_bytes(path: Union[str, Path], blob: bytes) -> Path:
    """Write ``blob`` to ``path`` atomically; return the final path.

    The temporary name (see :func:`repro.store.layout.tmp_path_for`)
    carries the pid so concurrent writers in different processes never
    collide; ``os.replace`` makes the final rename atomic on POSIX and
    Windows alike.
    """
    path = Path(path)
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
