"""Structured JSON logging.

The service layer logs one JSON object per line — machine-parseable the
way the paper's heartbeat rows are: a fixed envelope (timestamp, level,
logger, event) plus free-form fields.  A fleet aggregator can grep
``"event":"slow-op"`` the same way it greps a metrics endpoint, instead
of scraping human prose.

Levels follow the conventional severity order; a logger drops records
below its threshold before serialization, so disabled debug logging
costs one dict lookup and a comparison.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Callable, Dict, Optional, TextIO

from repro.util.errors import ValidationError

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class JsonLogger:
    """One named logger writing JSON lines to a text stream.

    Thread-safe: the service's reader threads, workers, and housekeeping
    all share one logger, so each record is serialized and written under
    a lock (one line per record, never interleaved).

    ``bound`` fields (set at construction or via :meth:`bind`) are merged
    into every record — the daemon binds its endpoint once instead of
    repeating it at every call site.
    """

    def __init__(
        self,
        name: str,
        level: str = "info",
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.time,
        **bound: Any,
    ) -> None:
        if level not in LEVELS:
            raise ValidationError(
                f"unknown log level {level!r} (expected one of {sorted(LEVELS)})")
        self.name = name
        self.level = level
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.bound = dict(bound)
        self._lock = threading.Lock()
        self.emitted = 0

    def bind(self, **fields: Any) -> "JsonLogger":
        """A child logger with extra fields merged into every record."""
        child = JsonLogger(self.name, level=self.level, stream=self.stream,
                           clock=self.clock, **{**self.bound, **fields})
        child._lock = self._lock  # share the line lock with the parent
        return child

    def enabled(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= LEVELS[self.level]

    def log(self, level: str, event: str, **fields: Any) -> Optional[str]:
        """Emit one record; returns the serialized line (None if dropped)."""
        if level not in LEVELS:
            raise ValidationError(f"unknown log level {level!r}")
        if not self.enabled(level):
            return None
        record: Dict[str, Any] = {
            "ts": round(self.clock(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(self.bound)
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=False,
                          default=str)
        with self._lock:
            self.stream.write(line + "\n")
            try:
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self.emitted += 1
        return line

    def debug(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> Optional[str]:
        return self.log("error", event, **fields)


class NullLogger(JsonLogger):
    """Discards everything (tests and embedded servers that want silence)."""

    def __init__(self) -> None:
        super().__init__("null", level="error")

    def log(self, level: str, event: str, **fields: Any) -> Optional[str]:
        return None
