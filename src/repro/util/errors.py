"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries while still distinguishing failure families.

Two branches are structured further:

- :class:`FormatError` covers every *serialized artifact* this package
  reads or writes — gmon sample files (:class:`SampleFileError`), phase
  model artifacts (:class:`ModelFormatError`), and daemon checkpoints
  (:class:`CheckpointError`).  ``except FormatError`` catches "the bytes
  on disk are bad" regardless of which artifact they belong to.
- :class:`ServiceError` covers the phase-monitoring service.  Error
  *replies* from the daemon surface as :class:`RequestError` subclasses
  carrying the full reply payload; connection-level failures surface as
  :class:`ConnectionLostError` / :class:`RetryExhaustedError`.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class ProfileDataError(ReproError):
    """Profile data is inconsistent (e.g. non-monotone cumulative series)."""


class ClusteringError(ReproError):
    """Clustering could not be performed (e.g. fewer points than clusters)."""


class CollectorError(ReproError):
    """The incremental-profile collector was misused or failed."""


class AppError(ReproError):
    """A workload application was misconfigured."""


class ProtocolError(ReproError):
    """A service wire-protocol frame is malformed or violates the protocol."""


# ----------------------------------------------------------------------
# serialized artifacts (one branch for "the bytes on disk are bad")
# ----------------------------------------------------------------------
class FormatError(ReproError):
    """A serialized artifact (gmon file, model, checkpoint) is malformed."""


class SampleFileError(FormatError):
    """A gmon sample file in a store is corrupt or truncated.

    Carries the offending path so callers (and the service ingest path)
    can report *which* dump went bad rather than crashing mid-load.
    """

    def __init__(self, path, cause: Exception) -> None:
        super().__init__(f"corrupt sample file {path}: {cause}")
        self.path = path
        self.cause = cause


class ModelFormatError(FormatError):
    """A phase-model artifact is corrupt, truncated, or version-mismatched."""


class CheckpointError(FormatError):
    """An ``incprofd`` checkpoint file is corrupt, truncated, or stale."""


class SegmentManifestError(FormatError):
    """A segment store's manifest is corrupt, truncated, or mismatched."""


# ----------------------------------------------------------------------
# service errors (wire-mappable: each carries a stable ``code``)
# ----------------------------------------------------------------------
class ServiceError(ReproError):
    """The phase-monitoring service was misused or is unavailable.

    ``code`` is a stable machine-readable identifier; the server copies
    it into error replies so clients can re-raise the matching subclass.
    """

    code = "error"


class RequestError(ServiceError):
    """The daemon answered a request with an error reply.

    ``reply`` is the full :class:`~repro.service.protocol.Reply`, so the
    payload (``outcome``, counters, ...) stays inspectable even when the
    client raises instead of returning it.
    """

    def __init__(self, message: str, reply=None) -> None:
        super().__init__(message)
        self.reply = reply

    @property
    def data(self) -> dict:
        return dict(self.reply.data) if self.reply is not None else {}


class UnknownStreamError(RequestError):
    """A request named a stream the daemon does not know (hello first?)."""

    code = "unknown-stream"


class StreamConflictError(RequestError):
    """A hello named a stream id that is already registered."""

    code = "stream-conflict"


class BackpressureError(RequestError):
    """A snapshot was refused because the stream's queue stayed full."""

    code = "backpressure"


class RedirectError(RequestError):
    """A fleet router answered: this stream lives on another worker.

    The reply data carries ``endpoint`` (where to go), ``worker_id``, and
    ``ring_generation``.  :class:`~repro.service.client.PhaseClient`
    follows redirects transparently; this surfaces only when the hop
    budget is exhausted or no target endpoint was given.
    """

    code = "redirect"


class WrongWorkerError(RequestError):
    """A worker refused a stream the current ring assigns elsewhere.

    Raised after a rebalance when a client keeps talking to the old
    owner.  The reply data names the new ``owner`` and the ring
    ``generation``; clients re-resolve through their home (router)
    endpoint.
    """

    code = "wrong-worker"


class WorkerUnavailableError(RequestError):
    """The router could not reach the worker owning this stream.

    Transient by design: the supervisor will restart or evict the dead
    worker and rebalance; publishers should back off and retry through
    the resume handshake rather than dropping the interval.
    """

    code = "worker-unavailable"


class ConnectionLostError(ServiceError):
    """The connection to the daemon died mid-request.

    The request may or may not have been processed — resume via a
    ``hello(resume=True)`` handshake rather than blindly resending.
    """

    code = "connection-lost"

    def __init__(self, message: str, cause: Optional[Exception] = None) -> None:
        super().__init__(message)
        self.cause = cause


class RetryExhaustedError(ServiceError):
    """Every retry attempt failed; ``cause`` is the last failure."""

    code = "retry-exhausted"

    def __init__(self, message: str, attempts: int,
                 cause: Optional[Exception] = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.cause = cause


#: Wire code -> exception class, used by clients to raise typed errors
#: from error replies.  Unknown codes map to plain :class:`RequestError`.
REQUEST_ERROR_CODES = {
    cls.code: cls
    for cls in (UnknownStreamError, StreamConflictError, BackpressureError,
                RedirectError, WrongWorkerError, WorkerUnavailableError)
}


def request_error_from_reply(reply) -> RequestError:
    """Build the typed exception matching an error reply's ``code``."""
    cls = REQUEST_ERROR_CODES.get(reply.data.get("code", ""), RequestError)
    return cls(reply.error or "request failed", reply=reply)
