"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries while still distinguishing failure families.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class FormatError(ReproError):
    """A serialized artifact (gmon file, report text) is malformed."""


class ProfileDataError(ReproError):
    """Profile data is inconsistent (e.g. non-monotone cumulative series)."""


class ClusteringError(ReproError):
    """Clustering could not be performed (e.g. fewer points than clusters)."""


class CollectorError(ReproError):
    """The incremental-profile collector was misused or failed."""


class AppError(ReproError):
    """A workload application was misconfigured."""


class ProtocolError(ReproError):
    """A service wire-protocol frame is malformed or violates the protocol."""


class ServiceError(ReproError):
    """The phase-monitoring service was misused or is unavailable."""
