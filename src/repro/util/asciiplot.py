"""ASCII time-series plots.

The paper's Figures 2-6 are heartbeat time-series plots.  The benchmark
harness regenerates the underlying series and renders them as text so the
"figures" can be inspected in a terminal and diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.util.errors import ValidationError

_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a one-line sparkline of ``values`` using block characters.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    blocks = "▁▂▃▄▅▆▇█"
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if width is not None and vals.size > width:
        # Down-sample by taking bin maxima so spikes stay visible.
        edges = np.linspace(0, vals.size, width + 1).astype(int)
        vals = np.array([vals[a:b].max() if b > a else 0.0 for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(vals.min()), float(vals.max())
    if hi <= lo:
        return blocks[0] * vals.size
    scaled = ((vals - lo) / (hi - lo) * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[i] for i in scaled)


@dataclass
class AsciiPlot:
    """Multi-series scatter/line plot rendered with ASCII characters.

    Series share the x axis (interval index / time) and are drawn with
    distinct marker characters; a legend maps markers to series names.
    """

    title: str = ""
    width: int = 100
    height: int = 18
    xlabel: str = "interval"
    ylabel: str = ""
    series: Dict[str, List[tuple]] = field(default_factory=dict)

    def add_series(self, name: str, x: Sequence[float], y: Sequence[float]) -> None:
        """Add a named series of (x, y) points; zero-length series allowed."""
        if len(x) != len(y):
            raise ValidationError("x and y must have the same length")
        self.series[name] = list(zip(x, y))

    def render(self) -> str:
        if not self.series:
            return f"{self.title}\n(no data)"
        all_pts = [p for pts in self.series.values() for p in pts]
        if not all_pts:
            return f"{self.title}\n(no data)"
        xs = np.array([p[0] for p in all_pts], dtype=float)
        ys = np.array([p[1] for p in all_pts], dtype=float)
        x_lo, x_hi = float(xs.min()), float(xs.max())
        y_lo, y_hi = float(ys.min()), float(ys.max())
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for idx, (name, pts) in enumerate(self.series.items()):
            marker = _MARKERS[idx % len(_MARKERS)]
            for x, y in pts:
                col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
                row = int((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
                grid[self.height - 1 - row][col] = marker

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        y_labels = [f"{y_hi:10.2f} ", " " * 11, f"{y_lo:10.2f} "]
        for i, row in enumerate(grid):
            if i == 0:
                prefix = y_labels[0]
            elif i == self.height - 1:
                prefix = y_labels[2]
            else:
                prefix = y_labels[1]
            lines.append(prefix + "|" + "".join(row))
        lines.append(" " * 11 + "+" + "-" * self.width)
        lines.append(
            " " * 12 + f"{x_lo:<10.1f}" + " " * max(0, self.width - 20) + f"{x_hi:>10.1f}"
        )
        lines.append(" " * 12 + self.xlabel)
        legend = "   ".join(
            f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(self.series)
        )
        lines.append("legend: " + legend)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
