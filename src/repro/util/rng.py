"""Deterministic random-stream derivation.

All stochastic behaviour in the package (cost-model jitter, k-means++
initialization, per-rank noise) is driven by :class:`numpy.random.Generator`
streams derived from a single experiment seed.  Deriving independent
streams by hashing ``(seed, *keys)`` keeps runs reproducible regardless of
the order in which components draw random numbers.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

_SeedKey = Union[int, str, float, bytes]


def derive_seed(seed: int, *keys: _SeedKey) -> int:
    """Derive a child seed from ``seed`` and a sequence of stream keys.

    The derivation is a SHA-256 hash over the canonical textual form of the
    seed and keys, reduced to 63 bits.  Distinct key tuples give
    independent, reproducible child seeds.

    >>> derive_seed(42, "graph500", "rank", 0) == derive_seed(42, "graph500", "rank", 0)
    True
    >>> derive_seed(42, "a") != derive_seed(42, "b")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(repr(int(seed)).encode("utf-8"))
    for key in keys:
        hasher.update(b"\x1f")
        if isinstance(key, bytes):
            hasher.update(key)
        else:
            hasher.update(repr(key).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & (2**63 - 1)


def rng_stream(seed: int, *keys: _SeedKey) -> np.random.Generator:
    """Return an independent ``Generator`` for the stream named by ``keys``."""
    return np.random.default_rng(derive_seed(seed, *keys))
