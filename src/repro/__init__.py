"""IncProf reproduction: source-oriented phase identification.

A from-scratch Python implementation of the system described in
*"IncProf: Efficient Source-Oriented Phase Identification for Application
Behavior Understanding"* (CLUSTER 2022): the incremental gprof-snapshot
collector, the k-means/elbow phase-detection pipeline, Algorithm 1's
instrumentation-site selection, and the AppEKG heartbeat framework —
plus simulated workload models of the paper's five evaluation
applications and the harness regenerating every table and figure.

Quickstart::

    from repro import apps, incprof, core

    app = apps.get_app("graph500")
    session = incprof.Session(app, incprof.SessionConfig(ranks=1, scale=0.25))
    result = session.run()
    analysis = core.analyze_snapshots(result.samples(rank=0))
    for selected in analysis.sites():
        print(selected.phase_id, selected.function, selected.inst_type.value)
"""

from repro import apps, core, gprof, heartbeat, incprof, profiler, simulate, util  # noqa: F401
from repro import api  # noqa: F401  (the stable facade; see docs/API.md)
from repro.core import AnalysisConfig, AnalysisResult, analyze_snapshots
from repro.incprof import Session, SessionConfig

__version__ = "1.0.0"

__all__ = [
    "api",
    "apps",
    "core",
    "gprof",
    "heartbeat",
    "incprof",
    "profiler",
    "simulate",
    "util",
    "AnalysisConfig",
    "AnalysisResult",
    "analyze_snapshots",
    "Session",
    "SessionConfig",
    "__version__",
]
