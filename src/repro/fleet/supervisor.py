"""Worker supervision: spawn, watch, restart, evict, rebalance.

The supervisor owns the fleet's membership truth: it spawns N
``incprofd`` worker daemons as subprocesses (each with its own unix
socket, checkpoint directory, and worker id), installs the consistent-
hash ring on every worker, and keeps the fleet manifest on disk current.

Failure handling is two-tier, and deliberately asymmetric:

- **Restart** (cheap): a dead worker respawned under the *same* worker
  id keeps its ring position, so no stream moves; it recovers its own
  streams from its own checkpoint and publishers resume into it through
  the normal ``hello(resume=True)`` handshake.
- **Evict** (rebalance): after ``max_restarts`` failed revivals the
  worker is removed from the ring (generation bump), the new membership
  is pushed to every survivor, and the dead worker's checkpoint is read
  so each orphaned stream can be migrated to its new ring owner via the
  ``adopt-stream`` control.  Consistent hashing guarantees only the dead
  worker's streams move.

Both paths lose at most one checkpoint interval per stream: the adopt
payload is the dead worker's last checkpoint, and the publisher's resume
handshake rewinds to ``processed_seq + 1`` on the adopting worker.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fleet.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.service.checkpoint import (
    CheckpointManager,
    FleetManifest,
    worker_checkpoint_dir,
)
from repro.service.client import PhaseClient, RetryPolicy
from repro.service.protocol import Endpoint
from repro.store import layout
from repro.util.errors import (
    CheckpointError,
    ReproError,
    ServiceError,
    ValidationError,
)
from repro.util.jsonlog import JsonLogger

#: Control pushes to workers fail fast: a dead worker must be detected,
#: not waited on.
_LINK_RETRY = RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.2,
                          request_timeout=10.0, connect_timeout=2.0)


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of one worker fleet."""

    #: Fleet root directory: per-worker checkpoint dirs, unix sockets,
    #: and the topology manifest all live under here.
    root: str
    n_workers: int = 2
    #: Phase-model artifact every worker serves (None: ingest-only).
    model_path: Optional[str] = None
    #: Classification threads inside each worker daemon.
    worker_threads: int = 2
    queue_capacity: int = 64
    policy: str = "block"
    idle_timeout: float = 30.0
    checkpoint_interval: float = 0.5
    #: Liveness probe cadence for the monitor thread.
    ping_interval: float = 0.5
    #: How long one worker may take to come up before start() fails.
    startup_timeout: float = 20.0
    #: Revivals under the same identity before the worker is evicted
    #: from the ring (0 = evict on first death).
    max_restarts: int = 1
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    log_level: str = "warning"
    refit_interval: Optional[float] = None
    refit_drift_threshold: float = 0.3
    #: Per-worker interval archives: each worker appends every
    #: classified snapshot into its own tiered segment store under
    #: ``worker-<id>/store`` (shared-nothing, like checkpoints), so any
    #: worker's history can be replayed with ``incprof replay`` — even
    #: after the worker is evicted.  Off by default.
    archive_intervals: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValidationError("need at least one worker")
        if self.worker_threads < 1:
            raise ValidationError("need at least one worker thread")
        if self.startup_timeout <= 0:
            raise ValidationError("startup timeout must be positive")
        if self.max_restarts < 0:
            raise ValidationError("max restarts must be non-negative")
        if self.ping_interval <= 0:
            raise ValidationError("ping interval must be positive")


@dataclass
class WorkerHandle:
    """One spawned worker daemon as the supervisor sees it."""

    worker_id: str
    endpoint: Endpoint
    checkpoint_dir: Path
    store_dir: Optional[Path] = None
    proc: Optional[subprocess.Popen] = None
    restarts: int = 0
    evicted: bool = False
    spawned_at: float = field(default_factory=time.monotonic)

    def process_alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class WorkerSupervisor:
    """Spawns and supervises the worker fleet; owns the hash ring."""

    def __init__(self, config: FleetConfig,
                 logger: Optional[JsonLogger] = None) -> None:
        self.config = config
        self.root = Path(config.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.log = (logger if logger is not None
                    else JsonLogger("fleet-supervisor",
                                    level=config.log_level))
        self.ring = HashRing(virtual_nodes=config.virtual_nodes)
        self.manifest = FleetManifest(self.root)
        self.workers: Dict[str, WorkerHandle] = {}
        self._links: Dict[str, PhaseClient] = {}
        #: One lock serializes every membership mutation (spawn, restart,
        #: evict): the monitor thread and router failure reports may race.
        self._lock = threading.RLock()
        self._monitor: Optional[threading.Thread] = None
        self._running = threading.Event()
        self.restarts_total = 0
        self.evictions_total = 0
        self.migrations_total = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> List[str]:
        """Spawn the fleet, install the ring everywhere; return worker ids."""
        with self._lock:
            if self.workers:
                raise ServiceError("fleet already started")
            for i in range(self.config.n_workers):
                worker_id = f"w{i}"
                handle = self._make_handle(worker_id)
                self._spawn(handle)
                self.workers[worker_id] = handle
            for handle in self.workers.values():
                self._wait_ready(handle)
                self.ring.add_worker(handle.worker_id)
            # Membership is complete before any worker enforces it: a
            # worker without a ring accepts everything, so pushing the
            # final ring once avoids a window of spurious refusals.
            self._push_ring()
            self._write_manifest()
        self.log.info("fleet-started", workers=sorted(self.workers),
                      generation=self.ring.generation)
        return sorted(self.workers)

    def start_monitor(self) -> None:
        """Run the liveness probe loop on a daemon thread."""
        if self._monitor is not None:
            return
        self._running.set()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="fleet-monitor", daemon=True)
        self._monitor.start()

    def stop(self) -> None:
        """Shut every worker down (orderly first, then force)."""
        self._running.clear()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            for handle in self.workers.values():
                self._shutdown_worker(handle)
            for link in self._links.values():
                link.close()
            self._links.clear()
            self._write_manifest()
        self.log.info("fleet-stopped",
                      restarts=self.restarts_total,
                      evictions=self.evictions_total)

    def __enter__(self) -> "WorkerSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _make_handle(self, worker_id: str) -> WorkerHandle:
        sock = self.root / f"{worker_id}.sock"
        checkpoint_dir = worker_checkpoint_dir(self.root, worker_id)
        return WorkerHandle(
            worker_id=worker_id,
            endpoint=Endpoint.unix(str(sock)),
            checkpoint_dir=checkpoint_dir,
            store_dir=(checkpoint_dir / layout.WORKER_STORE_DIRNAME
                       if self.config.archive_intervals else None),
        )

    def _worker_command(self, handle: WorkerHandle) -> List[str]:
        cfg = self.config
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--unix", handle.endpoint.path,
            "--worker-id", handle.worker_id,
            "--checkpoint-dir", str(handle.checkpoint_dir),
            "--checkpoint-interval", str(cfg.checkpoint_interval),
            "--workers", str(cfg.worker_threads),
            "--queue", str(cfg.queue_capacity),
            "--policy", cfg.policy,
            "--idle-timeout", str(cfg.idle_timeout),
            "--log-level", cfg.log_level,
        ]
        if handle.store_dir is not None:
            cmd += ["--store-dir", str(handle.store_dir)]
        if cfg.model_path:
            cmd += ["--model", cfg.model_path]
        if cfg.refit_interval is not None:
            cmd += ["--refit-interval", str(cfg.refit_interval),
                    "--refit-drift-threshold",
                    str(cfg.refit_drift_threshold)]
        return cmd

    def _spawn(self, handle: WorkerHandle) -> None:
        # A stale socket file from a previous life refuses the new bind.
        try:
            os.unlink(handle.endpoint.path)
        except OSError:
            pass
        handle.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (src_dir + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_dir)
        handle.proc = subprocess.Popen(
            self._worker_command(handle),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        handle.spawned_at = time.monotonic()
        self.log.info("worker-spawned", worker_id=handle.worker_id,
                      pid=handle.proc.pid, endpoint=str(handle.endpoint))

    def _wait_ready(self, handle: WorkerHandle) -> None:
        """Block until the worker answers a ping (or startup times out)."""
        deadline = time.monotonic() + self.config.startup_timeout
        last = "no attempt"
        while time.monotonic() < deadline:
            if not handle.process_alive():
                raise ServiceError(
                    f"worker {handle.worker_id!r} exited during startup "
                    f"(rc={handle.proc.returncode if handle.proc else '?'})")
            try:
                reply = self._link(handle).ping()
                if reply.ok:
                    return
                last = reply.error
            except (ReproError, OSError) as exc:
                last = str(exc)
                self._drop_link(handle.worker_id)
            time.sleep(0.05)
        raise ServiceError(
            f"worker {handle.worker_id!r} not ready after "
            f"{self.config.startup_timeout:g}s: {last}")

    # ------------------------------------------------------------------
    # control links
    # ------------------------------------------------------------------
    def _link(self, handle: WorkerHandle) -> PhaseClient:
        link = self._links.get(handle.worker_id)
        if link is None:
            link = PhaseClient(handle.endpoint, retry=_LINK_RETRY,
                               check=False)
            self._links[handle.worker_id] = link
        return link

    def _drop_link(self, worker_id: str) -> None:
        link = self._links.pop(worker_id, None)
        if link is not None:
            link.close()

    def endpoint_of(self, worker_id: str) -> Endpoint:
        with self._lock:
            handle = self.workers.get(worker_id)
            if handle is None or handle.evicted:
                raise ServiceError(f"no live worker {worker_id!r}")
            return handle.endpoint

    def live_workers(self) -> List[WorkerHandle]:
        with self._lock:
            return [h for h in self.workers.values() if not h.evicted]

    def _push_ring(self) -> None:
        """Install the current membership on every live worker."""
        ring_obj = self.ring.to_obj()
        for handle in list(self.workers.values()):
            if handle.evicted:
                continue
            try:
                reply = self._link(handle).control("ring-update",
                                                   ring=ring_obj)
                if not reply.ok:
                    self.log.warning("ring-push-refused",
                                     worker_id=handle.worker_id,
                                     error=reply.error)
            except (ReproError, OSError) as exc:
                # The monitor (or the next router failure report) will
                # deal with this worker; the push is retried on the next
                # membership change anyway.
                self.log.warning("ring-push-failed",
                                 worker_id=handle.worker_id, error=str(exc))
                self._drop_link(handle.worker_id)

    def _write_manifest(self) -> None:
        workers = {
            h.worker_id: {
                "endpoint": str(h.endpoint),
                "checkpoint_dir": str(h.checkpoint_dir),
                "store_dir": (str(h.store_dir)
                              if h.store_dir is not None else None),
                "evicted": h.evicted,
                "restarts": h.restarts,
            }
            for h in self.workers.values()
        }
        try:
            self.manifest.write(self.ring.to_obj(), workers)
        except OSError as exc:
            self.log.warning("manifest-write-failed", error=str(exc))

    # ------------------------------------------------------------------
    # liveness + failure handling
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while self._running.is_set():
            time.sleep(self.config.ping_interval)
            if not self._running.is_set():
                return
            self.check_once()

    def check_once(self) -> List[str]:
        """Probe every live worker; handle failures.  Returns events."""
        events: List[str] = []
        for handle in self.live_workers():
            if not self._probe(handle):
                events.append(self.handle_failure(handle.worker_id))
        return events

    def _probe(self, handle: WorkerHandle) -> bool:
        if not handle.process_alive():
            return False
        try:
            return bool(self._link(handle).ping().ok)
        except (ReproError, OSError):
            self._drop_link(handle.worker_id)
            # The process may just be busy; trust the process state for
            # the verdict and let the next probe retry the socket.
            return handle.process_alive()

    def handle_failure(self, worker_id: str) -> str:
        """React to a dead worker: restart under the same id, or evict.

        Idempotent and safe to call from the router's forwarding path:
        a worker that is actually alive (spurious report) is left alone.
        """
        with self._lock:
            handle = self.workers.get(worker_id)
            if handle is None or handle.evicted:
                return "ignored"
            if handle.process_alive() and self._probe(handle):
                return "alive"
            if handle.proc is not None and handle.proc.poll() is None:
                # Process exists but stopped answering: treat as dead.
                handle.proc.kill()
                handle.proc.wait(timeout=5.0)
            if handle.restarts < self.config.max_restarts:
                return self._restart(handle)
            return self._evict(handle)

    def _restart(self, handle: WorkerHandle) -> str:
        handle.restarts += 1
        self.restarts_total += 1
        self._drop_link(handle.worker_id)
        self.log.warning("worker-restarting", worker_id=handle.worker_id,
                         attempt=handle.restarts)
        self._spawn(handle)
        try:
            self._wait_ready(handle)
        except ServiceError as exc:
            self.log.warning("worker-restart-failed",
                             worker_id=handle.worker_id, error=str(exc))
            return self._evict(handle)
        # Same identity, same ring position: nothing moves, but the
        # revived worker needs the membership pushed again (its ring
        # died with the old process).
        self._push_ring()
        self._write_manifest()
        return f"restarted:{handle.worker_id}"

    def _evict(self, handle: WorkerHandle) -> str:
        """Remove a worker from the ring and migrate its streams away."""
        handle.evicted = True
        self.evictions_total += 1
        self._drop_link(handle.worker_id)
        if handle.worker_id in self.ring:
            self.ring.remove_worker(handle.worker_id)
        self.log.warning("worker-evicted", worker_id=handle.worker_id,
                         generation=self.ring.generation)
        # Survivors learn the new membership *before* orphans migrate,
        # so an adopting worker never refuses its own new streams.
        self._push_ring()
        migrated = self.migrate_orphans(handle)
        self._write_manifest()
        return f"evicted:{handle.worker_id}:migrated={len(migrated)}"

    def migrate_orphans(self, handle: WorkerHandle) -> List[str]:
        """Drive the dead worker's checkpointed streams to new owners.

        Reads the victim's last checkpoint and sends each stream record
        to its new ring owner via ``adopt-stream``.  A corrupt or absent
        checkpoint migrates nothing — publishers still recover through
        the resume handshake, they just restart their streams from the
        new owner's ``resume_from`` (0 for fresh state).
        """
        if len(self.ring) == 0:
            self.log.warning("no-survivors", worker_id=handle.worker_id)
            return []
        manager = CheckpointManager(handle.checkpoint_dir,
                                    interval=self.config.checkpoint_interval)
        try:
            payload = manager.load()
        except CheckpointError as exc:
            quarantined = manager.quarantine()
            self.log.warning("orphan-checkpoint-corrupt",
                             worker_id=handle.worker_id,
                             quarantined=str(quarantined), error=str(exc))
            return []
        if payload is None:
            return []
        migrated: List[str] = []
        for obj in payload.get("streams", []):
            if not isinstance(obj, dict) or not obj.get("stream_id"):
                continue
            stream_id = str(obj["stream_id"])
            owner = self.ring.lookup(stream_id)
            target = self.workers[owner]
            try:
                reply = self._link(target).control("adopt-stream", stream=obj)
            except (ReproError, OSError) as exc:
                self.log.warning("adopt-failed", stream_id=stream_id,
                                 worker_id=owner, error=str(exc))
                self._drop_link(owner)
                continue
            if reply.ok:
                migrated.append(stream_id)
                self.migrations_total += 1
                self.log.info("stream-migrated", stream_id=stream_id,
                              src=handle.worker_id, dst=owner,
                              adopted=reply.data.get("adopted"))
            else:
                self.log.warning("adopt-refused", stream_id=stream_id,
                                 worker_id=owner, error=reply.error)
        return migrated

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: str,
                    sig: int = signal.SIGKILL) -> None:
        """Send a signal to a worker process (chaos testing hook)."""
        with self._lock:
            handle = self.workers.get(worker_id)
            if handle is None or handle.proc is None:
                raise ServiceError(f"no spawned worker {worker_id!r}")
            handle.proc.send_signal(sig)

    def _shutdown_worker(self, handle: WorkerHandle) -> None:
        if handle.proc is None:
            return
        if handle.process_alive() and not handle.evicted:
            try:
                self._link(handle).shutdown()
            except (ReproError, OSError):
                pass
        self._drop_link(handle.worker_id)
        try:
            handle.proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            handle.proc.terminate()
            try:
                handle.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
                handle.proc.wait(timeout=5.0)

    def orphan_stores(self) -> List[str]:
        """Interval archives whose owning worker was evicted.

        The archives are shared-nothing and append-only, so they outlive
        their worker: an operator (or ``incprof replay``) can still
        re-drive an evicted worker's history from the listed paths.
        """
        with self._lock:
            return sorted(
                str(h.store_dir) for h in self.workers.values()
                if h.evicted and h.store_dir is not None
                and h.store_dir.exists())

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "generation": self.ring.generation,
                "members": self.ring.members(),
                "workers": {
                    h.worker_id: {
                        "endpoint": str(h.endpoint),
                        "alive": h.process_alive(),
                        "evicted": h.evicted,
                        "restarts": h.restarts,
                        "store_dir": (str(h.store_dir)
                                      if h.store_dir is not None else None),
                    }
                    for h in self.workers.values()
                },
                "restarts_total": self.restarts_total,
                "evictions_total": self.evictions_total,
                "migrations_total": self.migrations_total,
                "orphan_stores": self.orphan_stores(),
            }
