"""The fleet front end: one endpoint, many workers.

The router speaks the existing ``incprofd`` wire protocol, so every
publisher, ``incprof submit``, and dashboard works against a fleet
unchanged.  Per-stream requests (``hello``/``snapshot``/``heartbeat``/
``bye``) are routed by consistent-hash lookup; fleet-wide requests
(``stats``/``fleet-status``/``metrics``/``trace``) fan out across the
live workers and merge the replies.

Two routing modes:

- **proxy** (default): the router forwards the request over a pooled
  per-worker connection and relays the worker's reply.  Publishers only
  ever know the router's address.
- **redirect**: the router answers with a ``redirect`` routing reply
  carrying the owning worker's endpoint; the client dials the worker
  directly and keeps the router out of the data path.

When a forward fails, the router answers ``worker-unavailable`` (the
protocol's "not processed, resend later") and reports the worker to the
supervisor, which restarts or evicts it and rebalances the ring — the
publisher's retry/resume machinery does the rest.

Percentile merging is exact, not approximate: the stats fan-out asks
each worker for its raw latency window and computes percentiles over
the union (see :func:`repro.service.metrics.aggregate_worker_stats`).
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.core.cohorts import CohortMatcher
from repro.fleet.analytics import PhaseSignature, analyze_signatures
from repro.fleet.supervisor import WorkerSupervisor
from repro.service.client import PhaseClient, RetryPolicy
from repro.service.dashboard import DashboardServer
from repro.service.exposition import CONTENT_TYPE, render_prometheus
from repro.service.metrics import aggregate_worker_stats
from repro.service.protocol import (
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Message,
    Reply,
    SnapshotMsg,
    binary_envelope,
    decode_payload,
    enable_nodelay,
    read_frame,
    redirect_reply,
    worker_unavailable_reply,
    write_message,
)
from repro.util.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ValidationError,
)
from repro.util.jsonlog import JsonLogger

ROUTER_MODES = ("proxy", "redirect")

#: Forwarding links fail fast; the publisher's own retry machinery (not
#: a blocked router thread) absorbs worker downtime.
_FORWARD_RETRY = RetryPolicy(max_attempts=2, base_delay=0.02, max_delay=0.1,
                             request_timeout=30.0, connect_timeout=2.0)


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one fleet router."""

    endpoint: Endpoint = field(default_factory=Endpoint.tcp)
    mode: str = "proxy"
    log_level: str = "info"
    #: Serve the merged fleet-analytics dashboard on this port
    #: (None = off; 0 = ephemeral).  See ``docs/ANALYTICS.md``.
    dashboard_port: Optional[int] = None
    dashboard_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.mode not in ROUTER_MODES:
            raise ValidationError(
                f"unknown router mode {self.mode!r} "
                f"(expected one of {ROUTER_MODES})")


class FleetRouter:
    """Routes the incprofd wire protocol across a supervised fleet."""

    def __init__(self, supervisor: WorkerSupervisor,
                 config: RouterConfig = RouterConfig(),
                 logger: Optional[JsonLogger] = None) -> None:
        self.supervisor = supervisor
        self.config = config
        self.log = (logger if logger is not None
                    else JsonLogger("fleet-router", level=config.log_level))
        self._links: Dict[str, PhaseClient] = {}
        self._links_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._endpoint: Optional[Endpoint] = None
        self._running = threading.Event()
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()
        self.routed = 0
        self.forward_failures = 0
        self.dashboard_http: Optional[DashboardServer] = None
        #: One matcher per router lifetime keeps cohort ids stable
        #: across successive fleet_analytics passes.
        self._analytics_matcher = CohortMatcher()
        self._analytics_lock = threading.Lock()
        self._analytics_summary: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> Endpoint:
        if self._endpoint is None:
            raise ServiceError("router is not started")
        return self._endpoint

    @property
    def ring(self):
        return self.supervisor.ring

    def start(self) -> Endpoint:
        if self._running.is_set():
            raise ServiceError("router already started")
        cfg = self.config
        if cfg.endpoint.kind == "unix":
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(cfg.endpoint.path)
            self._endpoint = cfg.endpoint
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.endpoint.host, cfg.endpoint.port))
            host, port = listener.getsockname()[:2]
            self._endpoint = replace(cfg.endpoint, host=host, port=port)
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        self._running.set()
        self._stopped.clear()
        self._spawn(self._accept_loop, "fleet-router-accept")
        if cfg.dashboard_port is not None:
            self.dashboard_http = DashboardServer(
                self.fleet_analytics_report,
                host=cfg.dashboard_host, port=cfg.dashboard_port,
                title="incprofd fleet analytics")
            self.dashboard_http.start()
        self.log.info("router-started", endpoint=str(self._endpoint),
                      mode=cfg.mode,
                      workers=len(self.ring))
        return self._endpoint

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        if self.dashboard_http is not None:
            self.dashboard_http.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        current = threading.current_thread()
        for thread in self._threads:
            if thread is not current:
                thread.join(timeout=5.0)
        with self._links_lock:
            for link in self._links.values():
                link.close()
            self._links.clear()
        self.log.info("router-stopped", routed=self.routed,
                      forward_failures=self.forward_failures)
        self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    def __enter__(self) -> "FleetRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # socket front end (same framing discipline as the worker daemon)
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conns_lock:
                self._conns.append(conn)
            self._spawn(lambda c=conn: self._handle_conn(c),
                        "fleet-router-conn")

    def _handle_conn(self, conn: socket.socket) -> None:
        enable_nodelay(conn)
        fh = conn.makefile("rwb")
        try:
            while self._running.is_set():
                try:
                    payload = read_frame(fh)
                except ProtocolError:
                    break
                if payload is None:
                    break
                try:
                    envelope = binary_envelope(payload)
                except ProtocolError as exc:
                    write_message(fh, Reply(ok=False, error=str(exc)))
                    continue
                if envelope is not None:
                    # Binary v2 frame: the peeked header names the
                    # stream, so it routes without decoding the gmon
                    # payload and proxies to the owner byte for byte.
                    reply = self._dispatch_raw(envelope.stream_id, payload)
                    write_message(fh, reply)
                    continue
                try:
                    msg = decode_payload(payload)
                except ProtocolError as exc:
                    write_message(fh, Reply(ok=False, error=str(exc)))
                    continue
                reply = self._dispatch(msg)
                write_message(fh, reply)
                if (reply.ok and isinstance(msg, Control)
                        and msg.command == "shutdown"):
                    threading.Thread(target=self._shutdown_fleet,
                                     name="fleet-router-stopper",
                                     daemon=True).start()
                    break
        except (OSError, ValueError):
            pass
        finally:
            try:
                fh.close()
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _shutdown_fleet(self) -> None:
        self.supervisor.stop()
        self.stop()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, msg: Message) -> Reply:
        try:
            if isinstance(msg, (Hello, SnapshotMsg, HeartbeatMsg, Bye)):
                return self._route(msg)
            if isinstance(msg, Control):
                return self._on_control(msg)
        except ServiceError as exc:
            return Reply(ok=False, error=str(exc), data={"code": exc.code})
        return Reply(ok=False, error=f"unhandled message {type(msg).__name__}")

    def _dispatch_raw(self, stream_id: str, payload: bytes) -> Reply:
        """Dispatch an already-encoded binary frame by its peeked header."""
        try:
            return self._route_payload(stream_id, payload)
        except ServiceError as exc:
            return Reply(ok=False, error=str(exc), data={"code": exc.code})

    def _route(self, msg: Message) -> Reply:
        return self._route_payload(msg.stream_id, None, msg)

    def _route_payload(self, stream_id: str, payload: Optional[bytes],
                       msg: Optional[Message] = None) -> Reply:
        owner = self.ring.lookup_or_none(stream_id)
        if owner is None:
            return worker_unavailable_reply("", "ring has no workers")
        if self.config.mode == "redirect":
            try:
                endpoint = self.supervisor.endpoint_of(owner)
            except ServiceError:
                return worker_unavailable_reply(owner, "owner not live")
            self.routed += 1
            return redirect_reply(endpoint, owner, self.ring.generation)
        return self._forward(owner, msg, payload=payload)

    def _forward(self, owner: str, msg: Optional[Message],
                 payload: Optional[bytes] = None) -> Reply:
        """Proxy-mode forwarding over a pooled per-worker link.

        A raw ``payload`` (binary v2 snapshot) is relayed verbatim with
        no transcoding; JSON messages go through the normal encoder.
        """
        try:
            link = self._link(owner)
            if payload is not None:
                reply = link.request_raw(payload, check=False)
            else:
                reply = link.request(msg, check=False)
        except (ReproError, OSError) as exc:
            # The owning worker is gone.  Tell the supervisor (restart
            # or evict + rebalance happens off this thread) and give the
            # publisher the protocol's "not processed, resend" answer.
            self.forward_failures += 1
            self._drop_link(owner)
            self._report_failure(owner)
            return worker_unavailable_reply(owner, str(exc))
        self.routed += 1
        return reply

    def _report_failure(self, worker_id: str) -> None:
        threading.Thread(
            target=lambda: self.supervisor.handle_failure(worker_id),
            name=f"fleet-router-report-{worker_id}", daemon=True).start()

    # ------------------------------------------------------------------
    # worker links
    # ------------------------------------------------------------------
    def _link(self, worker_id: str) -> PhaseClient:
        endpoint = self.supervisor.endpoint_of(worker_id)
        with self._links_lock:
            link = self._links.get(worker_id)
            if link is not None and link.endpoint != endpoint:
                # The worker restarted on a new address; stale link.
                link.close()
                link = None
            if link is None:
                link = PhaseClient(endpoint, retry=_FORWARD_RETRY,
                                   check=False, follow_routing=False)
                self._links[worker_id] = link
            return link

    def _drop_link(self, worker_id: str) -> None:
        with self._links_lock:
            link = self._links.pop(worker_id, None)
        if link is not None:
            link.close()

    # ------------------------------------------------------------------
    # fleet-wide controls (fan out + merge)
    # ------------------------------------------------------------------
    def _fanout(self, command: str, **args) -> Dict[str, Reply]:
        """One control request to every live worker; missing = dead."""
        replies: Dict[str, Reply] = {}
        for handle in self.supervisor.live_workers():
            try:
                replies[handle.worker_id] = self._link(
                    handle.worker_id).control(command, **args)
            except (ReproError, OSError):
                self._drop_link(handle.worker_id)
                self._report_failure(handle.worker_id)
        return replies

    def merged_stats(self) -> Dict[str, Any]:
        """Fleet-wide stats: counters summed, latency merged *exactly*."""
        replies = self._fanout("stats", latency_window=True)
        merged = aggregate_worker_stats(
            {wid: r.data for wid, r in replies.items() if r.ok})
        merged["role"] = "router"
        merged["mode"] = self.config.mode
        merged["ring_generation"] = self.ring.generation
        merged["routed"] = self.routed
        merged["forward_failures"] = self.forward_failures
        supervisor = self.supervisor.status()
        merged["supervisor"] = supervisor
        merged["policy"] = self.supervisor.config.policy
        with self._analytics_lock:
            if self._analytics_summary is not None:
                merged["analytics"] = dict(self._analytics_summary)
        if self.dashboard_http is not None:
            merged["dashboard_url"] = self.dashboard_http.url
        return merged

    def merged_fleet_status(self) -> Dict[str, Any]:
        """The fleet-status view across every worker, stream rows tagged."""
        replies = self._fanout("fleet-status")
        streams: List[Dict[str, Any]] = []
        finished: List[Dict[str, Any]] = []
        occupancy: Dict[str, int] = {}
        registered = expired = lag = novel = 0
        for worker_id, reply in sorted(replies.items()):
            if not reply.ok:
                continue
            data = reply.data
            for row in data.get("streams", []):
                row = dict(row)
                row["worker_id"] = worker_id
                streams.append(row)
            for row in data.get("finished", []):
                row = dict(row)
                row["worker_id"] = worker_id
                finished.append(row)
            registered += int(data.get("registered_total", 0))
            expired += int(data.get("expired_total", 0))
            lag += int(data.get("total_lag", 0))
            novel += int(data.get("novel_total", 0))
            for phase, occ in data.get("phase_occupancy", {}).items():
                occupancy[phase] = (occupancy.get(phase, 0)
                                    + int(occ.get("intervals", 0)))
        total = sum(occupancy.values())
        return {
            "streams": sorted(streams, key=lambda r: r["stream_id"]),
            "n_streams": len(streams),
            "registered_total": registered,
            "expired_total": expired,
            "phase_occupancy": {
                phase: {"intervals": count,
                        "share": count / total if total else 0.0}
                for phase, count in sorted(occupancy.items())
            },
            "total_lag": lag,
            "novel_total": novel,
            "finished": finished,
            "service": self.merged_stats(),
            "workers": self.supervisor.status(),
        }

    def fleet_signatures(self) -> List[PhaseSignature]:
        """Every live stream's phase signature, fanned out fleet-wide."""
        signatures: List[PhaseSignature] = []
        for worker_id, reply in sorted(
                self._fanout("fleet_analytics", signatures_only=True).items()):
            if not reply.ok:
                continue
            for obj in reply.data.get("signatures", []):
                sig = PhaseSignature.from_obj(obj)
                if not sig.worker_id:
                    sig.worker_id = worker_id
                signatures.append(sig)
        return signatures

    def fleet_analytics_report(self, *, kmax: Optional[int] = None,
                               drift_window: Optional[int] = None,
                               include_signatures: bool = True,
                               ) -> Dict[str, Any]:
        """Merge worker signatures and cluster once, fleet-wide.

        Workers only extract signatures (``signatures_only``); the
        cohort structure is computed here so streams of one workload
        sharded across different workers still land in one cohort, with
        ids stable across calls via the router's matcher.
        """
        signatures = self.fleet_signatures()
        kwargs: Dict[str, Any] = {"include_signatures": include_signatures}
        if kmax is not None:
            kwargs["kmax"] = kmax
        if drift_window is not None:
            kwargs["drift_window"] = drift_window
        with self._analytics_lock:
            report = analyze_signatures(signatures,
                                        matcher=self._analytics_matcher,
                                        **kwargs)
            self._analytics_summary = {
                "streams": report["n_streams"],
                "cohorts": report["n_cohorts"],
                "anomalies": len(report["anomalies"]),
                "drift_events": len(report["drift_events"]),
                "cohort_sizes": {str(c["cohort"]): c["size"]
                                 for c in report["cohorts"]},
            }
        report["role"] = "router"
        report["ring_generation"] = self.ring.generation
        return report

    def _on_control(self, msg: Control) -> Reply:
        command = msg.command
        if command == "ping":
            return Reply(ok=True, data={
                "version": 1,
                "role": "router",
                "mode": self.config.mode,
                "workers": len(self.ring),
                "ring_generation": self.ring.generation,
            })
        if command == "stats":
            return Reply(ok=True, data=self.merged_stats())
        if command == "fleet-status":
            return Reply(ok=True, data=self.merged_fleet_status())
        if command == "metrics":
            return Reply(ok=True, data={
                "text": render_prometheus(self.merged_stats()),
                "content_type": CONTENT_TYPE,
            })
        if command == "trace":
            replies = self._fanout("trace", **(msg.args or {}))
            rows: List[Dict[str, Any]] = []
            stats: Dict[str, Any] = {}
            any_ok = False
            for worker_id, reply in sorted(replies.items()):
                if not reply.ok:
                    continue
                any_ok = True
                rows.extend(reply.data.get("traces", []))
                for key, value in (reply.data.get("stats") or {}).items():
                    if isinstance(value, (int, float)):
                        stats[key] = stats.get(key, 0) + value
            if not any_ok:
                return Reply(ok=False, error="no worker answered the "
                                             "trace query")
            return Reply(ok=True, data={"traces": rows, "stats": stats})
        if command == "fleet_analytics":
            args = msg.args or {}
            kwargs: Dict[str, Any] = {}
            if "kmax" in args:
                kwargs["kmax"] = int(args["kmax"])
            if "drift_window" in args:
                kwargs["drift_window"] = int(args["drift_window"])
            if "include_signatures" in args:
                kwargs["include_signatures"] = bool(
                    args["include_signatures"])
            try:
                return Reply(ok=True,
                             data=self.fleet_analytics_report(**kwargs))
            except ReproError as exc:
                return Reply(ok=False, error=str(exc))
        if command == "shutdown":
            return Reply(ok=True, data={"stopping": True,
                                        "workers": len(self.ring)})
        if command in ("ring-update", "adopt-stream"):
            return Reply(ok=False,
                         error=f"{command!r} is a worker control; the "
                               "router owns the ring")
        return Reply(ok=False, error=f"unknown control command {command!r}")


def serve_fleet(supervisor: WorkerSupervisor,
                config: RouterConfig = RouterConfig()) -> FleetRouter:
    """Start a router over an already-started fleet; caller owns stop()."""
    router = FleetRouter(supervisor, config)
    router.start()
    return router
