"""Cross-stream phase intelligence for an incprofd fleet.

IncProf classifies each stream's intervals into phases independently;
this layer lifts the same machinery one level: every stream is reduced
to a compact :class:`PhaseSignature` (phase occupancy + transition
histogram + model shape + refit history), signatures embed into a fixed
:data:`SIG_DIM`-dimensional vector, and the existing k-means/silhouette
kernels cluster *streams* into **cohorts** the way they cluster
intervals into phases.  On top of the cohorts:

- **anomalies** — streams whose signature sits far outside their
  cohort's own distance distribution;
- **drift events** — correlated behaviour change across a cohort
  (a refit wave, or a cohort-wide novel-interval burst) within a
  trailing interval window.

Signatures come from two sources that produce the same schema:

- live — :meth:`PhaseSignature.from_tracker` reads a serving
  :class:`~repro.core.online.OnlinePhaseTracker` through its public,
  lock-taking accessors;
- recorded — :meth:`PhaseSignature.from_store` replays any
  :class:`~repro.store.interface.IntervalStore` window through the
  streaming engine, so ``incprof analyze-fleet`` reproduces the live
  answer offline from per-worker archives (including orphan stores of
  evicted workers).

Cohort ids stay stable across re-analysis via
:class:`repro.core.cohorts.CohortMatcher`.  See ``docs/ANALYTICS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cohorts import CohortMatcher, signature_distance
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.kselect import silhouette_k, spawn_seedseqs
from repro.core.online import NOVEL, OnlinePhaseTracker
from repro.store import layout
from repro.store.interface import IntervalStore, ReplayResult
from repro.store.segments import open_store
from repro.util.errors import ReproError, ValidationError

__all__ = [
    "SIG_DIM",
    "SIG_PHASES",
    "PhaseSignature",
    "analyze_fleet_dir",
    "analyze_signatures",
    "cluster_signatures",
    "detect_drift",
    "flag_anomalies",
]

#: Fixed phase-id slots in the embedding.  Stable ids above this fold
#: into the last slot — cross-stream geometry only needs the dominant
#: phases to be comparable, and DEFAULT_KMAX is 8.
SIG_PHASES = 8

#: Intervals of trailing phase timeline carried in a signature (enough
#: for the dashboard's per-stream strip; signatures stay wire-small).
TIMELINE_TAIL = 120

#: Trailing-window length (intervals) for drift correlation.
DEFAULT_DRIFT_WINDOW = 32

#: A cohort member further than ``mean + threshold * std`` from its
#: cohort centroid is anomalous.
DEFAULT_ANOMALY_THRESHOLD = 2.0

#: Tail novel-interval share that counts a stream into a novel burst.
DEFAULT_NOVEL_THRESHOLD = 0.25

#: Upper bound on the cohort count sweep.
DEFAULT_COHORT_KMAX = 4

_SCALAR_DIMS = 6

#: Total embedding dimensionality (see :meth:`PhaseSignature.vector`).
SIG_DIM = (SIG_PHASES + 1) + SIG_PHASES + SIG_PHASES * SIG_PHASES + _SCALAR_DIMS


def _squash(x: float) -> float:
    """Map [0, inf) into [0, 1) so unbounded scalars can't dominate."""
    return x / (1.0 + x)


def _slot(phase_id: int) -> int:
    """Embedding slot for a stable phase id (NOVEL gets its own slot)."""
    if phase_id == NOVEL:
        return SIG_PHASES
    return min(int(phase_id), SIG_PHASES - 1)


@dataclass
class PhaseSignature:
    """One stream's phase behaviour, compressed for fleet comparison.

    ``occupancy`` maps stable phase id -> share of classified intervals
    (NOVEL included as -1); ``transitions`` maps ``(from, to)`` ->
    share of all phase changes.  ``refit_indices`` are the interval
    indices of live-model refits, kept so drift detection can window
    them.  ``timeline`` is the trailing phase sequence (at most
    :data:`TIMELINE_TAIL` ids) for dashboard rendering.
    """

    stream_id: str
    n_intervals: int = 0
    n_phases: int = 0
    occupancy: Dict[int, float] = field(default_factory=dict)
    transitions: Dict[Tuple[int, int], float] = field(default_factory=dict)
    transition_rate: float = 0.0
    novel_share: float = 0.0
    refit_count: int = 0
    refit_indices: List[int] = field(default_factory=list)
    model_version: int = 0
    centroid_norms: List[float] = field(default_factory=list)
    timeline: List[int] = field(default_factory=list)
    worker_id: str = ""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_phase_sequence(
        cls,
        stream_id: str,
        sequence: Sequence[int],
        *,
        refit_indices: Sequence[int] = (),
        model_version: int = 0,
        centroids: Optional[np.ndarray] = None,
        worker_id: str = "",
    ) -> "PhaseSignature":
        """The common core: a signature from a classified phase sequence."""
        seq = [int(p) for p in sequence]
        n = len(seq)
        counts: Dict[int, int] = {}
        for phase in seq:
            counts[phase] = counts.get(phase, 0) + 1
        occupancy = {p: c / n for p, c in counts.items()} if n else {}
        changes: Dict[Tuple[int, int], int] = {}
        n_changes = 0
        for i in range(1, n):
            if seq[i] != seq[i - 1]:
                key = (seq[i - 1], seq[i])
                changes[key] = changes.get(key, 0) + 1
                n_changes += 1
        transitions = ({k: c / n_changes for k, c in changes.items()}
                       if n_changes else {})
        norms: List[float] = []
        if centroids is not None:
            arr = np.asarray(centroids, dtype=float)
            if arr.size:
                norms = sorted((float(x) for x in
                                np.linalg.norm(arr, axis=1)), reverse=True)
        return cls(
            stream_id=stream_id,
            n_intervals=n,
            n_phases=len([p for p in counts if p != NOVEL]),
            occupancy=occupancy,
            transitions=transitions,
            transition_rate=(n_changes / (n - 1)) if n > 1 else 0.0,
            novel_share=occupancy.get(NOVEL, 0.0),
            refit_count=len(refit_indices),
            refit_indices=sorted(int(i) for i in refit_indices),
            model_version=int(model_version),
            centroid_norms=norms,
            timeline=seq[-TIMELINE_TAIL:],
            worker_id=worker_id,
        )

    @classmethod
    def from_tracker(cls, stream_id: str, tracker: OnlinePhaseTracker,
                     worker_id: str = "") -> "PhaseSignature":
        """Signature of a live serving tracker (public accessors only)."""
        return cls.from_phase_sequence(
            stream_id,
            tracker.phase_sequence(),
            refit_indices=[e.interval_index for e in tracker.refit_events],
            model_version=tracker.model_version,
            centroids=tracker.centroids,
            worker_id=worker_id,
        )

    @classmethod
    def from_replay(cls, stream_id: str, result: ReplayResult,
                    worker_id: str = "") -> "PhaseSignature":
        """Signature from a store replay (warmup intervals are skipped)."""
        sequence = [p for p in result.phase_timeline() if p is not None]
        return cls.from_phase_sequence(
            stream_id,
            sequence,
            refit_indices=[e.interval_index for e in result.refits],
            model_version=result.engine.model_version,
            centroids=getattr(result.engine, "_centroids", None),
            worker_id=worker_id,
        )

    @classmethod
    def from_store(cls, store: IntervalStore, stream_id: str,
                   *, warmup: int = 12,
                   worker_id: str = "") -> "PhaseSignature":
        """Replay a recorded stream and take its signature."""
        result = store.replay(stream_id, warmup=warmup)
        return cls.from_replay(stream_id, result, worker_id=worker_id)

    # ------------------------------------------------------------------
    # embedding
    # ------------------------------------------------------------------
    def vector(self) -> np.ndarray:
        """Fixed-length embedding for distance math and clustering.

        Four blocks (shares, so every coordinate lives in [0, 1]):

        - **aligned occupancy** (``SIG_PHASES + 1``) — share per stable
          phase id slot, NOVEL last.  Comparable when streams share a
          model (live fleet: every tracker is spawned from one
          template).
        - **sorted occupancy** (``SIG_PHASES``) — the same shares
          sorted descending, label-invariant, so independently trained
          models (offline replay) still compare by phase *structure*.
        - **transition matrix** (``SIG_PHASES²``, half weight) — share
          of phase changes per (from, to) slot pair.
        - **scalars** (``6``) — transition rate, novel share, squashed
          refit rate, phase-count share, squashed mean/std centroid
          norm.
        """
        aligned = np.zeros(SIG_PHASES + 1)
        for phase, share in self.occupancy.items():
            aligned[_slot(phase)] += share
        non_novel = sorted(
            (share for phase, share in self.occupancy.items()
             if phase != NOVEL), reverse=True)[:SIG_PHASES]
        by_rank = np.zeros(SIG_PHASES)
        by_rank[:len(non_novel)] = non_novel
        trans = np.zeros((SIG_PHASES, SIG_PHASES))
        for (src, dst), share in self.transitions.items():
            # Transition structure only needs non-novel geometry; a
            # change into/out of NOVEL folds onto the last slot.
            trans[min(_slot(src), SIG_PHASES - 1),
                  min(_slot(dst), SIG_PHASES - 1)] += share
        refit_rate = self.refit_count / max(1, self.n_intervals)
        norms = np.asarray(self.centroid_norms, dtype=float)
        scalars = np.array([
            self.transition_rate,
            self.novel_share,
            _squash(refit_rate * 10.0),
            min(self.n_phases, SIG_PHASES) / SIG_PHASES,
            _squash(float(norms.mean()) if norms.size else 0.0),
            _squash(float(norms.std()) if norms.size else 0.0),
        ])
        return np.concatenate([aligned, by_rank, trans.ravel() * 0.5, scalars])

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------
    def to_obj(self) -> Dict[str, Any]:
        """JSON-ready dict (transition keys become ``"from->to"``)."""
        return {
            "stream_id": self.stream_id,
            "n_intervals": self.n_intervals,
            "n_phases": self.n_phases,
            "occupancy": {str(p): s for p, s in self.occupancy.items()},
            "transitions": {f"{a}->{b}": s
                            for (a, b), s in self.transitions.items()},
            "transition_rate": self.transition_rate,
            "novel_share": self.novel_share,
            "refit_count": self.refit_count,
            "refit_indices": list(self.refit_indices),
            "model_version": self.model_version,
            "centroid_norms": list(self.centroid_norms),
            "timeline": list(self.timeline),
            "worker_id": self.worker_id,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "PhaseSignature":
        try:
            transitions: Dict[Tuple[int, int], float] = {}
            for key, share in dict(obj.get("transitions", {})).items():
                src, _, dst = str(key).partition("->")
                transitions[(int(src), int(dst))] = float(share)
            return cls(
                stream_id=str(obj["stream_id"]),
                n_intervals=int(obj.get("n_intervals", 0)),
                n_phases=int(obj.get("n_phases", 0)),
                occupancy={int(p): float(s)
                           for p, s in dict(obj.get("occupancy", {})).items()},
                transitions=transitions,
                transition_rate=float(obj.get("transition_rate", 0.0)),
                novel_share=float(obj.get("novel_share", 0.0)),
                refit_count=int(obj.get("refit_count", 0)),
                refit_indices=[int(i)
                               for i in obj.get("refit_indices", [])],
                model_version=int(obj.get("model_version", 0)),
                centroid_norms=[float(x)
                                for x in obj.get("centroid_norms", [])],
                timeline=[int(p) for p in obj.get("timeline", [])],
                worker_id=str(obj.get("worker_id", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad phase signature: {exc}") from exc


# ----------------------------------------------------------------------
# cohorts
# ----------------------------------------------------------------------
def cluster_signatures(
    signatures: Sequence[PhaseSignature],
    *,
    kmax: int = DEFAULT_COHORT_KMAX,
    seed: int = 0,
    matcher: Optional[CohortMatcher] = None,
) -> Tuple[List[int], np.ndarray]:
    """Cluster streams by signature; ``(cohort id per stream, centroids)``.

    k is chosen by silhouette over a 1..min(kmax, n) sweep of the
    existing k-means kernel (one stream can't split, ties fall to the
    fewer-cohort side).  With a ``matcher``, cluster indices are mapped
    to stable cohort ids; without one, ids are the cluster indices of
    this run.
    """
    if not signatures:
        return [], np.empty((0, SIG_DIM))
    points = np.stack([s.vector() for s in signatures])
    n = points.shape[0]
    kmax = max(1, min(kmax, n))
    results: Dict[int, KMeansResult] = {}
    for k, seedseq in zip(range(1, kmax + 1), spawn_seedseqs(seed, kmax)):
        results[k] = kmeans(points, k, seed=seedseq, n_init=4)
    chosen = silhouette_k(points, results) if kmax > 1 else 1
    fit = results[chosen]
    centroids = np.asarray(fit.centroids, dtype=float)
    if matcher is not None:
        stable = matcher.match(centroids)
        labels = [stable[int(i)] for i in fit.labels]
    else:
        labels = [int(i) for i in fit.labels]
    return labels, centroids


def flag_anomalies(
    signatures: Sequence[PhaseSignature],
    labels: Sequence[int],
    *,
    threshold: float = DEFAULT_ANOMALY_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Streams whose signature diverges from their cohort's own spread.

    Per cohort with >= 3 members: distance of each member to the cohort
    mean vector; anomalous when further than ``mean + threshold * std``
    of that distribution (and non-degenerate: std > 0).  Smaller cohorts
    carry no distribution to diverge from.
    """
    if threshold <= 0:
        raise ValidationError("anomaly threshold must be positive")
    out: List[Dict[str, Any]] = []
    by_cohort: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        by_cohort.setdefault(int(label), []).append(i)
    vectors = [s.vector() for s in signatures]
    for cohort in sorted(by_cohort):
        members = by_cohort[cohort]
        if len(members) < 3:
            continue
        center = np.mean([vectors[i] for i in members], axis=0)
        dists = {i: signature_distance(vectors[i], center) for i in members}
        mean = float(np.mean(list(dists.values())))
        std = float(np.std(list(dists.values())))
        if std <= 0:
            continue
        cut = mean + threshold * std
        for i in members:
            if dists[i] > cut:
                out.append({
                    "stream_id": signatures[i].stream_id,
                    "worker_id": signatures[i].worker_id,
                    "cohort": cohort,
                    "distance": dists[i],
                    "cohort_mean": mean,
                    "cohort_std": std,
                })
    out.sort(key=lambda a: -a["distance"])
    return out


def detect_drift(
    signatures: Sequence[PhaseSignature],
    labels: Sequence[int],
    *,
    window: int = DEFAULT_DRIFT_WINDOW,
    novel_threshold: float = DEFAULT_NOVEL_THRESHOLD,
    min_streams: int = 2,
) -> List[Dict[str, Any]]:
    """Correlated behaviour change across a cohort, two kinds of event.

    - ``refit-wave`` — live-model refits landed within the trailing
      ``window`` intervals on enough of the cohort;
    - ``novel-burst`` — the trailing-window novel-interval share
      crossed ``novel_threshold`` on enough of the cohort.

    "Enough" is ``max(min_streams, half the cohort)`` — one stream
    drifting alone is that stream's anomaly, not a fleet event.
    """
    if window < 1:
        raise ValidationError("drift window must be positive")
    by_cohort: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        by_cohort.setdefault(int(label), []).append(i)
    events: List[Dict[str, Any]] = []
    for cohort in sorted(by_cohort):
        members = by_cohort[cohort]
        need = max(min_streams, (len(members) + 1) // 2)
        refit_hits: List[str] = []
        novel_hits: List[str] = []
        for i in members:
            sig = signatures[i]
            horizon = sig.n_intervals - window
            if any(idx >= horizon for idx in sig.refit_indices):
                refit_hits.append(sig.stream_id)
            tail = sig.timeline[-window:]
            if tail:
                tail_novel = sum(1 for p in tail if p == NOVEL) / len(tail)
                if tail_novel >= novel_threshold:
                    novel_hits.append(sig.stream_id)
        if len(refit_hits) >= need:
            events.append({"cohort": cohort, "kind": "refit-wave",
                           "streams": sorted(refit_hits),
                           "window": window,
                           "share": len(refit_hits) / len(members)})
        if len(novel_hits) >= need:
            events.append({"cohort": cohort, "kind": "novel-burst",
                           "streams": sorted(novel_hits),
                           "window": window,
                           "share": len(novel_hits) / len(members)})
    return events


def analyze_signatures(
    signatures: Sequence[PhaseSignature],
    *,
    kmax: int = DEFAULT_COHORT_KMAX,
    seed: int = 0,
    matcher: Optional[CohortMatcher] = None,
    drift_window: int = DEFAULT_DRIFT_WINDOW,
    anomaly_threshold: float = DEFAULT_ANOMALY_THRESHOLD,
    novel_threshold: float = DEFAULT_NOVEL_THRESHOLD,
    include_signatures: bool = True,
) -> Dict[str, Any]:
    """The full fleet-analytics report as one JSON-ready dict."""
    signatures = list(signatures)
    labels, _centroids = cluster_signatures(
        signatures, kmax=kmax, seed=seed, matcher=matcher)
    vectors = [s.vector() for s in signatures]
    cohorts: List[Dict[str, Any]] = []
    by_cohort: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        by_cohort.setdefault(int(label), []).append(i)
    for cohort in sorted(by_cohort):
        members = by_cohort[cohort]
        center = np.mean([vectors[i] for i in members], axis=0)
        dists = [signature_distance(vectors[i], center) for i in members]
        cohorts.append({
            "cohort": cohort,
            "size": len(members),
            "streams": sorted(signatures[i].stream_id for i in members),
            "mean_distance": float(np.mean(dists)),
            "max_distance": float(np.max(dists)),
            "mean_transition_rate": float(np.mean(
                [signatures[i].transition_rate for i in members])),
            "mean_novel_share": float(np.mean(
                [signatures[i].novel_share for i in members])),
        })
    anomalies = flag_anomalies(signatures, labels,
                               threshold=anomaly_threshold)
    drift_events = detect_drift(signatures, labels, window=drift_window,
                                novel_threshold=novel_threshold)
    report: Dict[str, Any] = {
        "n_streams": len(signatures),
        "n_cohorts": len(by_cohort),
        "assignments": {s.stream_id: int(label)
                        for s, label in zip(signatures, labels)},
        "cohorts": cohorts,
        "anomalies": anomalies,
        "drift_events": drift_events,
    }
    if include_signatures:
        report["signatures"] = [s.to_obj() for s in signatures]
    return report


# ----------------------------------------------------------------------
# offline: a fleet run's per-worker archives
# ----------------------------------------------------------------------
def fleet_store_dirs(root) -> List[Path]:
    """Per-worker interval-store directories under a fleet root, sorted.

    Any ``worker-*/store`` directory counts — including those of
    workers later evicted from the ring, whose archives stay on disk
    precisely so this pass can still read them.
    """
    root = Path(root)
    out = []
    for worker_dir in sorted(root.glob("worker-*")):
        store_dir = worker_dir / layout.WORKER_STORE_DIRNAME
        if store_dir.is_dir():
            out.append(store_dir)
    return out


def analyze_fleet_dir(
    root,
    *,
    kmax: int = DEFAULT_COHORT_KMAX,
    seed: int = 0,
    warmup: int = 12,
    drift_window: int = DEFAULT_DRIFT_WINDOW,
    anomaly_threshold: float = DEFAULT_ANOMALY_THRESHOLD,
    novel_threshold: float = DEFAULT_NOVEL_THRESHOLD,
    include_signatures: bool = True,
) -> Dict[str, Any]:
    """Offline fleet analytics over a fleet root's per-worker stores.

    Walks ``worker-*/store`` under ``root``, replays every recorded
    stream through the streaming engine, and runs the same signature →
    cohort → anomaly/drift pipeline the live ``fleet_analytics`` verb
    runs — so an operator can reproduce (and window) a live report from
    the archives alone.  Streams too short to classify (all warmup) are
    reported in ``skipped`` rather than silently dropped.
    """
    store_dirs = fleet_store_dirs(root)
    if not store_dirs:
        raise ValidationError(
            f"no worker-*/{layout.WORKER_STORE_DIRNAME} directories under "
            f"{root} (was the fleet run with --archive-intervals?)")
    signatures: List[PhaseSignature] = []
    skipped: List[Dict[str, str]] = []
    for store_dir in store_dirs:
        worker_id = store_dir.parent.name[len("worker-"):]
        with open_store(str(store_dir)) as store:
            for stream_id in store.streams():
                try:
                    signatures.append(PhaseSignature.from_store(
                        store, stream_id, warmup=warmup,
                        worker_id=worker_id))
                except ReproError as exc:
                    skipped.append({"stream_id": stream_id,
                                    "worker_id": worker_id,
                                    "reason": str(exc)})
    report = analyze_signatures(
        signatures, kmax=kmax, seed=seed, drift_window=drift_window,
        anomaly_threshold=anomaly_threshold,
        novel_threshold=novel_threshold,
        include_signatures=include_signatures)
    report["root"] = str(root)
    report["stores"] = [str(p) for p in store_dirs]
    report["skipped"] = skipped
    return report
