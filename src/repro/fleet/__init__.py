"""Fleet-of-daemons: shard ``incprofd`` across worker processes.

One threaded ``incprofd`` caps classify throughput at a single
interpreter.  This package scales the profiling plane *out* instead of
up, shared-nothing:

- :mod:`repro.fleet.ring` — a consistent-hash ring with virtual nodes
  maps every ``stream_id`` to exactly one worker; membership changes
  move only the dead worker's streams.
- :mod:`repro.fleet.supervisor` — spawns N ``incprofd`` worker daemons
  as subprocesses (own checkpoint dir, model artifact, unix socket,
  metrics port each), monitors liveness over the existing ping
  machinery, restarts crashed workers, and evicts repeat offenders.
- :mod:`repro.fleet.router` — a thin front end speaking the existing
  wire protocol: routes ``hello``/``snapshot``/``bye`` by ring lookup
  (proxy- or redirect-mode), fans ``fleet-status``/``stats``/
  ``metrics``/``trace`` out across workers and merges the replies, and
  on worker death rebalances the ring and drives orphaned streams
  through checkpoint-restore + ``resume_from``.
- :mod:`repro.fleet.analytics` — cross-stream phase intelligence:
  per-stream :class:`PhaseSignature` extraction (live trackers or
  store replay), cohort clustering over signature vectors, anomaly
  flagging, and fleet-wide drift-event detection, merged at the router
  via the ``fleet_analytics`` control verb.

See ``docs/FLEET.md`` for the architecture and failure model, and
``docs/ANALYTICS.md`` for the analytics layer.
"""

from repro.fleet.analytics import (
    PhaseSignature,
    analyze_fleet_dir,
    analyze_signatures,
    cluster_signatures,
    detect_drift,
    flag_anomalies,
)
from repro.fleet.ring import HashRing
from repro.fleet.router import FleetRouter, RouterConfig
from repro.fleet.supervisor import (
    FleetConfig,
    WorkerHandle,
    WorkerSupervisor,
)

__all__ = [
    "FleetConfig",
    "FleetRouter",
    "HashRing",
    "PhaseSignature",
    "RouterConfig",
    "WorkerHandle",
    "WorkerSupervisor",
    "analyze_fleet_dir",
    "analyze_signatures",
    "cluster_signatures",
    "detect_drift",
    "flag_anomalies",
]
