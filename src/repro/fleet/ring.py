"""Consistent-hash ring: ``stream_id -> worker`` with virtual nodes.

The fleet's routing decision must be (1) deterministic across processes
— the router, the supervisor, and every worker evaluate the same ring
independently, so hashing cannot depend on ``PYTHONHASHSEED`` — and
(2) movement-minimal: when a worker dies, only *its* streams may change
owner, because every move costs a checkpoint-restore + client resume.

Both properties come from the classic construction: each worker owns
``virtual_nodes`` points on a 64-bit circle (BLAKE2b of
``"worker_id#replica"``), and a stream belongs to the first point at or
after the stream id's own hash, wrapping around.  Virtual nodes smooth
the per-worker load; 64 per worker keeps the imbalance within a few
percent at fleet sizes that fit one box.

Every membership change bumps ``generation``.  The generation travels in
``hello`` replies and ``ring-update`` controls so a worker can refuse
streams it no longer owns (``wrong-worker``) and a client can tell a
stale redirect from a current one.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import ValidationError

DEFAULT_VIRTUAL_NODES = 64


def _point(key: str) -> int:
    """A stable 64-bit position on the circle for ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Thread-safe consistent-hash ring over worker ids.

    Lookups are O(log(workers * virtual_nodes)); membership changes
    rebuild the sorted point list (fleets are tens of workers, not
    thousands — rebuild simplicity beats incremental bookkeeping).
    """

    def __init__(self, workers: Iterable[str] = (),
                 virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
                 generation: int = 0) -> None:
        if virtual_nodes < 1:
            raise ValidationError("need at least one virtual node per worker")
        self.virtual_nodes = virtual_nodes
        self.generation = generation
        self._lock = threading.Lock()
        self._workers: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for worker_id in workers:
            self._add_locked(worker_id)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _rebuild_locked(self) -> None:
        pairs: List[Tuple[int, str]] = []
        for worker_id in self._workers:
            for replica in range(self.virtual_nodes):
                pairs.append((_point(f"{worker_id}#{replica}"), worker_id))
        # Ties (astronomically unlikely) resolve by worker id so every
        # evaluator of the same membership agrees on every lookup.
        pairs.sort()
        self._points = [p for p, _ in pairs]
        self._owners = [w for _, w in pairs]

    def _add_locked(self, worker_id: str) -> None:
        if not worker_id:
            raise ValidationError("worker id must be non-empty")
        if worker_id in self._workers:
            raise ValidationError(f"worker {worker_id!r} is already on the ring")
        self._workers.append(worker_id)
        self._workers.sort()
        self._rebuild_locked()

    def add_worker(self, worker_id: str) -> int:
        """Add a worker; returns the new generation."""
        with self._lock:
            self._add_locked(worker_id)
            self.generation += 1
            return self.generation

    def remove_worker(self, worker_id: str) -> int:
        """Remove a worker; returns the new generation."""
        with self._lock:
            if worker_id not in self._workers:
                raise ValidationError(f"worker {worker_id!r} is not on the ring")
            self._workers.remove(worker_id)
            self._rebuild_locked()
            self.generation += 1
            return self.generation

    def members(self) -> List[str]:
        with self._lock:
            return list(self._workers)

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        with self._lock:
            return worker_id in self._workers

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(self, stream_id: str) -> str:
        """The worker owning ``stream_id`` (raises on an empty ring)."""
        with self._lock:
            if not self._points:
                raise ValidationError("ring has no workers")
            index = bisect.bisect_right(self._points, _point(stream_id))
            if index == len(self._points):
                index = 0  # wrap past the top of the circle
            return self._owners[index]

    def lookup_or_none(self, stream_id: str) -> Optional[str]:
        with self._lock:
            if not self._points:
                return None
        return self.lookup(stream_id)

    def assignments(self, stream_ids: Sequence[str]) -> Dict[str, str]:
        """``{stream_id: worker_id}`` for a batch of streams."""
        return {sid: self.lookup(sid) for sid in stream_ids}

    def load(self, stream_ids: Sequence[str]) -> Dict[str, int]:
        """Streams per worker (zero-filled for idle workers)."""
        counts = {worker_id: 0 for worker_id in self.members()}
        for sid in stream_ids:
            counts[self.lookup(sid)] += 1
        return counts

    # ------------------------------------------------------------------
    # wire / manifest form
    # ------------------------------------------------------------------
    def to_obj(self) -> Dict[str, Any]:
        """JSON-ready membership (what ``ring-update`` controls carry)."""
        with self._lock:
            return {
                "generation": self.generation,
                "virtual_nodes": self.virtual_nodes,
                "members": list(self._workers),
            }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "HashRing":
        try:
            members = [str(m) for m in obj["members"]]
            return cls(members,
                       virtual_nodes=int(obj.get(
                           "virtual_nodes", DEFAULT_VIRTUAL_NODES)),
                       generation=int(obj.get("generation", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad ring object: {exc!r}") from exc
