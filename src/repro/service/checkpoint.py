"""Crash-safe state for ``incprofd``.

The daemon's working set — the stream registry, each stream's online
tracker (trained arrays *and* classification history/differencer), and
the fleet aggregates — normally lives only in memory, so a crash
discards everything a fleet has streamed.  This module checkpoints that
state to disk on the housekeeping cadence:

- One checkpoint file (magic ``IPCKP``), same checksummed envelope as
  phase-model artifacts, written atomically (temp file + rename) so a
  crash *during* a checkpoint leaves the previous one intact.
- Per stream the checkpoint records the resume anchor ``processed_seq``
  — the highest sequence number the worker pool actually consumed — and
  counters clamped to it.  Snapshots that were admitted but still queued
  at the crash are deliberately *not* recorded: the publisher's
  ``hello(resume=True)`` handshake re-sends from ``processed_seq + 1``,
  so nothing is classified twice and at most one checkpoint interval of
  progress is repeated.
- A corrupt or truncated checkpoint is quarantined (renamed aside with a
  ``.quarantined-N`` suffix) rather than deleted, and the daemon starts
  fresh; the bad bytes stay available for inspection.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.incremental import AdaptiveConfig
from repro.core.model_io import pack_artifact, read_artifact_payload
from repro.core.online import OnlinePhaseTracker
from repro.service.registry import StreamRegistry, StreamState
from repro.store import layout
from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import CheckpointError, ValidationError

CHECKPOINT_MAGIC = b"IPCKP"
CHECKPOINT_SCHEMA = 1
# On-disk names come from the shared layout module (the single source of
# truth for every IncProf artifact name); re-exported here for callers
# that historically imported them from this module.
CHECKPOINT_FILENAME = layout.CHECKPOINT_FILENAME
MANIFEST_FILENAME = layout.FLEET_MANIFEST_FILENAME


def worker_checkpoint_dir(root: Union[str, Path], worker_id: str) -> Path:
    """The per-worker durable-state directory under a fleet root.

    Shared-nothing by construction: each worker checkpoints into its own
    subdirectory, so concurrent workers never contend on one checkpoint
    file and the supervisor can read a *dead* worker's state to migrate
    its streams without touching the survivors'.
    """
    return Path(root) / layout.worker_dirname(worker_id)


# ----------------------------------------------------------------------
# stream state <-> JSON
# ----------------------------------------------------------------------
def _stream_to_obj(state: StreamState) -> Dict[str, Any]:
    """One stream's durable state, consistent as of ``processed_seq``.

    ``work_lock`` is held so the tracker's differencer and history are
    never captured mid-batch; counters are clamped to processed work
    because queued-but-unclassified snapshots will be re-sent on resume.
    """
    with state.work_lock:
        with state.lock:
            obj: Dict[str, Any] = {
                "stream_id": state.stream_id,
                "app": state.app,
                "rank": state.rank,
                "last_seq": state.processed_seq,
                "processed_seq": state.processed_seq,
                "seq_gaps": state.seq_gaps,
                "enqueued": state.processed,
                "processed": state.processed,
                "novel": state.novel,
                "dropped_oldest": state.dropped_oldest,
                "rejected": state.rejected,
                "heartbeats": state.heartbeats,
                "refits": state.refits,
            }
        if state.tracker is not None:
            obj["tracker"] = state.tracker.runtime_state()
    return obj


def _stream_from_obj(
    obj: Dict[str, Any],
    template: Optional[OnlinePhaseTracker],
    adaptive: Optional[AdaptiveConfig] = None,
) -> StreamState:
    try:
        state = StreamState(
            stream_id=str(obj["stream_id"]),
            app=str(obj.get("app", "")),
            rank=int(obj.get("rank", 0)),
            now=0.0,  # adopt() stamps the registry clock
        )
        state.last_seq = int(obj.get("last_seq", -1))
        state.processed_seq = int(obj.get("processed_seq", -1))
        state.seq_gaps = int(obj.get("seq_gaps", 0))
        state.enqueued = int(obj.get("enqueued", 0))
        state.processed = int(obj.get("processed", 0))
        state.novel = int(obj.get("novel", 0))
        state.dropped_oldest = int(obj.get("dropped_oldest", 0))
        state.rejected = int(obj.get("rejected", 0))
        state.heartbeats = int(obj.get("heartbeats", 0))
        state.refits = int(obj.get("refits", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"bad stream record in checkpoint: {exc!r}") from exc
    tracker_state = obj.get("tracker")
    if tracker_state is not None and template is not None:
        tracker = template.spawn(zero_start=True, adaptive=adaptive)
        try:
            tracker.restore_runtime_state(tracker_state)
        except ValidationError as exc:
            raise CheckpointError(str(exc)) from exc
        state.tracker = tracker
    return state


def snapshot_registry(registry: StreamRegistry) -> Dict[str, Any]:
    """The registry's durable state as a JSON-ready checkpoint payload."""
    return {
        "kind": "incprofd-checkpoint",
        "streams": [_stream_to_obj(s) for s in registry.active()],
        "finished": registry.finished_rows(),
        "registered": registry.registered,
        "expired": registry.expired,
        "finished_evicted": registry.finished_evicted,
    }


def restore_registry(
    registry: StreamRegistry,
    payload: Dict[str, Any],
    template: Optional[OnlinePhaseTracker],
    adaptive: Optional[AdaptiveConfig] = None,
) -> List[StreamState]:
    """Install a checkpoint payload into ``registry``; return the streams.

    ``adaptive`` re-arms online refitting on the restored trackers (the
    checkpointed refit window, drift state, and model version all ride
    in the tracker's runtime state).
    """
    if payload.get("kind") != "incprofd-checkpoint":
        raise CheckpointError(
            f"artifact kind {payload.get('kind')!r} is not an incprofd checkpoint")
    streams = payload.get("streams", [])
    if not isinstance(streams, list):
        raise CheckpointError("checkpoint 'streams' must be a list")
    restored = [_stream_from_obj(obj, template, adaptive) for obj in streams]
    finished = payload.get("finished", [])
    registry.restore_finished(
        [row for row in finished if isinstance(row, dict)],
        registered=int(payload.get("registered", 0)),
        expired=int(payload.get("expired", 0)),
        finished_evicted=int(payload.get("finished_evicted", 0)),
    )
    for state in restored:
        registry.adopt(state)
    return restored


# ----------------------------------------------------------------------
# fleet topology manifest
# ----------------------------------------------------------------------
class FleetManifest:
    """The fleet root's durable topology record (plain JSON, atomic).

    Records the ring membership and where each worker keeps its state
    (checkpoint directory, endpoint, metrics port).  A restarting
    supervisor reads it to find orphaned per-worker checkpoints; it is
    plain JSON — not the checksummed artifact envelope — because humans
    and shell tools are expected to read it during incident response.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / MANIFEST_FILENAME

    def write(self, ring_obj: Dict[str, Any],
              workers: Dict[str, Dict[str, Any]]) -> Path:
        obj = {"kind": "incprofd-fleet-manifest",
               "ring": ring_obj, "workers": workers}
        blob = json.dumps(obj, indent=2, sort_keys=True).encode("utf-8")
        return atomic_write_bytes(self.path, blob + b"\n")

    def load(self) -> Optional[Dict[str, Any]]:
        """The manifest payload, or ``None`` when absent; bad JSON raises."""
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointError(
                f"cannot read fleet manifest {self.path}: {exc}") from exc
        try:
            obj = json.loads(blob)
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt fleet manifest {self.path}: {exc}") from exc
        if (not isinstance(obj, dict)
                or obj.get("kind") != "incprofd-fleet-manifest"):
            raise CheckpointError(
                f"{self.path} is not an incprofd fleet manifest")
        return obj


# ----------------------------------------------------------------------
# the on-disk manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """Owns one checkpoint file: periodic writes, recovery, quarantine.

    ``keep_history`` > 0 additionally rotates every write into a
    versioned ``incprofd-NNNNNNNN.ipckp`` sibling and prunes the series
    (and any versioned ``.ipm`` model artifacts in the same directory)
    down to the newest ``keep_history`` per family — a bounded undo
    buffer: when the latest checkpoint captures a poisoned model, the
    previous epoch is still on disk.
    """

    def __init__(self, directory: Union[str, Path],
                 interval: float = 2.0, keep_history: int = 0) -> None:
        if interval <= 0:
            raise ValidationError("checkpoint interval must be positive")
        if keep_history < 0:
            raise ValidationError("keep_history must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / CHECKPOINT_FILENAME
        self.interval = interval
        self.keep_history = keep_history
        self.writes = 0
        self.quarantined: List[Path] = []
        self._last_write = 0.0
        # Resume the rotation serial past any survivors of an earlier
        # incarnation so history never overwrites itself.
        self._serial = 0
        for entry in self.directory.glob(f"*{layout.CHECKPOINT_SUFFIX}"):
            match = layout.VERSIONED_CHECKPOINT_RE.match(entry.name)
            if match is not None:
                self._serial = max(self._serial, int(match.group("version")))

    # -- writing -------------------------------------------------------
    def write(self, payload: Dict[str, Any]) -> Path:
        """Atomically persist one checkpoint payload."""
        blob = pack_artifact(payload, CHECKPOINT_MAGIC, CHECKPOINT_SCHEMA)
        out = atomic_write_bytes(self.path, blob)
        if self.keep_history > 0:
            self._serial += 1
            atomic_write_bytes(
                self.directory / layout.versioned_checkpoint_name(self._serial),
                blob)
            self.gc()
        self.writes += 1
        self._last_write = time.monotonic()
        return out

    def gc(self, keep: Optional[int] = None) -> List[Path]:
        """Prune versioned ``.ipckp``/``.ipm`` history in this directory."""
        keep = self.keep_history if keep is None else keep
        if keep < 1:
            return []
        return layout.gc_versioned(self.directory, keep=keep)

    def due(self, now: Optional[float] = None) -> bool:
        """True when the checkpoint cadence has elapsed."""
        now = time.monotonic() if now is None else now
        return now - self._last_write >= self.interval

    # -- recovery ------------------------------------------------------
    def load(self) -> Optional[Dict[str, Any]]:
        """Read and validate the checkpoint payload.

        Returns ``None`` when no checkpoint exists; raises
        :class:`CheckpointError` when one exists but is unreadable (the
        caller decides whether to quarantine).
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        return read_artifact_payload(blob, CHECKPOINT_MAGIC, CHECKPOINT_SCHEMA,
                                     "checkpoint", exc_type=CheckpointError)

    def quarantine(self) -> Optional[Path]:
        """Move a bad checkpoint aside (never delete evidence)."""
        if not self.path.exists():
            return None
        n = 0
        while True:
            target = self.path.with_name(f"{self.path.name}.quarantined-{n}")
            if not target.exists():
                break
            n += 1
        os.replace(self.path, target)
        self.quarantined.append(target)
        return target

    def load_or_quarantine(self) -> Tuple[Optional[Dict[str, Any]], Optional[Path]]:
        """Recovery entry point: ``(payload, quarantined_path)``.

        A valid checkpoint returns ``(payload, None)``; a missing one
        ``(None, None)``; a corrupt one is quarantined and returns
        ``(None, path-it-was-moved-to)`` so the daemon can start fresh
        while reporting what happened.
        """
        try:
            return self.load(), None
        except CheckpointError:
            return None, self.quarantine()
