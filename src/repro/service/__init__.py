"""``incprofd``: the fleet-scale phase-monitoring service.

Offline discovery trains an :class:`~repro.core.online.OnlinePhaseTracker`;
this package serves it: a long-running daemon ingests gmon snapshot and
heartbeat streams from many concurrent publishers, classifies every
interval online, and exposes aggregated fleet state (phase occupancy,
novelty alerts, per-stream lag) plus its own self-metrics.

See ``docs/SERVICE.md`` for the wire protocol and deployment sketch.
"""

from repro.service.checkpoint import (
    CheckpointManager,
    restore_registry,
    snapshot_registry,
)
from repro.service.client import (
    NO_RETRY,
    LoadResult,
    PhaseClient,
    PublishReport,
    RetryPolicy,
    ScenarioLoadGenerator,
    SyntheticLoadGenerator,
    publish_samples,
    publish_session,
)
from repro.service.dashboard import DashboardServer, render_dashboard_html
from repro.service.exposition import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    parse_prometheus,
    render_prometheus,
)
from repro.service.faults import (
    FaultAction,
    FaultInjector,
    FlakyEndpoint,
)
from repro.service.metrics import LatencyWindow, ServiceMetrics
from repro.service.protocol import (
    BINARY_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Reply,
    SnapshotMsg,
    decode_message,
    encode_message,
    negotiate,
    read_message,
    write_message,
)
from repro.service.registry import StreamRegistry, StreamState
from repro.service.selfekg import SELF_STAGES, SelfInstrument
from repro.service.tracing import (
    TRACE_STAGES,
    TraceRecord,
    TraceStore,
    new_trace_id,
)
from repro.service.server import (
    BACKPRESSURE_POLICIES,
    BoundedStreamQueue,
    PhaseMonitorServer,
    ServerConfig,
    serve,
)

__all__ = [
    "BINARY_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "BACKPRESSURE_POLICIES",
    "CONTENT_TYPE",
    "DashboardServer",
    "NO_RETRY",
    "SELF_STAGES",
    "TRACE_STAGES",
    "BoundedStreamQueue",
    "Bye",
    "CheckpointManager",
    "Control",
    "Endpoint",
    "FaultAction",
    "FaultInjector",
    "FlakyEndpoint",
    "Hello",
    "HeartbeatMsg",
    "LatencyWindow",
    "LoadResult",
    "MetricsHTTPServer",
    "PhaseClient",
    "PhaseMonitorServer",
    "PublishReport",
    "Reply",
    "RetryPolicy",
    "SelfInstrument",
    "ServerConfig",
    "ServiceMetrics",
    "SnapshotMsg",
    "StreamRegistry",
    "StreamState",
    "ScenarioLoadGenerator",
    "SyntheticLoadGenerator",
    "TraceRecord",
    "TraceStore",
    "decode_message",
    "encode_message",
    "negotiate",
    "new_trace_id",
    "parse_prometheus",
    "publish_samples",
    "publish_session",
    "read_message",
    "render_dashboard_html",
    "render_prometheus",
    "restore_registry",
    "serve",
    "snapshot_registry",
    "write_message",
]
