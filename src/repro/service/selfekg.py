"""The daemon dogfooding its own heartbeat API.

The paper's premise is cheap always-on visibility; ``incprofd`` was the
one process in the fleet without it.  This module instruments the
daemon's own pipeline with the repo's AppEKG runtime — one heartbeat
site per pipeline stage, accumulated per collection interval and emitted
through the same LDMS-style sink application heartbeats use — so
IncProf's phase analysis can be run *on incprofd* itself (export the
records with :class:`~repro.heartbeat.output.CSVSink`, feed them to
:func:`~repro.heartbeat.analysis.phase_assignment`).

Self-heartbeat records carry ``rank == SELF_RANK`` (-1) so fleet tooling
can separate the daemon's own telemetry from application streams sharing
the transport.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.heartbeat.accumulator import HeartbeatRecord, Sink, merge_records
from repro.heartbeat.api import AppEKG

#: The daemon's pipeline stages, each one heartbeat site (id = index+1).
SELF_STAGES = ("ingest", "difference", "classify", "aggregate")
SELF_STAGE_IDS: Dict[str, int] = {name: i + 1
                                  for i, name in enumerate(SELF_STAGES)}
SELF_STAGE_LABELS: Dict[int, str] = {i: name
                                     for name, i in SELF_STAGE_IDS.items()}

#: Rank stamped on self-heartbeat records (no application rank is ever
#: negative, so the daemon's own telemetry is unambiguous on the wire).
SELF_RANK = -1


class SelfInstrument:
    """Heartbeat instrumentation of the daemon's own pipeline.

    Wraps one :class:`AppEKG` runtime behind a lock so reader threads,
    the worker pool, and housekeeping can all report stage work.  Stage
    completions arrive with a measured *duration* rather than live
    begin/end calls — many workers run the same stage concurrently and
    AppEKG keeps one begin-slot per ID — so each completion is replayed
    as a ``begin/end`` pair at a monotonically non-decreasing end time
    (the accumulator's ordering contract).
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        keep_records: bool = True,
    ) -> None:
        self._clock = clock
        self._origin = clock()
        self._lock = threading.Lock()
        self._last_end = 0.0
        self._kept: List[HeartbeatRecord] = []

        def tee(record: HeartbeatRecord) -> None:
            if keep_records:
                self._kept.append(record)
            if sink is not None:
                sink(record)

        self._ekg = AppEKG(num_heartbeats=len(SELF_STAGES), rank=SELF_RANK,
                           interval=interval, sink=tee,
                           time_source=self._now)
        self.events = 0

    def _now(self) -> float:
        return self._clock() - self._origin

    # ------------------------------------------------------------------
    # recording (any thread)
    # ------------------------------------------------------------------
    def record(self, stage: str, duration: float) -> None:
        """One completed unit of ``stage`` work taking ``duration`` seconds."""
        hb_id = SELF_STAGE_IDS[stage]
        duration = max(0.0, duration)
        with self._lock:
            # End times must be non-decreasing for the accumulator; the
            # lock serializes completions, the clamp orders them.
            end = max(self._now(), self._last_end)
            self._last_end = end
            self._ekg.begin_heartbeat(hb_id, at=end - duration)
            self._ekg.end_heartbeat(hb_id, at=end)
            self.events += 1

    def tick(self) -> None:
        """Housekeeping flush: deliver intervals completed by now."""
        with self._lock:
            now = max(self._now(), self._last_end)
            self._last_end = now
            self._ekg.flush(now)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[HeartbeatRecord]:
        """Flushed per-interval records kept for export/analysis."""
        with self._lock:
            return list(self._kept)

    def stage_summary(self) -> Dict[str, Any]:
        """Lifetime per-stage totals from the flushed records.

        Uses the None-aware min-merge: an interval that never observed a
        minimum cannot drag a stage's lifetime minimum to zero.
        """
        with self._lock:
            rows = list(self._kept)
        per_stage = merge_records(
            [HeartbeatRecord(rank=r.rank, hb_id=r.hb_id, interval_index=0,
                             time=r.time, count=r.count,
                             avg_duration=r.avg_duration,
                             min_duration=r.min_duration,
                             max_duration=r.max_duration)
             for r in rows])
        stages: Dict[str, Dict[str, float]] = {}
        for row in per_stage:
            stage = SELF_STAGE_LABELS.get(row.hb_id, f"hb{row.hb_id}")
            stages[stage] = {
                "count": row.count,
                "seconds": row.duration_sum,
                "avg": row.avg_duration,
                # None (JSON null) when no interval observed a minimum —
                # never 0.0, which would read as an observed instant beat.
                "min": row.min_duration,
                "max": row.max_duration,
            }
        return {"events": self.events,
                "intervals": len({r.interval_index for r in rows}),
                "stages": stages}
