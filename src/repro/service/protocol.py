"""The ``incprofd`` wire protocol.

Every message is one *frame*: a 4-byte big-endian payload length followed
by a UTF-8 JSON object.  The object always carries ``"v"`` (protocol
version) and ``"type"`` (message kind); the remaining keys are the typed
message's fields.  Gmon snapshots travel inside frames as base64 of the
existing binary gmon serialization, so the service ingest path exercises
exactly the same corrupt/truncated-file checks as the offline loader.

Message kinds
-------------
``hello``      stream registration (stream id, app name, rank)
``snapshot``   one cumulative gmon dump with a per-stream sequence number
               and an optional publisher-minted trace id
``heartbeat``  a batch of AppEKG heartbeat rows
``control``    service commands (``ping``, ``stats``, ``metrics``,
               ``trace``, ``fleet-status``, ``shutdown``)
``reply``      server response: ok/error plus a data payload
``bye``        orderly stream shutdown

Anything malformed — short frame, oversized frame, broken JSON, unknown
type, missing field, undecodable snapshot — raises
:class:`~repro.util.errors.ProtocolError`; a clean EOF between frames
returns ``None`` from :func:`read_message`.
"""

from __future__ import annotations

import base64
import binascii
import json
import socket
import struct
from dataclasses import asdict, dataclass, field
from typing import Any, BinaryIO, Dict, List, Optional

from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.util.errors import FormatError, ProtocolError

PROTOCOL_VERSION = 1

#: Hard cap on one frame's JSON payload; anything larger is rejected
#: before allocation (a malicious or corrupt length prefix must not make
#: the server try to buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# typed messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello:
    """Register a stream (one per rank/node) with the service.

    With ``resume`` the hello is *idempotent*: if the stream already
    exists (live, or restored from a checkpoint) the server re-attaches
    to it instead of rejecting a duplicate, and the reply's
    ``resume_from`` tells the publisher the next sequence number the
    server wants — the reconnect handshake after a connection loss or a
    daemon restart.
    """

    stream_id: str
    app: str = ""
    rank: int = 0
    resume: bool = False

    TYPE = "hello"


@dataclass(frozen=True)
class SnapshotMsg:
    """One cumulative gmon dump from a stream.

    ``seq`` is the publisher's interval index; the server uses it to
    detect gaps and report per-stream lag.  ``trace_id`` (optional)
    follows the submission through the service pipeline — queue, worker
    pool, aggregation — and its per-stage span timings are queryable via
    the ``trace`` control request.  An empty trace id means "untraced";
    the server mints one on admission so every interval is traceable.
    """

    stream_id: str
    seq: int
    gmon: GmonData
    trace_id: str = ""

    TYPE = "snapshot"


@dataclass(frozen=True)
class HeartbeatMsg:
    """A batch of AppEKG heartbeat rows from one stream."""

    stream_id: str
    records: List[HeartbeatRecord] = field(default_factory=list)

    TYPE = "heartbeat"


@dataclass(frozen=True)
class Control:
    """A service command (``ping``/``stats``/``fleet-status``/``shutdown``)."""

    command: str
    args: Dict[str, Any] = field(default_factory=dict)

    TYPE = "control"


@dataclass(frozen=True)
class Reply:
    """Server response to any request."""

    ok: bool
    error: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    TYPE = "reply"


@dataclass(frozen=True)
class Bye:
    """Orderly end-of-stream."""

    stream_id: str = ""

    TYPE = "bye"


Message = Any  # union of the dataclasses above


# ----------------------------------------------------------------------
# wire <-> message
# ----------------------------------------------------------------------
def _gmon_to_wire(gmon: GmonData) -> str:
    return base64.b64encode(dumps_gmon(gmon)).decode("ascii")


def _gmon_from_wire(blob: str) -> GmonData:
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ProtocolError(f"snapshot payload is not valid base64: {exc}") from exc
    try:
        return loads_gmon(raw)
    except FormatError as exc:
        raise ProtocolError(f"snapshot payload is not a valid gmon: {exc}") from exc


def _record_to_wire(record: HeartbeatRecord) -> Dict[str, Any]:
    return asdict(record)

_RECORD_FIELDS = ("rank", "hb_id", "interval_index", "time", "count", "avg_duration")


def _record_from_wire(obj: Any) -> HeartbeatRecord:
    if not isinstance(obj, dict):
        raise ProtocolError("heartbeat record must be an object")
    try:
        # A missing/null minimum stays None ("not observed"), never 0.0:
        # a 0.0 default would survive any downstream min-merge as if a
        # genuine 0-second beat had been measured.
        raw_min = obj.get("min_duration")
        return HeartbeatRecord(
            rank=int(obj["rank"]),
            hb_id=int(obj["hb_id"]),
            interval_index=int(obj["interval_index"]),
            time=float(obj["time"]),
            count=float(obj["count"]),
            avg_duration=float(obj["avg_duration"]),
            min_duration=None if raw_min is None else float(raw_min),
            max_duration=float(obj.get("max_duration", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad heartbeat record: {exc!r}") from exc


def message_to_obj(msg: Message) -> Dict[str, Any]:
    """Lower a typed message to its wire JSON object."""
    obj: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": msg.TYPE}
    if isinstance(msg, Hello):
        obj.update(stream_id=msg.stream_id, app=msg.app, rank=msg.rank,
                   resume=msg.resume)
    elif isinstance(msg, SnapshotMsg):
        obj.update(stream_id=msg.stream_id, seq=msg.seq, gmon=_gmon_to_wire(msg.gmon))
        if msg.trace_id:
            obj["trace"] = msg.trace_id
    elif isinstance(msg, HeartbeatMsg):
        obj.update(stream_id=msg.stream_id,
                   records=[_record_to_wire(r) for r in msg.records])
    elif isinstance(msg, Control):
        obj.update(command=msg.command, args=dict(msg.args))
    elif isinstance(msg, Reply):
        obj.update(ok=msg.ok, error=msg.error, data=dict(msg.data))
    elif isinstance(msg, Bye):
        obj.update(stream_id=msg.stream_id)
    else:
        raise ProtocolError(f"cannot encode {type(msg).__name__}")
    return obj


def _require(obj: Dict[str, Any], key: str, kind: type) -> Any:
    if key not in obj:
        raise ProtocolError(f"message missing field {key!r}")
    value = obj[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise ProtocolError(f"field {key!r} must be {kind.__name__}")
    return value


def message_from_obj(obj: Any) -> Message:
    """Raise a typed message from a decoded wire JSON object."""
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    version = _require(obj, "v", int)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    kind = _require(obj, "type", str)
    if kind == Hello.TYPE:
        return Hello(stream_id=_require(obj, "stream_id", str),
                     app=str(obj.get("app", "")), rank=int(obj.get("rank", 0)),
                     resume=bool(obj.get("resume", False)))
    if kind == SnapshotMsg.TYPE:
        return SnapshotMsg(stream_id=_require(obj, "stream_id", str),
                           seq=_require(obj, "seq", int),
                           gmon=_gmon_from_wire(_require(obj, "gmon", str)),
                           trace_id=str(obj.get("trace", "") or ""))
    if kind == HeartbeatMsg.TYPE:
        records = _require(obj, "records", list)
        return HeartbeatMsg(stream_id=_require(obj, "stream_id", str),
                            records=[_record_from_wire(r) for r in records])
    if kind == Control.TYPE:
        return Control(command=_require(obj, "command", str),
                       args=dict(obj.get("args") or {}))
    if kind == Reply.TYPE:
        return Reply(ok=_require(obj, "ok", bool), error=str(obj.get("error", "")),
                     data=dict(obj.get("data") or {}))
    if kind == Bye.TYPE:
        return Bye(stream_id=str(obj.get("stream_id", "")))
    raise ProtocolError(f"unknown message type {kind!r}")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_message(msg: Message) -> bytes:
    """Serialize one message to a length-prefixed frame."""
    payload = json.dumps(message_to_obj(msg), separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(payload)) + payload


def decode_message(frame: bytes) -> Message:
    """Inverse of :func:`encode_message` (whole frame, prefix included)."""
    if len(frame) < _LEN.size:
        raise ProtocolError("frame shorter than its length prefix")
    (length,) = _LEN.unpack(frame[:_LEN.size])
    payload = frame[_LEN.size:]
    if len(payload) != length:
        raise ProtocolError(f"frame length prefix says {length} bytes, "
                            f"got {len(payload)}")
    return _decode_payload(payload)


def _decode_payload(payload: bytes) -> Message:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    return message_from_obj(obj)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame's payload bytes; ``None`` on clean EOF between frames.

    Framing errors (short prefix, mid-frame EOF, oversized length) raise
    :class:`ProtocolError` and mean the byte stream has lost sync — the
    connection cannot be recovered.  Payload-level errors (bad JSON, bad
    snapshot) are recoverable: the next frame is still readable.
    """
    prefix = stream.read(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolError("connection closed mid-frame (short length prefix)")
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ProtocolError(f"connection closed mid-frame "
                                f"({len(payload)}/{length} payload bytes)")
        payload += chunk
    return payload


def decode_payload(payload: bytes) -> Message:
    """Decode one frame's payload into a typed message."""
    return _decode_payload(payload)


def read_message(stream: BinaryIO) -> Optional[Message]:
    """Read one framed message; ``None`` on clean EOF between frames."""
    payload = read_frame(stream)
    if payload is None:
        return None
    return _decode_payload(payload)


def write_message(stream: BinaryIO, msg: Message) -> None:
    """Frame and write one message."""
    stream.write(encode_message(msg))
    stream.flush()


# ----------------------------------------------------------------------
# fleet routing replies
# ----------------------------------------------------------------------
#: Reply ``data.code`` values that mean "re-route, don't fail": the
#: request was NOT processed and may safely be resent to the right
#: worker (or back through the router's home endpoint).
ROUTE_REDIRECT = "redirect"
ROUTE_WRONG_WORKER = "wrong-worker"
ROUTE_UNAVAILABLE = "worker-unavailable"
ROUTING_CODES = (ROUTE_REDIRECT, ROUTE_WRONG_WORKER, ROUTE_UNAVAILABLE)


@dataclass(frozen=True)
class RoutingDirective:
    """A parsed routing reply: where the request should go instead.

    ``endpoint`` is None when the replier knows the owner's identity but
    not its address (a worker after a rebalance) — the client should
    then fall back to its home (router) endpoint and re-resolve.
    """

    code: str
    worker_id: str = ""
    endpoint: Optional["Endpoint"] = None
    ring_generation: int = 0


def redirect_reply(endpoint: "Endpoint", worker_id: str,
                   ring_generation: int) -> "Reply":
    """A router's redirect-mode answer: dial the owning worker directly."""
    return Reply(ok=False,
                 error=f"stream is served by worker {worker_id!r}",
                 data={"code": ROUTE_REDIRECT, "worker_id": worker_id,
                       "endpoint": str(endpoint),
                       "ring_generation": ring_generation})


def wrong_worker_reply(owner: str, worker_id: str,
                       ring_generation: int) -> "Reply":
    """A worker's refusal: the current ring assigns this stream elsewhere."""
    return Reply(ok=False,
                 error=f"worker {worker_id!r} does not own this stream "
                       f"(ring generation {ring_generation} says "
                       f"{owner!r} does)",
                 data={"code": ROUTE_WRONG_WORKER, "worker_id": owner,
                       "ring_generation": ring_generation})


def worker_unavailable_reply(worker_id: str, cause: str) -> "Reply":
    """A router's answer when the owning worker cannot be reached."""
    return Reply(ok=False,
                 error=f"worker {worker_id!r} is unavailable: {cause}",
                 data={"code": ROUTE_UNAVAILABLE, "worker_id": worker_id})


def routing_directive(reply: "Reply") -> Optional[RoutingDirective]:
    """Parse a routing reply, or ``None`` for any non-routing reply."""
    if reply.ok:
        return None
    code = str(reply.data.get("code", ""))
    if code not in ROUTING_CODES:
        return None
    endpoint = None
    spec = reply.data.get("endpoint")
    if spec:
        try:
            endpoint = Endpoint.parse(str(spec))
        except ProtocolError:
            endpoint = None  # a malformed hint is no hint
    return RoutingDirective(
        code=code,
        worker_id=str(reply.data.get("worker_id", "")),
        endpoint=endpoint,
        ring_generation=int(reply.data.get("ring_generation", 0) or 0))


# ----------------------------------------------------------------------
# addressing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """Where ``incprofd`` listens: TCP (``host:port``) or a Unix socket."""

    kind: str  # "tcp" | "unix"
    host: str = "127.0.0.1"
    port: int = 0
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("tcp", "unix"):
            raise ProtocolError(f"unknown endpoint kind {self.kind!r}")
        if self.kind == "unix" and not self.path:
            raise ProtocolError("unix endpoint needs a socket path")

    @classmethod
    def tcp(cls, host: str = "127.0.0.1", port: int = 0) -> "Endpoint":
        return cls(kind="tcp", host=host, port=port)

    @classmethod
    def unix(cls, path: str) -> "Endpoint":
        return cls(kind="unix", path=path)

    @classmethod
    def parse(cls, spec: str) -> "Endpoint":
        """``host:port`` or ``unix:/path/to.sock``."""
        if spec.startswith("unix:"):
            return cls.unix(spec[len("unix:"):])
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise ProtocolError(f"endpoint spec {spec!r} is not host:port or unix:PATH")
        return cls.tcp(host or "127.0.0.1", int(port))

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a client socket to this endpoint."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.path)
        else:
            sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.settimeout(None)
        return sock

    def __str__(self) -> str:
        return f"unix:{self.path}" if self.kind == "unix" else f"{self.host}:{self.port}"
