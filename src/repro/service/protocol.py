"""The ``incprofd`` wire protocol.

Every message is one *frame*: a 4-byte big-endian payload length followed
by a payload encoded by one of two registered codecs.

Protocol v1 (JSON) payloads are UTF-8 JSON objects.  The object always
carries ``"v"`` (protocol version) and ``"type"`` (message kind); the
remaining keys are the typed message's fields.  Gmon snapshots travel
inside frames as base64 of the existing binary gmon serialization, so
the service ingest path exercises exactly the same corrupt/truncated-file
checks as the offline loader.

Protocol v2 (binary) payloads start with a NUL byte — never a valid JSON
start — so both codecs share one byte stream and a receiver dispatches
per frame without any out-of-band state.  v2 frames a snapshot as a
struct-packed header plus the *raw* gmon serialization (no base64, no
JSON re-encode); the gmon bytes are carved out of the received frame
zero-copy with ``memoryview``.  Low-rate kinds (hello, control, replies,
heartbeats, bye) keep riding on JSON even at v2.  A client offers its
codecs in ``hello.protocols``; the server answers with the negotiated
version in the reply's ``protocol`` field.  Peers that predate v2 ignore
both keys, so mixed-version pairs settle on v1 automatically.

Message kinds
-------------
``hello``      stream registration (stream id, app name, rank)
``snapshot``   one cumulative gmon dump with a per-stream sequence number
               and an optional publisher-minted trace id
``heartbeat``  a batch of AppEKG heartbeat rows
``control``    service commands (``ping``, ``stats``, ``metrics``,
               ``trace``, ``fleet-status``, ``shutdown``)
``reply``      server response: ok/error plus a data payload
``bye``        orderly stream shutdown

Anything malformed — short frame, oversized frame, broken JSON, unknown
type, missing field, undecodable snapshot — raises
:class:`~repro.util.errors.ProtocolError`; a clean EOF between frames
returns ``None`` from :func:`read_message`.
"""

from __future__ import annotations

import base64
import binascii
import json
import socket
import struct
from dataclasses import asdict, dataclass, field
from typing import Any, BinaryIO, Dict, Iterable, List, Optional, Tuple, Union

from repro.gprof.gmon import GmonBlob, GmonData, dumps_gmon, loads_gmon
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.util.errors import FormatError, ProtocolError

PROTOCOL_VERSION = 1
BINARY_PROTOCOL_VERSION = 2
#: Codec versions this build can speak, lowest first.  v1 is the floor
#: every peer understands; anything newer is opt-in via negotiation.
SUPPORTED_PROTOCOLS = (PROTOCOL_VERSION, BINARY_PROTOCOL_VERSION)

#: Hard cap on one frame's JSON payload; anything larger is rejected
#: before allocation (a malicious or corrupt length prefix must not make
#: the server try to buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# typed messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello:
    """Register a stream (one per rank/node) with the service.

    With ``resume`` the hello is *idempotent*: if the stream already
    exists (live, or restored from a checkpoint) the server re-attaches
    to it instead of rejecting a duplicate, and the reply's
    ``resume_from`` tells the publisher the next sequence number the
    server wants — the reconnect handshake after a connection loss or a
    daemon restart.
    """

    stream_id: str
    app: str = ""
    rank: int = 0
    resume: bool = False
    #: Codec versions the publisher can speak.  Defaults to v1 only, so
    #: a message minted by (or parsed from) an old peer stays equal to
    #: what that peer meant.  The server picks the highest version both
    #: sides support and echoes it in the hello reply's ``protocol``.
    protocols: Tuple[int, ...] = (PROTOCOL_VERSION,)

    TYPE = "hello"


@dataclass(frozen=True)
class SnapshotMsg:
    """One cumulative gmon dump from a stream.

    ``seq`` is the publisher's interval index; the server uses it to
    detect gaps and report per-stream lag.  ``trace_id`` (optional)
    follows the submission through the service pipeline — queue, worker
    pool, aggregation — and its per-stage span timings are queryable via
    the ``trace`` control request.  An empty trace id means "untraced";
    the server mints one on admission so every interval is traceable.

    ``gmon`` is normally a parsed :class:`GmonData`; it may instead be a
    :class:`GmonBlob` — already-serialized bytes that both codecs emit
    verbatim and a lazy binary decode hands back unparsed.
    """

    stream_id: str
    seq: int
    gmon: Union[GmonData, GmonBlob]
    trace_id: str = ""

    TYPE = "snapshot"


@dataclass(frozen=True)
class HeartbeatMsg:
    """A batch of AppEKG heartbeat rows from one stream."""

    stream_id: str
    records: List[HeartbeatRecord] = field(default_factory=list)

    TYPE = "heartbeat"


@dataclass(frozen=True)
class Control:
    """A service command (``ping``/``stats``/``fleet-status``/``shutdown``)."""

    command: str
    args: Dict[str, Any] = field(default_factory=dict)

    TYPE = "control"


@dataclass(frozen=True)
class Reply:
    """Server response to any request."""

    ok: bool
    error: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    TYPE = "reply"


@dataclass(frozen=True)
class Bye:
    """Orderly end-of-stream."""

    stream_id: str = ""

    TYPE = "bye"


Message = Any  # union of the dataclasses above


# ----------------------------------------------------------------------
# wire <-> message
# ----------------------------------------------------------------------
def _gmon_to_wire(gmon: Union[GmonData, GmonBlob]) -> str:
    raw = gmon.raw if isinstance(gmon, GmonBlob) else dumps_gmon(gmon)
    return base64.b64encode(raw).decode("ascii")


def _gmon_from_wire(blob: str) -> GmonData:
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ProtocolError(f"snapshot payload is not valid base64: {exc}") from exc
    try:
        return loads_gmon(raw)
    except FormatError as exc:
        raise ProtocolError(f"snapshot payload is not a valid gmon: {exc}") from exc


def _record_to_wire(record: HeartbeatRecord) -> Dict[str, Any]:
    return asdict(record)

_RECORD_FIELDS = ("rank", "hb_id", "interval_index", "time", "count", "avg_duration")


def _record_from_wire(obj: Any) -> HeartbeatRecord:
    if not isinstance(obj, dict):
        raise ProtocolError("heartbeat record must be an object")
    try:
        # A missing/null minimum stays None ("not observed"), never 0.0:
        # a 0.0 default would survive any downstream min-merge as if a
        # genuine 0-second beat had been measured.
        raw_min = obj.get("min_duration")
        return HeartbeatRecord(
            rank=int(obj["rank"]),
            hb_id=int(obj["hb_id"]),
            interval_index=int(obj["interval_index"]),
            time=float(obj["time"]),
            count=float(obj["count"]),
            avg_duration=float(obj["avg_duration"]),
            min_duration=None if raw_min is None else float(raw_min),
            max_duration=float(obj.get("max_duration", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad heartbeat record: {exc!r}") from exc


def message_to_obj(msg: Message) -> Dict[str, Any]:
    """Lower a typed message to its wire JSON object."""
    obj: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": msg.TYPE}
    if isinstance(msg, Hello):
        obj.update(stream_id=msg.stream_id, app=msg.app, rank=msg.rank,
                   resume=msg.resume, protocols=list(msg.protocols))
    elif isinstance(msg, SnapshotMsg):
        obj.update(stream_id=msg.stream_id, seq=msg.seq, gmon=_gmon_to_wire(msg.gmon))
        if msg.trace_id:
            obj["trace"] = msg.trace_id
    elif isinstance(msg, HeartbeatMsg):
        obj.update(stream_id=msg.stream_id,
                   records=[_record_to_wire(r) for r in msg.records])
    elif isinstance(msg, Control):
        obj.update(command=msg.command, args=dict(msg.args))
    elif isinstance(msg, Reply):
        obj.update(ok=msg.ok, error=msg.error, data=dict(msg.data))
    elif isinstance(msg, Bye):
        obj.update(stream_id=msg.stream_id)
    else:
        raise ProtocolError(f"cannot encode {type(msg).__name__}")
    return obj


def _require(obj: Dict[str, Any], key: str, kind: type) -> Any:
    if key not in obj:
        raise ProtocolError(f"message missing field {key!r}")
    value = obj[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise ProtocolError(f"field {key!r} must be {kind.__name__}")
    return value


def message_from_obj(obj: Any) -> Message:
    """Raise a typed message from a decoded wire JSON object."""
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    version = _require(obj, "v", int)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    kind = _require(obj, "type", str)
    if kind == Hello.TYPE:
        raw_protocols = obj.get("protocols") or [PROTOCOL_VERSION]
        if not isinstance(raw_protocols, list):
            raise ProtocolError("field 'protocols' must be a list")
        try:
            protocols = tuple(int(p) for p in raw_protocols)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad 'protocols' entry: {exc!r}") from exc
        return Hello(stream_id=_require(obj, "stream_id", str),
                     app=str(obj.get("app", "")), rank=int(obj.get("rank", 0)),
                     resume=bool(obj.get("resume", False)),
                     protocols=protocols)
    if kind == SnapshotMsg.TYPE:
        return SnapshotMsg(stream_id=_require(obj, "stream_id", str),
                           seq=_require(obj, "seq", int),
                           gmon=_gmon_from_wire(_require(obj, "gmon", str)),
                           trace_id=str(obj.get("trace", "") or ""))
    if kind == HeartbeatMsg.TYPE:
        records = _require(obj, "records", list)
        return HeartbeatMsg(stream_id=_require(obj, "stream_id", str),
                            records=[_record_from_wire(r) for r in records])
    if kind == Control.TYPE:
        return Control(command=_require(obj, "command", str),
                       args=dict(obj.get("args") or {}))
    if kind == Reply.TYPE:
        return Reply(ok=_require(obj, "ok", bool), error=str(obj.get("error", "")),
                     data=dict(obj.get("data") or {}))
    if kind == Bye.TYPE:
        return Bye(stream_id=str(obj.get("stream_id", "")))
    raise ProtocolError(f"unknown message type {kind!r}")


# ----------------------------------------------------------------------
# codec registry
# ----------------------------------------------------------------------
#: First payload byte of every v2 frame.  A JSON payload can never start
#: with NUL, so one receiver dispatches both codecs per frame with no
#: out-of-band state.
BINARY_MAGIC = b"\x00IPB"
_BIN_PREFIX = struct.Struct(">4sBB")    # magic, codec version, kind code
_BIN_SNAPSHOT = struct.Struct(">QIHH")  # seq, gmon_len, stream_id_len, trace_id_len
_BIN_ACK = struct.Struct(">BBQIHHB")    # flags, outcome, seq, model_version,
                                        # trace_len, error_len, code_len
KIND_SNAPSHOT = 1
KIND_ACK = 2

_ACK_FLAG_OK = 1
_ACK_FLAG_MODEL = 2
#: Snapshot ack outcomes with a packed representation.  The codes are
#: wire constants — append, never renumber.
_ACK_OUTCOMES = {1: "accepted", 2: "dropped-oldest", 3: "rejected",
                 4: "duplicate"}
_ACK_CODES = {name: code for code, name in _ACK_OUTCOMES.items()}
_ACK_KEYS = frozenset(("outcome", "seq", "trace", "model_version", "code"))


@dataclass(frozen=True)
class BinaryEnvelope:
    """A peeked v2 frame: routing fields without the gmon bytes decoded.

    Lets a proxy (the fleet router) pick the owning worker and forward
    the original payload verbatim — no deserialize/re-serialize of the
    dominant part of the frame.
    """

    kind: int
    type: str
    stream_id: str
    seq: int
    trace_id: str = ""


def _binary_kind(view: memoryview) -> int:
    """Validate a binary payload's prefix and return its kind code."""
    if view.nbytes < _BIN_PREFIX.size:
        raise ProtocolError("binary frame shorter than its prefix")
    magic, version, kind = _BIN_PREFIX.unpack_from(view, 0)
    if magic != BINARY_MAGIC:
        raise ProtocolError(f"bad binary frame magic {bytes(magic)!r}")
    if version != BINARY_PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported binary protocol version {version}")
    return kind


def _is_snapshot_ack(msg: Message) -> bool:
    """Whether ``msg`` is a snapshot ack the packed layout can carry.

    Deliberately strict: any reply with extra keys, an unknown outcome,
    or a field that does not fit its fixed-width slot is *not* an ack
    for encoding purposes and rides the JSON codec instead — fallback,
    never failure.
    """
    if not isinstance(msg, Reply):
        return False
    data = msg.data
    if not isinstance(data, dict) or not _ACK_KEYS.issuperset(data):
        return False
    if data.get("outcome") not in _ACK_CODES:
        return False
    seq = data.get("seq")
    if type(seq) is not int or not 0 <= seq <= 0xFFFFFFFFFFFFFFFF:
        return False
    trace = data.get("trace")
    if not isinstance(trace, str) or len(trace.encode("utf-8")) > 0xFFFF:
        return False
    if "model_version" in data:
        mv = data["model_version"]
        if type(mv) is not int or not 0 <= mv <= 0xFFFFFFFF:
            return False
    if "code" in data:
        code = data["code"]
        if not isinstance(code, str) or not code or len(code.encode("utf-8")) > 0xFF:
            return False
    return len(msg.error.encode("utf-8")) <= 0xFFFF


def _encode_ack(msg: Reply) -> bytes:
    """Pack a snapshot ack (:func:`_is_snapshot_ack` must hold)."""
    data = msg.data
    trace = data["trace"].encode("utf-8")
    error = msg.error.encode("utf-8")
    code = data.get("code", "").encode("utf-8")
    mv = data.get("model_version")
    flags = ((_ACK_FLAG_OK if msg.ok else 0)
             | (_ACK_FLAG_MODEL if mv is not None else 0))
    return b"".join((
        _BIN_PREFIX.pack(BINARY_MAGIC, BINARY_PROTOCOL_VERSION, KIND_ACK),
        _BIN_ACK.pack(flags, _ACK_CODES[data["outcome"]], data["seq"],
                      mv or 0, len(trace), len(error), len(code)),
        trace, error, code))


def _parse_binary_ack(view: memoryview) -> Reply:
    """Inverse of :func:`_encode_ack` (prefix already validated)."""
    off = _BIN_PREFIX.size
    if view.nbytes < off + _BIN_ACK.size:
        raise ProtocolError("binary ack frame truncated in its header")
    flags, outcome_code, seq, mv, t_len, e_len, c_len = \
        _BIN_ACK.unpack_from(view, off)
    off += _BIN_ACK.size
    end = off + t_len + e_len + c_len
    if end != view.nbytes:
        raise ProtocolError(f"binary ack frame length mismatch: header "
                            f"implies {end} bytes, frame has {view.nbytes}")
    outcome = _ACK_OUTCOMES.get(outcome_code)
    if outcome is None:
        raise ProtocolError(f"unknown binary ack outcome {outcome_code}")
    try:
        trace = bytes(view[off:off + t_len]).decode("utf-8")
        error = bytes(view[off + t_len:off + t_len + e_len]).decode("utf-8")
        code = bytes(view[off + t_len + e_len:end]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"binary ack fields are not UTF-8: {exc}") from exc
    data: Dict[str, Any] = {"outcome": outcome, "seq": seq, "trace": trace}
    if flags & _ACK_FLAG_MODEL:
        data["model_version"] = mv
    if code:
        data["code"] = code
    return Reply(ok=bool(flags & _ACK_FLAG_OK), error=error, data=data)


def _parse_binary_snapshot(view: memoryview) -> Tuple[int, str, str, memoryview]:
    """Validate a v2 snapshot payload; return (seq, stream_id, trace_id, gmon bytes).

    The gmon bytes come back as a ``memoryview`` slice of the input —
    zero-copy — so callers that only need the envelope never touch them.
    """
    if _binary_kind(view) != KIND_SNAPSHOT:
        raise ProtocolError(
            f"unknown binary frame kind {_binary_kind(view)}")
    off = _BIN_PREFIX.size
    if view.nbytes < off + _BIN_SNAPSHOT.size:
        raise ProtocolError("binary snapshot frame truncated in its header")
    seq, gmon_len, sid_len, tid_len = _BIN_SNAPSHOT.unpack_from(view, off)
    off += _BIN_SNAPSHOT.size
    end = off + sid_len + tid_len + gmon_len
    if end != view.nbytes:
        raise ProtocolError(f"binary snapshot frame length mismatch: header "
                            f"implies {end} bytes, frame has {view.nbytes}")
    try:
        stream_id = bytes(view[off:off + sid_len]).decode("utf-8")
        trace_id = bytes(view[off + sid_len:off + sid_len + tid_len]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"binary frame id fields are not UTF-8: {exc}") from exc
    if not stream_id:
        raise ProtocolError("binary snapshot frame has an empty stream id")
    return seq, stream_id, trace_id, view[off + sid_len + tid_len:end]


class JsonCodec:
    """Protocol v1: UTF-8 JSON payloads, gmon snapshots as base64."""

    version = PROTOCOL_VERSION

    def encode(self, msg: Message) -> bytes:
        return json.dumps(message_to_obj(msg), separators=(",", ":")).encode("utf-8")

    def decode(self, payload: Union[bytes, memoryview]) -> Message:
        try:
            obj = json.loads(bytes(payload).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
        return message_from_obj(obj)


class BinaryCodec:
    """Protocol v2: struct-packed snapshot payloads carrying raw gmon bytes.

    Snapshot layout (big-endian)::

        magic  b"\\x00IPB"             4 bytes
        codec version (2)              u8
        kind code (1 = snapshot)       u8
        seq                            u64
        gmon_len                       u32
        stream_id_len                  u16
        trace_id_len                   u16
        stream_id                      UTF-8, stream_id_len bytes
        trace_id                       UTF-8, trace_id_len bytes
        gmon                           raw IGMON serialization, gmon_len bytes

    Only snapshots — the hot path — get a binary layout; every other
    message kind delegates to the JSON codec, which is always valid on
    the shared stream because the receiver dispatches per frame.
    """

    version = BINARY_PROTOCOL_VERSION

    def encode(self, msg: Message) -> bytes:
        if not isinstance(msg, SnapshotMsg):
            # Snapshot acks — the reply-side hot path — also pack; every
            # other message (and any ack a packed frame can't represent
            # exactly) delegates to JSON.
            if _is_snapshot_ack(msg):
                return _encode_ack(msg)
            return JSON_CODEC.encode(msg)
        sid = msg.stream_id.encode("utf-8")
        tid = msg.trace_id.encode("utf-8")
        if len(sid) > 0xFFFF or len(tid) > 0xFFFF:
            raise ProtocolError("stream/trace id too long for a binary frame")
        if not 0 <= msg.seq <= 0xFFFFFFFFFFFFFFFF:
            raise ProtocolError(f"sequence number {msg.seq} does not fit u64")
        gmon = (bytes(msg.gmon.raw) if isinstance(msg.gmon, GmonBlob)
                else dumps_gmon(msg.gmon))
        size = _BIN_PREFIX.size + _BIN_SNAPSHOT.size + len(sid) + len(tid) + len(gmon)
        if size > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {size} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte limit")
        return b"".join((
            _BIN_PREFIX.pack(BINARY_MAGIC, self.version, KIND_SNAPSHOT),
            _BIN_SNAPSHOT.pack(msg.seq, len(gmon), len(sid), len(tid)),
            sid, tid, gmon))

    def decode(self, payload: Union[bytes, memoryview],
               lazy_gmon: bool = False) -> Message:
        """Decode a binary payload; ``lazy_gmon`` defers the gmon parse.

        With ``lazy_gmon`` the returned snapshot carries a
        :class:`GmonBlob` view into the payload instead of a parsed
        :class:`GmonData` — the daemon's reader thread admits the frame
        after header validation only, and the classify worker pays the
        parse off the connection's critical path (a corrupt blob then
        surfaces as a per-interval ingest error, not a reply error).
        """
        view = memoryview(payload)
        if _binary_kind(view) == KIND_ACK:
            return _parse_binary_ack(view)
        seq, stream_id, trace_id, gmon_view = _parse_binary_snapshot(view)
        if lazy_gmon:
            return SnapshotMsg(stream_id=stream_id, seq=seq,
                               gmon=GmonBlob(gmon_view), trace_id=trace_id)
        try:
            gmon = loads_gmon(gmon_view)
        except FormatError as exc:
            raise ProtocolError(f"snapshot payload is not a valid gmon: {exc}") from exc
        return SnapshotMsg(stream_id=stream_id, seq=seq, gmon=gmon,
                           trace_id=trace_id)


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()
CODECS = {codec.version: codec for codec in (JSON_CODEC, BINARY_CODEC)}


def codec_for(version: int) -> Union[JsonCodec, BinaryCodec]:
    """The registered codec for ``version``, or :class:`ProtocolError`."""
    try:
        return CODECS[version]
    except KeyError:
        raise ProtocolError(f"unsupported protocol version {version}") from None


def negotiate(offered: Iterable[int],
              supported: Iterable[int] = SUPPORTED_PROTOCOLS) -> int:
    """Pick the highest codec version both sides speak.

    Falls back to v1 when the sets don't intersect: v1 is the floor
    every peer has spoken since PR 1, so an empty intersection only
    means the other side is from the future — it can still talk v1.
    """
    common = set(offered) & set(supported)
    return max(common) if common else PROTOCOL_VERSION


def binary_envelope(payload: Union[bytes, memoryview]) -> Optional[BinaryEnvelope]:
    """Peek a payload's routing fields if it is a v2 binary frame.

    Returns ``None`` for JSON payloads (route those by decoding as
    usual).  Malformed binary payloads raise :class:`ProtocolError`.
    """
    view = memoryview(payload)
    if view.nbytes == 0 or view[0] != 0:
        return None
    seq, stream_id, trace_id, _gmon = _parse_binary_snapshot(view)
    return BinaryEnvelope(kind=KIND_SNAPSHOT, type=SnapshotMsg.TYPE,
                          stream_id=stream_id, seq=seq, trace_id=trace_id)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_message(msg: Message, version: int = PROTOCOL_VERSION) -> bytes:
    """Serialize one message to a length-prefixed frame.

    Oversized messages fail here — on the encoding side, before any
    bytes hit the wire — with the same :class:`ProtocolError` the
    receiver would raise, so a publisher with a pathological snapshot
    learns locally instead of after a round trip.
    """
    payload = codec_for(version).encode(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(payload)) + payload


def decode_message(frame: bytes) -> Message:
    """Inverse of :func:`encode_message` (whole frame, prefix included)."""
    if len(frame) < _LEN.size:
        raise ProtocolError("frame shorter than its length prefix")
    (length,) = _LEN.unpack(frame[:_LEN.size])
    payload = frame[_LEN.size:]
    if len(payload) != length:
        raise ProtocolError(f"frame length prefix says {length} bytes, "
                            f"got {len(payload)}")
    return _decode_payload(payload)


def _decode_payload(payload: Union[bytes, memoryview],
                    lazy_gmon: bool = False) -> Message:
    view = memoryview(payload)
    if view.nbytes and view[0] == 0:
        return BINARY_CODEC.decode(view, lazy_gmon=lazy_gmon)
    return JSON_CODEC.decode(payload)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read one frame's payload bytes; ``None`` on clean EOF between frames.

    Framing errors (short prefix, mid-frame EOF, oversized length) raise
    :class:`ProtocolError` and mean the byte stream has lost sync — the
    connection cannot be recovered.  Payload-level errors (bad JSON, bad
    snapshot) are recoverable: the next frame is still readable.
    """
    prefix = stream.read(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolError("connection closed mid-frame (short length prefix)")
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise ProtocolError(f"connection closed mid-frame "
                                f"({len(payload)}/{length} payload bytes)")
        payload += chunk
    return payload


class FrameReader:
    """Length-prefixed frame reads straight off a socket, with lookahead.

    Serves the daemon's reader loop instead of a ``makefile`` stream:
    :meth:`buffered_frame` says — without a syscall — whether another
    complete frame is already in memory, which is what lets the server
    *cork* its replies under a pipelined submission window (one flush
    per drained burst instead of one per reply).  Framing errors carry
    the same :class:`ProtocolError` semantics as :func:`read_frame`.
    """

    def __init__(self, sock: socket.socket, chunk: int = 65536) -> None:
        self._sock = sock
        self._chunk = chunk
        self._buf = bytearray()

    def _fill(self) -> bool:
        """One ``recv``; False on EOF."""
        data = self._sock.recv(self._chunk)
        if not data:
            return False
        self._buf += data
        return True

    def buffered_frame(self) -> bool:
        """A complete frame (or a framing error) is already buffered."""
        if len(self._buf) < _LEN.size:
            return False
        (length,) = _LEN.unpack_from(self._buf, 0)
        if length > MAX_FRAME_BYTES:
            return True  # read_frame will raise; don't wait for bytes
        return len(self._buf) >= _LEN.size + length

    def read_frame(self) -> Optional[bytes]:
        """Next frame's payload; ``None`` on clean EOF between frames."""
        while len(self._buf) < _LEN.size:
            if not self._fill():
                if not self._buf:
                    return None
                raise ProtocolError(
                    "connection closed mid-frame (short length prefix)")
        (length,) = _LEN.unpack_from(self._buf, 0)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte limit")
        total = _LEN.size + length
        while len(self._buf) < total:
            if not self._fill():
                raise ProtocolError(
                    f"connection closed mid-frame "
                    f"({len(self._buf) - _LEN.size}/{length} payload bytes)")
        payload = bytes(memoryview(self._buf)[_LEN.size:total])
        del self._buf[:total]
        return payload


def decode_payload(payload: bytes, lazy_gmon: bool = False) -> Message:
    """Decode one frame's payload into a typed message.

    ``lazy_gmon`` applies only to binary snapshot payloads (see
    :meth:`BinaryCodec.decode`); JSON payloads always validate fully,
    keeping v1's admission semantics exactly as they were.
    """
    return _decode_payload(payload, lazy_gmon=lazy_gmon)


def read_message(stream: BinaryIO) -> Optional[Message]:
    """Read one framed message; ``None`` on clean EOF between frames."""
    payload = read_frame(stream)
    if payload is None:
        return None
    return _decode_payload(payload)


def write_message(stream: BinaryIO, msg: Message,
                  version: int = PROTOCOL_VERSION) -> None:
    """Frame and write one message with the given codec version."""
    stream.write(encode_message(msg, version=version))
    stream.flush()


def frame_bytes(payload: Union[bytes, memoryview]) -> bytes:
    """Length-prefix one already-encoded payload.

    The forwarding path: a proxy that has a validated payload in hand
    frames it verbatim instead of decode/re-encode round-tripping it.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(payload)) + bytes(payload)


def write_frame(stream: BinaryIO, payload: Union[bytes, memoryview]) -> None:
    """Write one already-encoded payload with its length prefix."""
    stream.write(frame_bytes(payload))
    stream.flush()


# ----------------------------------------------------------------------
# fleet routing replies
# ----------------------------------------------------------------------
#: Reply ``data.code`` values that mean "re-route, don't fail": the
#: request was NOT processed and may safely be resent to the right
#: worker (or back through the router's home endpoint).
ROUTE_REDIRECT = "redirect"
ROUTE_WRONG_WORKER = "wrong-worker"
ROUTE_UNAVAILABLE = "worker-unavailable"
ROUTING_CODES = (ROUTE_REDIRECT, ROUTE_WRONG_WORKER, ROUTE_UNAVAILABLE)


@dataclass(frozen=True)
class RoutingDirective:
    """A parsed routing reply: where the request should go instead.

    ``endpoint`` is None when the replier knows the owner's identity but
    not its address (a worker after a rebalance) — the client should
    then fall back to its home (router) endpoint and re-resolve.
    """

    code: str
    worker_id: str = ""
    endpoint: Optional["Endpoint"] = None
    ring_generation: int = 0


def redirect_reply(endpoint: "Endpoint", worker_id: str,
                   ring_generation: int) -> "Reply":
    """A router's redirect-mode answer: dial the owning worker directly."""
    return Reply(ok=False,
                 error=f"stream is served by worker {worker_id!r}",
                 data={"code": ROUTE_REDIRECT, "worker_id": worker_id,
                       "endpoint": str(endpoint),
                       "ring_generation": ring_generation})


def wrong_worker_reply(owner: str, worker_id: str,
                       ring_generation: int) -> "Reply":
    """A worker's refusal: the current ring assigns this stream elsewhere."""
    return Reply(ok=False,
                 error=f"worker {worker_id!r} does not own this stream "
                       f"(ring generation {ring_generation} says "
                       f"{owner!r} does)",
                 data={"code": ROUTE_WRONG_WORKER, "worker_id": owner,
                       "ring_generation": ring_generation})


def worker_unavailable_reply(worker_id: str, cause: str) -> "Reply":
    """A router's answer when the owning worker cannot be reached."""
    return Reply(ok=False,
                 error=f"worker {worker_id!r} is unavailable: {cause}",
                 data={"code": ROUTE_UNAVAILABLE, "worker_id": worker_id})


def routing_directive(reply: "Reply") -> Optional[RoutingDirective]:
    """Parse a routing reply, or ``None`` for any non-routing reply."""
    if reply.ok:
        return None
    code = str(reply.data.get("code", ""))
    if code not in ROUTING_CODES:
        return None
    endpoint = None
    spec = reply.data.get("endpoint")
    if spec:
        try:
            endpoint = Endpoint.parse(str(spec))
        except ProtocolError:
            endpoint = None  # a malformed hint is no hint
    return RoutingDirective(
        code=code,
        worker_id=str(reply.data.get("worker_id", "")),
        endpoint=endpoint,
        ring_generation=int(reply.data.get("ring_generation", 0) or 0))


# ----------------------------------------------------------------------
# addressing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """Where ``incprofd`` listens: TCP (``host:port``) or a Unix socket."""

    kind: str  # "tcp" | "unix"
    host: str = "127.0.0.1"
    port: int = 0
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("tcp", "unix"):
            raise ProtocolError(f"unknown endpoint kind {self.kind!r}")
        if self.kind == "unix" and not self.path:
            raise ProtocolError("unix endpoint needs a socket path")

    @classmethod
    def tcp(cls, host: str = "127.0.0.1", port: int = 0) -> "Endpoint":
        return cls(kind="tcp", host=host, port=port)

    @classmethod
    def unix(cls, path: str) -> "Endpoint":
        return cls(kind="unix", path=path)

    @classmethod
    def parse(cls, spec: str) -> "Endpoint":
        """``host:port`` or ``unix:/path/to.sock``."""
        if spec.startswith("unix:"):
            return cls.unix(spec[len("unix:"):])
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise ProtocolError(f"endpoint spec {spec!r} is not host:port or unix:PATH")
        return cls.tcp(host or "127.0.0.1", int(port))

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a client socket to this endpoint."""
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.path)
        else:
            sock = socket.create_connection((self.host, self.port), timeout=timeout)
            enable_nodelay(sock)
        sock.settimeout(None)
        return sock

    def __str__(self) -> str:
        return f"unix:{self.path}" if self.kind == "unix" else f"{self.host}:{self.port}"


def enable_nodelay(sock: socket.socket) -> None:
    """Disable Nagle on a TCP socket (harmless no-op elsewhere).

    The protocol is small framed request/reply messages, each flushed
    explicitly — Nagle can never usefully coalesce them, but it can
    stall a pipelined submission window behind a delayed ACK.  Both
    ends of every connection (client dial, daemon accept, router
    accept) go through here.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, ValueError):
        pass  # unix sockets and exotic stacks have no Nagle to disable
