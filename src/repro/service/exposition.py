"""Prometheus text exposition for ``incprofd`` self-metrics.

Renders a :meth:`~repro.service.server.PhaseMonitorServer.stats` snapshot
in the Prometheus text format (version 0.0.4): counters as ``*_total``,
gauges as-is, the pipeline stage accounting as labelled totals, and the
classify-latency window as a summary with ``quantile`` labels.

Two transports serve the same text:

- the wire protocol's ``metrics`` control request (``incprof metrics``),
- a tiny stdlib HTTP endpoint (:class:`MetricsHTTPServer`, enabled with
  ``incprof serve --metrics-port``) so an off-the-shelf Prometheus
  scraper needs no knowledge of the incprofd framing.
"""

from __future__ import annotations

import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import ValidationError

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: stats() counter keys exposed as monotone ``*_total`` counters.
_COUNTERS = (
    ("ingested", "Snapshots admitted into a stream queue."),
    ("processed", "Intervals classified by the worker pool."),
    ("novel", "Classified intervals flagged as novel behaviour."),
    ("dropped_oldest", "Snapshots evicted by the drop-oldest policy."),
    ("rejected", "Snapshots refused by backpressure."),
    ("protocol_errors", "Malformed frames or messages."),
    ("ingest_errors", "Snapshots that failed differencing."),
    ("heartbeats", "Application heartbeat rows accepted."),
    ("connections", "Connections accepted."),
    ("faults_injected", "Fault-injector actions taken."),
    ("checkpoints_written", "Checkpoints written."),
    ("refits", "Live model refits hot-swapped across all streams."),
    ("wrong_worker", "Requests refused because the ring assigns the "
                     "stream to another worker."),
    ("finished_evicted",
     "Finished-stream rows evicted by the bounded history ring."),
)

#: stats() keys exposed as gauges (instantaneous values).
_GAUGES = (
    ("streams", "Live registered streams."),
    ("queued_total", "Snapshots queued across all streams."),
    ("ingest_rate", "Processed intervals per second since first ingest."),
    ("ldms_delivered", "Heartbeat rows delivered through the LDMS sampler."),
    ("restored_streams", "Streams restored from the last checkpoint."),
    ("workers", "Classification worker threads."),
)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _fmt(value: float) -> str:
    # Prometheus wants plain decimal floats; integers render without ".0".
    if isinstance(value, bool):
        return "1" if value else "0"
    value = float(value)
    # Non-finite values are legal Prometheus samples ("NaN", "+Inf",
    # "-Inf"); int() on them raises, which used to turn one bad stat
    # into a failed scrape of *everything*.
    if not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(stats: Dict[str, Any], prefix: str = "incprofd") -> str:
    """One stats snapshot as Prometheus exposition text."""
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: List[Tuple[str, float]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{labels} {_fmt(value)}")

    for key, help_text in _COUNTERS:
        if key in stats:
            emit(f"{prefix}_{key}_total", "counter", help_text,
                 [("", float(stats[key]))])
    for key, help_text in _GAUGES:
        if key in stats:
            emit(f"{prefix}_{key}", "gauge", help_text,
                 [("", float(stats[key]))])

    depths = stats.get("queue_depths") or {}
    if depths:
        emit(f"{prefix}_queue_depth", "gauge",
             "Queued snapshots per stream.",
             [(f'{{stream="{_escape_label(sid)}"}}', float(depth))
              for sid, depth in sorted(depths.items())])

    stages = stats.get("stages") or {}
    if stages:
        for field, help_text in (
            ("seconds", "Wall seconds spent in each worker pipeline stage."),
            ("items", "Items processed by each worker pipeline stage."),
            ("calls", "Batch invocations of each worker pipeline stage."),
        ):
            emit(f"{prefix}_stage_{field}_total", "counter", help_text,
                 [(f'{{stage="{_escape_label(stage)}"}}', float(rec[field]))
                  for stage, rec in sorted(stages.items())])

    latency = stats.get("classify_latency") or {}
    if latency:
        name = f"{prefix}_classify_latency_seconds"
        samples = []
        for key in sorted(latency, key=lambda k: float(k[1:])):
            quantile = float(key[1:]) / 100.0
            samples.append((f'{{quantile="{quantile:g}"}}',
                            float(latency[key])))
        emit(name, "summary",
             "Per-interval classification latency over the recent window.",
             samples)

    traces = stats.get("traces") or {}
    for key in ("started", "finished", "evicted"):
        if key in traces:
            emit(f"{prefix}_traces_{key}_total", "counter",
                 f"Traces {key}.", [("", float(traces[key]))])

    store = stats.get("store") or {}
    tiers = store.get("tiers") or {}
    if tiers:
        for field, help_text in (
            ("bytes", "On-disk bytes per interval-archive retention tier."),
            ("segments", "Segments per interval-archive retention tier."),
            ("intervals", "Intervals held per interval-archive tier."),
        ):
            emit(f"{prefix}_store_tier_{field}", "gauge", help_text,
                 [(f'{{tier="{_escape_label(str(tier))}"}}',
                   float(rec.get(field, 0)))
                  for tier, rec in sorted(tiers.items())])
    if "appends" in store:
        emit(f"{prefix}_store_appends_total", "counter",
             "Snapshots appended to the interval archive.",
             [("", float(store["appends"]))])

    analytics = stats.get("analytics") or {}
    if analytics:
        for key, help_text in (
            ("streams", "Streams covered by the last fleet-analytics pass."),
            ("cohorts", "Stream cohorts found by the last "
                        "fleet-analytics pass."),
            ("anomalies", "Streams flagged anomalous against their "
                          "cohort's signature spread."),
            ("drift_events", "Fleet-wide drift events (refit waves, "
                             "novel bursts) in the last pass."),
        ):
            if key in analytics:
                emit(f"{prefix}_analytics_{key}", "gauge", help_text,
                     [("", float(analytics[key]))])
        sizes = analytics.get("cohort_sizes") or {}
        if sizes:
            emit(f"{prefix}_analytics_cohort_size", "gauge",
                 "Streams per cohort (label: stable cohort id).",
                 [(f'{{cohort="{_escape_label(str(cid))}"}}', float(n))
                  for cid, n in sorted(sizes.items())])

    selfhb = stats.get("self_heartbeats") or {}
    if "events" in selfhb:
        emit(f"{prefix}_self_heartbeats_total", "counter",
             "Self-instrumentation heartbeat events (daemon dogfooding).",
             [("", float(selfhb["events"]))])
    self_stages = selfhb.get("stages") or {}
    if self_stages:
        for field, help_text in (
            ("seconds", "Wall seconds of the daemon's own heartbeat-"
                        "instrumented pipeline stages."),
            ("count", "Heartbeat count of the daemon's own pipeline stages."),
        ):
            emit(f"{prefix}_self_stage_{field}_total", "counter", help_text,
                 [(f'{{stage="{_escape_label(stage)}"}}', float(rec[field]))
                  for stage, rec in sorted(self_stages.items())])

    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{name{labels}: value}``.

    A deliberately strict mini-parser (used by tests and ``incprof
    metrics --json``): every non-comment line must be ``name[{labels}]
    value``; anything else raises :class:`ValidationError`.  The
    Prometheus spellings of non-finite samples (``NaN``, ``+Inf``,
    ``-Inf``) parse back to the matching floats — exactly the strings
    :func:`render_prometheus` emits for them.
    """
    out: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, sep, value = line.rpartition(" ")
        if not sep or not name:
            raise ValidationError(f"line {lineno}: not 'name value': {line!r}")
        try:
            out[name] = float(value)
        except ValueError as exc:
            raise ValidationError(
                f"line {lineno}: bad sample value {value!r}") from exc
    return out


class _Handler(BaseHTTPRequestHandler):
    server_version = "incprofd-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path.split("?", 1)[0] in ("/metrics", "/"):
            try:
                body = self.server.render_fn().encode("utf-8")  # type: ignore[attr-defined]
            except Exception as exc:  # pragma: no cover - defensive
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "only /metrics and /healthz are served")

    def log_message(self, fmt: str, *args: Any) -> None:
        # The scrape path must stay silent on stderr; the daemon's own
        # structured logger covers lifecycle events.
        pass


class MetricsHTTPServer:
    """A stdlib HTTP ``/metrics`` endpoint over a render callable.

    ``render_fn`` returns the exposition text; typically
    ``lambda: render_prometheus(server.stats())``.  The endpoint runs on
    one daemon thread and serves each scrape on its own (threading
    server), so a stalled scraper cannot block the next one.
    """

    def __init__(self, render_fn, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.render_fn = render_fn  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="incprofd-metrics-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
