"""Per-submission tracing for ``incprofd``.

Every snapshot submission gets a *trace id* — minted by the publisher
(:func:`repro.service.client.publish_samples`) or, for untraced
publishers, by the server on admission — that follows the interval
through the pipeline.  Each stage appends a *span* (its wall time in
seconds):

``enqueue``    admission into the stream's bounded queue (reader thread)
``dequeue``    time spent waiting in the queue until a worker drained it
``classify``   differencing + phase classification (worker pool)
``aggregate``  counter/metric aggregation after classification

The store is a bounded ring — a long-lived daemon answering ``trace``
requests must not grow without bound — and its rows are JSON-ready so
they ride along in checkpoints: after a crash-restart the daemon can
still answer "what happened to trace X" for recently completed work.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import ValidationError

#: Pipeline stages, in order; a completed trace has one span for each.
TRACE_STAGES = ("enqueue", "dequeue", "classify", "aggregate")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision-safe at fleet scale).

    Straight from ``os.urandom`` — same 64 bits of entropy as the
    ``uuid4`` slice this replaces at a fraction of the cost, which
    matters because the server mints one per untraced admission.
    """
    return os.urandom(8).hex()


class TraceRecord:
    """Span timings of one submission as it moved through the pipeline."""

    __slots__ = ("trace_id", "stream_id", "seq", "spans", "completed")

    def __init__(self, trace_id: str, stream_id: str, seq: int) -> None:
        self.trace_id = trace_id
        self.stream_id = stream_id
        self.seq = seq
        self.spans: Dict[str, float] = {}
        self.completed = False

    @property
    def total_seconds(self) -> float:
        return sum(self.spans.values())

    def row(self) -> Dict[str, Any]:
        """JSON-ready view (wire replies and checkpoints)."""
        return {
            "trace_id": self.trace_id,
            "stream_id": self.stream_id,
            "seq": self.seq,
            "spans": dict(self.spans),
            "total_seconds": self.total_seconds,
            "completed": self.completed,
        }


class TraceStore:
    """Thread-safe bounded ring of trace records, keyed by trace id.

    Reader threads begin traces and record the enqueue span; workers add
    the remaining spans and mark completion.  When the ring is full the
    oldest trace is evicted — recency is what an operator debugging a
    live daemon needs.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValidationError("trace store capacity must be positive")
        self.capacity = capacity
        self._records: "OrderedDict[str, TraceRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self.started = 0
        self.finished = 0
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def begin(self, trace_id: str, stream_id: str, seq: int) -> TraceRecord:
        """Register one submission; evicts the oldest trace when full."""
        record = TraceRecord(trace_id, stream_id, seq)
        with self._lock:
            self._records[trace_id] = record
            self._records.move_to_end(trace_id)
            self.started += 1
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
                self.evicted += 1
        return record

    def add_span(self, trace_id: str, stage: str, seconds: float) -> None:
        """Record one stage's wall time (unknown traces are ignored —
        the ring may have evicted them under sustained load)."""
        if stage not in TRACE_STAGES:
            raise ValidationError(
                f"unknown trace stage {stage!r} (expected one of {TRACE_STAGES})")
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None:
                record.spans[stage] = record.spans.get(stage, 0.0) + seconds

    def complete(self, trace_id: str) -> Optional[TraceRecord]:
        """Mark a trace finished; returns it so callers can slow-op check."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None and not record.completed:
                record.completed = True
                self.finished += 1
            return record

    def finish_batch(
        self, items: List[Tuple[str, List[Tuple[str, float]]]],
    ) -> List[Optional[TraceRecord]]:
        """Add final spans and complete many traces under one lock.

        A worker's coalesced tick closes out every interval it
        classified in a single call — the per-interval lock round-trips
        of ``add_span``/``complete`` are what this batches away.  Span
        stages are validated exactly as :meth:`add_span`; an evicted
        trace yields ``None`` in its result slot.
        """
        for _trace_id, spans in items:
            for stage, _seconds in spans:
                if stage not in TRACE_STAGES:
                    raise ValidationError(
                        f"unknown trace stage {stage!r} "
                        f"(expected one of {TRACE_STAGES})")
        out: List[Optional[TraceRecord]] = []
        with self._lock:
            for trace_id, spans in items:
                record = self._records.get(trace_id)
                if record is not None:
                    for stage, seconds in spans:
                        record.spans[stage] = (
                            record.spans.get(stage, 0.0) + seconds)
                    if not record.completed:
                        record.completed = True
                        self.finished += 1
                out.append(record)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._records.get(trace_id)
            return record.row() if record is not None else None

    def rows(
        self,
        stream_id: Optional[str] = None,
        limit: Optional[int] = None,
        completed_only: bool = False,
    ) -> List[Dict[str, Any]]:
        """Most-recent-first trace rows, optionally filtered to a stream."""
        with self._lock:
            records = list(self._records.values())
        records.reverse()
        out: List[Dict[str, Any]] = []
        for record in records:
            if stream_id is not None and record.stream_id != stream_id:
                continue
            if completed_only and not record.completed:
                continue
            out.append(record.row())
            if limit is not None and len(out) >= limit:
                break
        return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "stored": len(self._records),
                "started": self.started,
                "finished": self.finished,
                "evicted": self.evicted,
            }

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_rows(self) -> List[Dict[str, Any]]:
        """Oldest-first JSON rows for a checkpoint payload."""
        with self._lock:
            return [r.row() for r in self._records.values()]

    def restore_rows(self, rows: List[Dict[str, Any]]) -> int:
        """Reinstall checkpointed traces (ignores malformed rows)."""
        restored = 0
        for obj in rows:
            if not isinstance(obj, dict):
                continue
            try:
                trace_id = str(obj["trace_id"])
                record = TraceRecord(trace_id, str(obj.get("stream_id", "")),
                                     int(obj.get("seq", -1)))
                spans = obj.get("spans") or {}
                record.spans = {str(k): float(v) for k, v in spans.items()
                                if str(k) in TRACE_STAGES}
                record.completed = bool(obj.get("completed", False))
            except (KeyError, TypeError, ValueError):
                continue
            with self._lock:
                self._records[trace_id] = record
                self._records.move_to_end(trace_id)
                while len(self._records) > self.capacity:
                    self._records.popitem(last=False)
            restored += 1
        return restored
