"""``incprofd`` — the long-running phase-monitoring daemon.

Architecture (one box per thread group)::

    publishers ──TCP/unix──▶ reader threads ──▶ per-stream bounded queues
                                                        │
                                             scheduler (ready queue)
                                                        │
                                                  worker pool ──▶ per-stream
                                                                  OnlinePhaseTracker
    housekeeping thread: idle-stream expiry + LDMS sampler pulls

Each accepted connection gets a reader thread that decodes frames and
*enqueues* snapshots — classification happens on the worker pool, so a
slow stream cannot stall ingest for the others.  Per-stream ordering is
preserved by scheduling: a stream is in the ready queue at most once, so
only one worker services a given stream at a time.

Backpressure when a stream's queue is full is explicit policy:

``block``        the reader thread waits for space, which stops reading
                 the connection and pushes back on the publisher via TCP
                 flow control (the default; lossless).
``drop-oldest``  evict the oldest queued snapshot to admit the new one
                 (bounded staleness; drop counters surface the loss).
``reject``       refuse the new snapshot and tell the publisher via a
                 failed reply (the publisher decides what to retry).
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from queue import Empty, Queue
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.incremental import AdaptiveConfig, DriftConfig
from repro.core.model_io import MODEL_MAGIC, MODEL_SCHEMA, pack_artifact
from repro.core.online import OnlinePhaseTracker, classify_across
from repro.gprof.gmon import GmonBlob, GmonData
from repro.heartbeat.ldms import LDMSTransport
from repro.util.atomicio import atomic_write_bytes
from repro.fleet.ring import HashRing
from repro.service.checkpoint import (
    CheckpointManager,
    _stream_from_obj,
    restore_registry,
    snapshot_registry,
)
from repro.service.faults import (
    CLOSE,
    CORRUPT,
    CORRUPT_FRAME,
    DELAY,
    DROP,
    FaultInjector,
)
from repro.core.cohorts import CohortMatcher
from repro.service.dashboard import DashboardServer
from repro.service.exposition import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    render_prometheus,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    BINARY_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Message,
    Reply,
    SnapshotMsg,
    FrameReader,
    decode_payload,
    enable_nodelay,
    encode_message,
    negotiate,
    wrong_worker_reply,
)
from repro.service.registry import StreamRegistry, StreamState
from repro.service.selfekg import SelfInstrument
from repro.service.tracing import TraceStore, new_trace_id
from repro.store import layout
from repro.store.segments import SegmentStore
from repro.util.jsonlog import JsonLogger
from repro.util.errors import (
    BackpressureError,
    CheckpointError,
    CollectorError,
    ProtocolError,
    ReproError,
    ServiceError,
    StreamConflictError,
    ValidationError,
)

#: Admission outcomes of one snapshot (also used on the wire in replies).
ACCEPTED = "accepted"
DROPPED_OLDEST = "dropped-oldest"
REJECTED = "rejected"

BACKPRESSURE_POLICIES = ("block", "drop-oldest", "reject")


class BoundedStreamQueue:
    """A bounded FIFO with an explicit full-queue policy.

    ``put`` is called by reader threads, ``pop_batch`` by workers; the
    condition variable couples them so the ``block`` policy gives real
    producer backpressure rather than buffering.
    """

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValidationError("queue capacity must be positive")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValidationError(
                f"unknown backpressure policy {policy!r} "
                f"(expected one of {BACKPRESSURE_POLICIES})")
        self.capacity = capacity
        self.policy = policy
        self._items: Deque[Any] = deque()
        self._cv = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cv:
            return len(self._items)

    def close(self) -> None:
        """Unblock every waiting producer; further puts fail."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def put(self, item: Any, timeout: Optional[float] = None) -> str:
        """Admit one item under the queue's policy.

        Returns the admission outcome; ``block`` waits for space (up to
        ``timeout`` seconds, then :class:`ServiceError`).
        """
        with self._cv:
            if self.policy == "block":
                deadline = None if timeout is None else time.monotonic() + timeout
                while len(self._items) >= self.capacity and not self._closed:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise BackpressureError("backpressure timeout: queue stayed full")
                    self._cv.wait(remaining)
                if self._closed:
                    raise ServiceError("queue closed")
                self._items.append(item)
                self._cv.notify_all()
                return ACCEPTED
            if self._closed:
                raise ServiceError("queue closed")
            if len(self._items) >= self.capacity:
                if self.policy == "drop-oldest":
                    self._items.popleft()
                    self._items.append(item)
                    return DROPPED_OLDEST
                return REJECTED
            self._items.append(item)
            return ACCEPTED

    def pop_batch(self, max_items: int) -> List[Any]:
        """Dequeue up to ``max_items`` (may be empty), waking producers."""
        with self._cv:
            batch = [self._items.popleft()
                     for _ in range(min(max_items, len(self._items)))]
            if batch:
                self._cv.notify_all()
            return batch


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one ``incprofd`` instance."""

    endpoint: Endpoint = field(default_factory=Endpoint.tcp)
    workers: int = 4
    queue_capacity: int = 64
    policy: str = "block"
    #: Give up on a blocked put after this many seconds (a wedged worker
    #: pool must not hold reader threads hostage forever).
    block_timeout: float = 30.0
    idle_timeout: float = 30.0
    #: Housekeeping cadence (idle expiry + LDMS sampler pulls).
    housekeeping_interval: float = 0.5
    batch_size: int = 8
    #: Novelty gate parameters used when spawning per-stream trackers.
    quantile: float = 0.95
    slack: float = 1.5
    #: Online refit: wall-clock floor between per-stream model refits
    #: (``--refit-interval``); None disables live refitting entirely.
    refit_interval: Optional[float] = None
    #: Fraction of recent intervals that must be novel before a refit
    #: fires (``--refit-drift-threshold``); inertia degradation uses the
    #: shared :class:`~repro.core.incremental.DriftConfig` default.
    refit_drift_threshold: float = 0.3
    #: Refits train on this many most-recent interval profiles.
    refit_window: int = 128
    #: Durable-state directory; None disables checkpointing entirely.
    checkpoint_dir: Optional[str] = None
    #: Seconds between checkpoint writes (a crash loses at most this much).
    checkpoint_interval: float = 2.0
    #: Interval archive: when set, every classified snapshot's raw gmon
    #: bytes are appended to a tiered segment store rooted here, so
    #: historical windows can be replayed through ``incprof replay``
    #: (see ``docs/STORAGE.md``).  None disables archiving.
    store_dir: Optional[str] = None
    #: Background store maintenance cadence (flush + compact + gc).
    store_compact_interval: float = 30.0
    #: Versioned-artifact retention: newest N ``.ipm`` models per stream
    #: and rotated ``.ipckp`` checkpoints survive garbage collection.
    artifact_keep: int = 2
    #: Completed-trace ring size for the ``trace`` request.
    trace_capacity: int = 4096
    #: A submission whose spans sum past this many seconds is logged as a
    #: structured ``slow-op`` record.
    slow_op_threshold: float = 1.0
    #: Self-instrumentation: the daemon heartbeats its own pipeline
    #: stages on this collection interval (None disables dogfooding).
    self_heartbeat_interval: Optional[float] = 1.0
    #: Serve Prometheus text over plain HTTP on this port (None = off;
    #: 0 = ephemeral).  The wire ``metrics`` request works regardless.
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    #: Serve the live analytics dashboard (HTML + /analytics.json) on
    #: this port (None = off; 0 = ephemeral).  See ``docs/ANALYTICS.md``.
    dashboard_port: Optional[int] = None
    dashboard_host: str = "127.0.0.1"
    #: Threshold for the daemon's structured JSON log (stderr).
    log_level: str = "info"
    #: Fleet identity: non-empty when this daemon is one worker of a
    #: sharded fleet.  Enables ring-ownership enforcement and the
    #: fleet reply fields (``worker_id``, ``ring_generation``); the
    #: empty default keeps single-daemon wire replies exactly as before.
    worker_id: str = ""
    #: Finished-stream history ring size (drop-oldest beyond this, with
    #: evictions counted in ``finished_evicted``).
    finished_capacity: int = 64
    #: Highest wire codec version this daemon advertises in hello
    #: replies.  The decoder always accepts every registered codec
    #: (dispatch is per frame); lowering this only steers clients — the
    #: knob that lets tests exercise a v1-only server.
    max_protocol: int = BINARY_PROTOCOL_VERSION
    #: How many ready streams one worker tick coalesces into a single
    #: cross-stream vectorized classify call.  1 restores strictly
    #: per-stream ticks.
    coalesce_streams: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError("need at least one worker")
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ValidationError(f"unknown backpressure policy {self.policy!r}")
        if self.batch_size < 1:
            raise ValidationError("batch size must be positive")
        if self.checkpoint_interval <= 0:
            raise ValidationError("checkpoint interval must be positive")
        if self.trace_capacity < 1:
            raise ValidationError("trace capacity must be positive")
        if self.slow_op_threshold <= 0:
            raise ValidationError("slow-op threshold must be positive")
        if (self.self_heartbeat_interval is not None
                and self.self_heartbeat_interval <= 0):
            raise ValidationError("self-heartbeat interval must be positive")
        if self.refit_interval is not None and self.refit_interval < 0:
            raise ValidationError("refit interval must be non-negative")
        if not 0 < self.refit_drift_threshold <= 1:
            raise ValidationError("refit drift threshold must be in (0, 1]")
        if self.refit_window < 2:
            raise ValidationError("refit window needs at least two profiles")
        if self.finished_capacity < 1:
            raise ValidationError("finished capacity must be positive")
        if self.store_compact_interval <= 0:
            raise ValidationError("store compact interval must be positive")
        if self.artifact_keep < 1:
            raise ValidationError("artifact_keep must be positive")
        if self.max_protocol < 1:
            raise ValidationError("max protocol must be at least 1")
        if self.coalesce_streams < 1:
            raise ValidationError("coalesce_streams must be positive")

    def adaptive_config(self) -> Optional[AdaptiveConfig]:
        """The per-stream refit policy, or None when refitting is off."""
        if self.refit_interval is None:
            return None
        return AdaptiveConfig(
            window=self.refit_window,
            min_refit_window=min(16, self.refit_window),
            drift=DriftConfig(novel_rate=self.refit_drift_threshold),
            cooldown_s=self.refit_interval,
            quantile=self.quantile,
            slack=self.slack,
        )


class PhaseMonitorServer:
    """The daemon: socket front end, worker pool, fleet state."""

    def __init__(
        self,
        tracker_template: Optional[OnlinePhaseTracker] = None,
        config: ServerConfig = ServerConfig(),
        faults: Optional[FaultInjector] = None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        self.template = tracker_template
        self.config = config
        self.adaptive = config.adaptive_config()
        self.registry = StreamRegistry(
            idle_timeout=config.idle_timeout,
            finished_capacity=config.finished_capacity)
        self.metrics = ServiceMetrics()
        #: Fleet membership as this worker last heard it (``ring-update``
        #: control); None until the supervisor pushes one.  Assignment is
        #: atomic and :class:`HashRing` is itself thread-safe, so request
        #: threads read it without a lock.
        self.ring: Optional[HashRing] = None
        #: Refit artifacts awaiting persistence: (stream_id, version,
        #: trained-state dict), captured atomically at swap time and
        #: written by the housekeeping thread (never under tracker locks).
        self._model_saves: Deque[Tuple[str, int, Dict[str, Any]]] = deque()
        self.faults = faults
        self.log = (logger if logger is not None
                    else JsonLogger("incprofd", level=config.log_level))
        #: Per-submission trace spans, queryable via the ``trace`` request.
        self.traces = TraceStore(capacity=config.trace_capacity)
        self.checkpoints: Optional[CheckpointManager] = None
        if config.checkpoint_dir is not None:
            self.checkpoints = CheckpointManager(
                config.checkpoint_dir, interval=config.checkpoint_interval,
                keep_history=config.artifact_keep)
        #: Interval archive (tiered segment store); every classified
        #: snapshot's raw bytes land here when ``store_dir`` is set.
        self.store: Optional[SegmentStore] = None
        if config.store_dir is not None:
            self.store = SegmentStore(config.store_dir)
        #: Recovery outcome of the last start(): stream ids restored from
        #: the checkpoint, and the path a corrupt one was quarantined to.
        self.restored_streams: List[str] = []
        self.quarantined_checkpoint = None
        #: Heartbeat rows are forwarded through the same pull-model
        #: transport the in-process examples use; the housekeeping thread
        #: plays the LDMS sampler.
        self.transport = LDMSTransport()
        #: Dogfooding: the daemon heartbeats its own pipeline stages into
        #: the same transport, so IncProf can analyse incprofd itself.
        self.selfekg: Optional[SelfInstrument] = None
        if config.self_heartbeat_interval is not None:
            self.selfekg = SelfInstrument(
                sink=self.transport, interval=config.self_heartbeat_interval)
        self.metrics_http: Optional[MetricsHTTPServer] = None
        self.dashboard_http: Optional[DashboardServer] = None
        #: Cross-stream analytics: cohort ids stay stable across
        #: successive ``fleet_analytics`` passes via one matcher, and
        #: the last pass's summary rides in stats()/Prometheus.
        self._analytics_matcher = CohortMatcher()
        self._analytics_lock = threading.Lock()
        self._analytics_summary: Optional[Dict[str, Any]] = None
        #: Final signatures of recently finished streams (orderly bye or
        #: idle expiry), so analytics still sees a publisher that just
        #: disconnected.  Bounded drop-oldest like the finished ring.
        self._retired_signatures: "OrderedDict[str, Any]" = OrderedDict()
        self._retired_lock = threading.Lock()
        self.registry.on_close = self._retire_signature
        self._listener: Optional[socket.socket] = None
        self._endpoint: Optional[Endpoint] = None
        self._running = threading.Event()
        self._stopped = threading.Event()
        self._ready: "Queue[Optional[StreamState]]" = Queue()
        self._sched_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> Endpoint:
        if self._endpoint is None:
            raise ServiceError("server is not started")
        return self._endpoint

    def start(self) -> Endpoint:
        """Bind, spawn the thread groups, and return the bound endpoint."""
        if self._running.is_set():
            raise ServiceError("server already started")
        self._recover()
        cfg = self.config
        if cfg.endpoint.kind == "unix":
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(cfg.endpoint.path)
            self._endpoint = cfg.endpoint
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((cfg.endpoint.host, cfg.endpoint.port))
            host, port = listener.getsockname()[:2]
            self._endpoint = replace(cfg.endpoint, host=host, port=port)
        listener.listen(128)
        # Closing a listener does not reliably wake a thread blocked in
        # accept(); a short timeout lets the accept loop re-check the
        # running flag instead.  (Accepted sockets stay blocking.)
        listener.settimeout(0.2)
        self._listener = listener
        self._running.set()
        self._stopped.clear()

        self._spawn(self._accept_loop, "incprofd-accept")
        for i in range(cfg.workers):
            self._spawn(self._worker_loop, f"incprofd-worker-{i}")
        self._spawn(self._housekeeping_loop, "incprofd-housekeeping")
        if self.store is not None:
            # The store runs its own maintenance thread (flush pending
            # buffers into segments, tier migration, artifact GC) so a
            # slow compaction never stalls the housekeeping cadence.
            self.store.start_compactor(interval=cfg.store_compact_interval)
        if cfg.metrics_port is not None:
            self.metrics_http = MetricsHTTPServer(
                lambda: render_prometheus(self.stats()),
                host=cfg.metrics_host, port=cfg.metrics_port)
            self.metrics_http.start()
        if cfg.dashboard_port is not None:
            title = (f"incprofd {cfg.worker_id} analytics" if cfg.worker_id
                     else "incprofd analytics")
            self.dashboard_http = DashboardServer(
                self.fleet_analytics_report,
                host=cfg.dashboard_host, port=cfg.dashboard_port,
                title=title)
            self.dashboard_http.start()
        self.log.info(
            "server-started",
            endpoint=str(self._endpoint), workers=cfg.workers,
            policy=cfg.policy,
            restored_streams=len(self.restored_streams),
            metrics_url=(self.metrics_http.url
                         if self.metrics_http is not None else None))
        return self._endpoint

    def _recover(self) -> None:
        """Restore registry state from the checkpoint directory, if any.

        A corrupt checkpoint is quarantined (moved aside, never deleted)
        and the daemon starts fresh; the quarantine path is kept on the
        server for operators to inspect.
        """
        if self.checkpoints is None:
            return
        payload, quarantined = self.checkpoints.load_or_quarantine()
        self.quarantined_checkpoint = quarantined
        if quarantined is not None:
            self.log.warning("checkpoint-quarantined", path=str(quarantined))
        if payload is None:
            return
        restored = restore_registry(self.registry, payload, self.template,
                                    adaptive=self.adaptive)
        for state in restored:
            state.queue = BoundedStreamQueue(self.config.queue_capacity,
                                             self.config.policy)
            if state.tracker is not None:
                self._watch_refits(state, state.tracker)
        self.restored_streams = [s.stream_id for s in restored]
        # Traces survive restarts alongside the registry (extra payload
        # keys are ignored by older restore paths, so this is additive).
        self.traces.restore_rows(payload.get("traces", []))

    def checkpoint_now(self) -> None:
        """Write one checkpoint immediately (no-op without a directory)."""
        if self.checkpoints is not None:
            payload = snapshot_registry(self.registry)
            payload["traces"] = self.traces.export_rows()
            self.checkpoints.write(payload)

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def stop(self) -> None:
        """Stop accepting, unblock everything, and join the thread groups."""
        if not self._running.is_set():
            return
        self._running.clear()
        if self.metrics_http is not None:
            self.metrics_http.stop()
        if self.dashboard_http is not None:
            self.dashboard_http.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for state in self.registry.active():
            if state.queue is not None:
                state.queue.close()
        for _ in range(self.config.workers):
            self._ready.put(None)
        current = threading.current_thread()
        for thread in self._threads:
            if thread is not current:
                thread.join(timeout=5.0)
        try:
            # Final checkpoint after the workers quiesce, so an orderly
            # shutdown persists exactly the classified state (including
            # any refit artifacts still queued for persistence).
            self._flush_model_saves()
            self.checkpoint_now()
        except (CheckpointError, OSError) as exc:
            self.log.warning("final-checkpoint-failed", error=str(exc))
        if self.store is not None:
            try:
                # close() stops the compactor and flushes pending
                # buffers into final (partial) segments.
                self.store.close()
            except (ReproError, OSError) as exc:
                self.log.warning("store-close-failed", error=str(exc))
        self.log.info("server-stopped",
                      processed=self.metrics.processed,
                      streams=len(self.registry))
        self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (e.g. via a shutdown control)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "PhaseMonitorServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # socket front end
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conns_lock:
                self._conns.append(conn)
            self._spawn(lambda c=conn: self._handle_conn(c), "incprofd-conn")

    def _handle_conn(self, conn: socket.socket) -> None:
        self.metrics.note_connection()
        enable_nodelay(conn)
        reader = FrameReader(conn)
        fh = conn.makefile("wb")
        # Replies follow the version this connection's hello negotiated
        # (v1 until one arrives): a v2 publisher gets packed snapshot
        # acks, everyone else plain JSON.
        wire_version = PROTOCOL_VERSION

        def send(reply: Reply) -> None:
            # Corked replies: under a pipelined submission window the
            # next request is usually already buffered, so defer the
            # flush and answer the whole burst with one send.  With a
            # single-shot client nothing is ever buffered and this
            # degenerates to flush-per-reply.
            fh.write(encode_message(reply, version=wire_version))
            if not reader.buffered_frame():
                fh.flush()

        try:
            while self._running.is_set():
                try:
                    payload = reader.read_frame()
                except ProtocolError:
                    # Framing is broken: the byte stream lost sync, the
                    # connection cannot be trusted any further.
                    self.metrics.note_protocol_error()
                    break
                if payload is None:
                    break
                try:
                    # Lazy gmon: a binary snapshot is admitted on header
                    # validation alone; the classify worker pays the
                    # parse off this reader thread's critical path.
                    msg = decode_payload(payload, lazy_gmon=True)
                except ProtocolError as exc:
                    # The frame boundary held — reject the message, keep
                    # the connection.
                    self.metrics.note_protocol_error()
                    send(Reply(ok=False, error=str(exc)))
                    continue
                reply = self._dispatch(msg)
                if isinstance(msg, Hello) and reply.ok:
                    wire_version = int(
                        reply.data.get("protocol", PROTOCOL_VERSION))
                action = (self.faults.on_reply(msg.TYPE)
                          if self.faults is not None else None)
                if action is not None:
                    self.metrics.note_fault_injected()
                    if action.kind == DELAY:
                        time.sleep(action.delay)
                    elif action.kind == DROP:
                        continue
                    elif action.kind == CORRUPT:
                        fh.flush()
                        fh.write(CORRUPT_FRAME)
                        fh.flush()
                        continue
                    elif action.kind == CLOSE:
                        break
                send(reply)
                if (reply.ok and isinstance(msg, Control)
                        and msg.command == "shutdown"):
                    fh.flush()
                    # The reply is flushed; now it is safe to tear the
                    # server down.  stop() joins reader threads, so it
                    # must run on a helper thread, not this one.
                    threading.Thread(target=self.stop,
                                     name="incprofd-stopper",
                                     daemon=True).start()
                    break
        except (OSError, ValueError):
            pass  # peer vanished mid-write; nothing to answer
        finally:
            try:
                fh.close()
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, msg: Message) -> Reply:
        try:
            if isinstance(msg, Hello):
                return self._on_hello(msg)
            if isinstance(msg, SnapshotMsg):
                return self._on_snapshot(msg)
            if isinstance(msg, HeartbeatMsg):
                return self._on_heartbeat(msg)
            if isinstance(msg, Control):
                return self._on_control(msg)
            if isinstance(msg, Bye):
                return self._on_bye(msg)
        except ServiceError as exc:
            # Every service error carries a stable wire code so clients
            # can raise the matching typed exception from the reply.
            return Reply(ok=False, error=str(exc), data={"code": exc.code})
        return Reply(ok=False, error=f"unhandled message {type(msg).__name__}")

    # ------------------------------------------------------------------
    # fleet membership
    # ------------------------------------------------------------------
    def _fleet_fields(self, data: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp fleet identity onto a reply (no-op outside fleet mode).

        Single-daemon deployments must keep byte-identical replies, so
        these keys only appear when a ``worker_id`` is configured.
        """
        if self.config.worker_id:
            data["worker_id"] = self.config.worker_id
            data["ring_generation"] = (self.ring.generation
                                       if self.ring is not None else 0)
        return data

    def _check_owner(self, stream_id: str) -> Optional[Reply]:
        """A ``wrong-worker`` reply when the ring assigns the stream away.

        Enforcement needs both a fleet identity and a pushed ring; a
        worker that never saw a ``ring-update`` accepts everything (the
        supervisor pushes the ring before admitting traffic).  The
        refusal means "not processed, safe to re-resolve and resend".
        """
        cfg = self.config
        ring = self.ring
        if not cfg.worker_id or ring is None:
            return None
        owner = ring.lookup_or_none(stream_id)
        if owner is None or owner == cfg.worker_id:
            return None
        # Note a worker *removed* from the installed ring refuses too:
        # a live-but-evicted worker silently accepting streams it no
        # longer owns is a split brain, not a convenience.
        self.metrics.note_wrong_worker()
        return wrong_worker_reply(owner, cfg.worker_id, ring.generation)

    def _misplaced_streams(self) -> List[str]:
        """Live streams the current ring assigns to some other worker."""
        cfg = self.config
        ring = self.ring
        if not cfg.worker_id or ring is None or len(ring) == 0:
            return []
        return sorted(
            state.stream_id for state in self.registry.active()
            if ring.lookup_or_none(state.stream_id) != cfg.worker_id)

    def _install_ring(self, args: Dict[str, Any]) -> Reply:
        """Handle a ``ring-update`` control: adopt new fleet membership.

        Stale pushes (lower generation than the installed ring) are
        refused so a delayed update can never roll the membership back.
        The reply names this worker's now-misplaced streams so the
        supervisor can migrate them.
        """
        ring_obj = args.get("ring")
        if not isinstance(ring_obj, dict):
            raise ServiceError("ring-update needs a 'ring' object")
        try:
            ring = HashRing.from_obj(ring_obj)
        except ValidationError as exc:
            raise ServiceError(str(exc)) from exc
        current = self.ring
        if current is not None and ring.generation < current.generation:
            return Reply(ok=False,
                         error=f"stale ring generation {ring.generation} "
                               f"(installed: {current.generation})",
                         data=self._fleet_fields({}))
        self.ring = ring
        self.log.info("ring-updated", generation=ring.generation,
                      members=ring.members())
        return Reply(ok=True, data=self._fleet_fields({
            "generation": ring.generation,
            "members": ring.members(),
            "misplaced": self._misplaced_streams(),
        }))

    def _adopt_stream(self, args: Dict[str, Any]) -> Reply:
        """Handle an ``adopt-stream`` control: install a migrated stream.

        The supervisor reads the dead worker's checkpoint and sends each
        orphaned stream record to its new ring owner.  Adoption is
        guarded against the race where the publisher reconnected first:
        live state that has already processed at least as far as the
        checkpoint wins (adopting would roll ``processed_seq`` back and
        reclassify intervals).
        """
        obj = args.get("stream")
        if not isinstance(obj, dict):
            raise ServiceError("adopt-stream needs a 'stream' object")
        try:
            state = _stream_from_obj(obj, self.template, adaptive=self.adaptive)
        except CheckpointError as exc:
            raise ServiceError(f"bad stream record: {exc}") from exc
        live = self.registry.get_or_none(state.stream_id)
        if live is not None and live.processed_seq >= state.processed_seq:
            return Reply(ok=True, data=self._fleet_fields({
                "stream_id": state.stream_id,
                "adopted": False,
                "reason": "live-state-newer",
                "resume_from": live.last_seq + 1,
            }))
        state.queue = BoundedStreamQueue(self.config.queue_capacity,
                                         self.config.policy)
        if state.tracker is not None:
            self._watch_refits(state, state.tracker)
        self.registry.adopt(state)
        self.log.info("stream-adopted", stream_id=state.stream_id,
                      processed_seq=state.processed_seq)
        return Reply(ok=True, data=self._fleet_fields({
            "stream_id": state.stream_id,
            "adopted": True,
            "resume_from": state.last_seq + 1,
        }))

    def _on_hello(self, msg: Hello) -> Reply:
        denial = self._check_owner(msg.stream_id)
        if denial is not None:
            return denial
        state = self.registry.get_or_none(msg.stream_id)
        resumed = False
        if state is not None:
            if not msg.resume:
                raise StreamConflictError(
                    f"stream {msg.stream_id!r} is already registered")
            # Reconnect-and-resume: re-attach to the live (or restored)
            # stream instead of rejecting the duplicate hello.
            if state.queue is None:
                state.queue = BoundedStreamQueue(self.config.queue_capacity,
                                                 self.config.policy)
            self.registry.touch(msg.stream_id)
            resumed = True
        else:
            tracker = None
            if self.template is not None:
                tracker = self.template.spawn(zero_start=True,
                                              adaptive=self.adaptive)
            state = self.registry.register(msg.stream_id, app=msg.app,
                                           rank=msg.rank, tracker=tracker)
            state.queue = BoundedStreamQueue(self.config.queue_capacity,
                                             self.config.policy)
            if tracker is not None:
                self._watch_refits(state, tracker)
        advertised = [v for v in SUPPORTED_PROTOCOLS
                      if v <= self.config.max_protocol]
        return Reply(ok=True, data=self._fleet_fields({
            "stream_id": msg.stream_id,
            "policy": self.config.policy,
            "queue_capacity": self.config.queue_capacity,
            # Codec negotiation: the highest version both sides speak.
            # A pre-v2 client never sent ``protocols`` (its parsed Hello
            # defaults to v1 only) and ignores these reply keys.
            "protocol": negotiate(msg.protocols, advertised),
            "protocols": advertised,
            "classifying": state.tracker is not None,
            "refitting": (state.tracker is not None
                          and self.adaptive is not None),
            "model_version": (state.tracker.model_version
                              if state.tracker is not None else None),
            "resumed": resumed,
            # The next sequence number the server wants: everything at or
            # below ``last_seq`` is admitted (or, after a restart,
            # classified-and-checkpointed) — the publisher rewinds or
            # fast-forwards to exactly this point.
            "resume_from": state.last_seq + 1,
        }))

    def _on_snapshot(self, msg: SnapshotMsg) -> Reply:
        denial = self._check_owner(msg.stream_id)
        if denial is not None:
            return denial
        state = self.registry.get(msg.stream_id)
        # One lock trip covers touch, duplicate check, and sequence
        # accounting.  The duplicate check is against ``last_seq``
        # (admitted) rather than ``processed_seq`` (classified): a
        # pipelined resend can race the old torn connection's handler,
        # which may still drain buffered frames after the resume hello
        # answered — the first copy sits in the queue, not yet
        # classified.  Checkpoints anchor ``last_seq`` at
        # ``processed_seq``, so after a restart or adoption nothing
        # pending is mistaken for admitted.
        if not state.admit_sequence(msg.seq, self.registry.now()):
            # A replay raced an adoption (the publisher resumed from an
            # older anchor than this worker's state) or a torn
            # connection's late drain.  The interval is already held
            # here — classified, or queued for exactly-once
            # classification — ack it without enqueuing so a resend can
            # never classify the same interval twice.
            data: Dict[str, Any] = {"outcome": "duplicate", "seq": msg.seq,
                                    "trace": msg.trace_id}
            if state.tracker is not None:
                data["model_version"] = state.tracker.model_version
            return Reply(ok=True, data=data)
        # Server-side minting keeps untraced publishers traceable: every
        # admitted interval has a trace id, client-supplied or not.
        trace_id = msg.trace_id or new_trace_id()
        self.traces.begin(trace_id, msg.stream_id, msg.seq)
        t0 = time.perf_counter()
        try:
            outcome = state.queue.put((msg.seq, msg.gmon, trace_id, t0),
                                      timeout=self.config.block_timeout)
        except ServiceError as exc:
            self.traces.add_span(trace_id, "enqueue",
                                 time.perf_counter() - t0)
            self.metrics.note_rejected()
            with state.lock:
                state.rejected += 1
            return Reply(ok=False, error=str(exc),
                         data={"outcome": REJECTED, "seq": msg.seq,
                               "trace": trace_id,
                               "code": BackpressureError.code})
        enqueue_seconds = time.perf_counter() - t0
        self.traces.add_span(trace_id, "enqueue", enqueue_seconds)
        if self.selfekg is not None:
            self.selfekg.record("ingest", enqueue_seconds)
        if outcome == REJECTED:
            self.metrics.note_rejected()
            with state.lock:
                state.rejected += 1
            # Every snapshot reply echoes its sequence number so a
            # pipelined publisher can line acks up with sends.
            return Reply(ok=False, error="queue full",
                         data={"outcome": REJECTED, "seq": msg.seq,
                               "trace": trace_id,
                               "code": BackpressureError.code})
        self.metrics.note_ingested()
        with state.lock:
            state.enqueued += 1
        if outcome == DROPPED_OLDEST:
            self.metrics.note_dropped_oldest()
            with state.lock:
                state.dropped_oldest += 1
        self._schedule(state)
        data: Dict[str, Any] = {"outcome": outcome, "seq": msg.seq,
                                "trace": trace_id}
        if state.tracker is not None:
            # The stream's current model version rides on every snapshot
            # reply — versions only increase, so a publisher watching the
            # sequence sees each hot swap as a monotone step.
            data["model_version"] = state.tracker.model_version
        return Reply(ok=True, data=data)

    def _on_heartbeat(self, msg: HeartbeatMsg) -> Reply:
        denial = self._check_owner(msg.stream_id)
        if denial is not None:
            return denial
        state = self.registry.get(msg.stream_id)
        self.registry.touch(msg.stream_id)
        for record in msg.records:
            self.transport(record)
        self.metrics.note_heartbeats(len(msg.records))
        with state.lock:
            state.heartbeats += len(msg.records)
        return Reply(ok=True, data={"accepted": len(msg.records)})

    def _on_control(self, msg: Control) -> Reply:
        if msg.command == "ping":
            return Reply(ok=True, data=self._fleet_fields({"version": 1}))
        if msg.command == "stats":
            data = self.stats()
            if (msg.args or {}).get("latency_window"):
                # Raw window on request: lets a fleet router compute
                # *exact* merged percentiles instead of approximating
                # from per-worker quantiles.
                data["latency_window"] = self.metrics.classify_latency.values()
            return Reply(ok=True, data=data)
        if msg.command == "ring-update":
            return self._install_ring(msg.args or {})
        if msg.command == "adopt-stream":
            return self._adopt_stream(msg.args or {})
        if msg.command == "fleet-status":
            return Reply(ok=True, data=self.fleet_status())
        if msg.command == "metrics":
            return Reply(ok=True, data={
                "text": render_prometheus(self.stats()),
                "content_type": CONTENT_TYPE,
            })
        if msg.command == "trace":
            args = msg.args or {}
            wanted = args.get("trace_id")
            if wanted:
                row = self.traces.get(str(wanted))
                if row is None:
                    return Reply(ok=False,
                                 error=f"unknown trace id {wanted!r}")
                return Reply(ok=True, data={"traces": [row]})
            limit = int(args.get("limit", 50))
            rows = self.traces.rows(
                stream_id=args.get("stream_id"),
                limit=limit,
                completed_only=bool(args.get("completed_only", False)))
            return Reply(ok=True, data={"traces": rows,
                                        "stats": self.traces.stats()})
        if msg.command == "fleet_analytics":
            args = msg.args or {}
            if args.get("signatures_only"):
                # A fleet router merges raw signatures from every worker
                # and clusters once, fleet-wide; no local pass needed.
                return Reply(ok=True, data=self._fleet_fields({
                    "signatures": [s.to_obj()
                                   for s in self.stream_signatures()]}))
            kwargs: Dict[str, Any] = {}
            if "kmax" in args:
                kwargs["kmax"] = int(args["kmax"])
            if "drift_window" in args:
                kwargs["drift_window"] = int(args["drift_window"])
            return Reply(ok=True, data=self.fleet_analytics_report(**kwargs))
        if msg.command == "shutdown":
            # The connection handler triggers the actual stop *after*
            # flushing this reply, so the client always sees it.
            return Reply(ok=True, data={"stopping": True})
        return Reply(ok=False, error=f"unknown control command {msg.command!r}")

    def _on_bye(self, msg: Bye) -> Reply:
        denial = self._check_owner(msg.stream_id)
        if denial is not None:
            return denial
        state = self.registry.get(msg.stream_id)
        drained = self._drain(state, timeout=self.config.block_timeout)
        self.registry.close(msg.stream_id)
        data: Dict[str, Any] = {
            "drained": drained,
            "processed": state.processed,
            "novel": state.novel,
            "phase_sequence": state.phase_sequence(),
        }
        if state.tracker is not None:
            data["model_version"] = state.tracker.model_version
            # Which model classified each interval, parallel to
            # phase_sequence — the client-side record of every hot swap.
            data["model_versions"] = state.tracker.version_sequence()
            data["refits"] = [e.to_obj()
                              for e in state.tracker.refit_events]
        return Reply(ok=True, data=self._fleet_fields(data))

    def _drain(self, state: StreamState, timeout: float) -> bool:
        """Wait until every accepted snapshot of ``state`` is classified."""
        deadline = time.monotonic() + timeout
        while state.lag > 0:
            if time.monotonic() >= deadline or not self._running.is_set():
                return False
            time.sleep(0.002)
        return True

    # ------------------------------------------------------------------
    # live refits
    # ------------------------------------------------------------------
    def _watch_refits(self, state: StreamState,
                      tracker: OnlinePhaseTracker) -> None:
        """Observe a stream tracker's hot swaps (metrics, log, artifact).

        The listener runs under the tracker's lock, so it only captures
        cheap state: the trained-state dict is queued and the artifact
        write happens on the housekeeping thread.
        """
        def on_refit(trk: OnlinePhaseTracker, event) -> None:
            self.metrics.note_refit()
            with state.lock:
                state.refits += 1
            self.log.info(
                "model-refit", stream_id=state.stream_id,
                version=event.version, old_k=event.old_k, new_k=event.new_k,
                interval_index=event.interval_index, reason=event.reason)
            if self.checkpoints is not None:
                self._model_saves.append(
                    (state.stream_id, event.version, trk.trained_state()))

        tracker.add_refit_listener(on_refit)

    def _flush_model_saves(self) -> None:
        """Persist queued refit models as versioned ``.ipm`` artifacts."""
        if self.checkpoints is None:
            self._model_saves.clear()
            return
        while self._model_saves:
            stream_id, version, model_state = self._model_saves.popleft()
            payload = {
                "kind": "phase-model",
                "model": model_state,
                "meta": {"stream_id": stream_id, "model_version": version,
                         "source": "live-refit"},
            }
            path = (self.checkpoints.directory
                    / layout.versioned_model_name(stream_id, version))
            try:
                atomic_write_bytes(
                    path, pack_artifact(payload, MODEL_MAGIC, MODEL_SCHEMA))
            except OSError as exc:
                self.log.warning("model-artifact-failed", path=str(path),
                                 error=str(exc))

    # ------------------------------------------------------------------
    # worker pool + scheduler
    # ------------------------------------------------------------------
    def _schedule(self, state: StreamState) -> None:
        """Put a stream on the ready queue unless a worker already has it."""
        with self._sched_lock:
            if not state.scheduled:
                state.scheduled = True
                self._ready.put(state)

    def _worker_loop(self) -> None:
        while True:
            try:
                state = self._ready.get(timeout=0.5)
            except Empty:
                if not self._running.is_set():
                    return
                continue
            if state is None:
                return
            states = [state]
            # Cross-stream coalescing: opportunistically take more ready
            # streams so this tick classifies all of them in one
            # vectorized call.  Per-stream ordering is untouched — the
            # ``scheduled`` flag still guarantees a stream is owned by at
            # most one worker at a time.
            while len(states) < self.config.coalesce_streams:
                try:
                    extra = self._ready.get_nowait()
                except Empty:
                    break
                if extra is None:
                    # A shutdown token meant for some worker; hand it
                    # back and stop coalescing.
                    self._ready.put(None)
                    break
                states.append(extra)
            work = [(st, st.queue.pop_batch(self.config.batch_size))
                    for st in states]
            work = [(st, batch) for st, batch in work if batch]
            if work:
                self._classify_many(work)
            with self._sched_lock:
                for st in states:
                    if len(st.queue):
                        self._ready.put(st)
                    else:
                        st.scheduled = False

    def _classify_batch(self, state: StreamState,
                        batch: List[Tuple[int, GmonData, str, float]]) -> None:
        """Classify one drained batch of a single stream's snapshots."""
        with state.work_lock:
            self._classify_work_locked([(state, batch)])

    def _classify_many(
        self, work: List[Tuple[StreamState, List[Tuple[int, GmonData, str, float]]]],
    ) -> None:
        """Classify drained batches of one or more streams in one tick.

        The single-stream case routes through :meth:`_classify_batch` so
        per-instance wrappers (tests, instrumentation) keep intercepting
        the classic path.  Holding several ``work_lock``\\ s at once is
        deadlock-free: each stream here is exclusively owned by this
        worker (its ``scheduled`` flag is set), and every other
        ``work_lock`` taker (the checkpointer) holds at most one at a
        time, so no cycle can form.
        """
        if len(work) == 1:
            self._classify_batch(work[0][0], work[0][1])
            return
        acquired: List[StreamState] = []
        try:
            for state, _batch in work:
                state.work_lock.acquire()
                acquired.append(state)
            self._classify_work_locked(work)
        finally:
            for state in reversed(acquired):
                state.work_lock.release()

    def _classify_work_locked(
        self, work: List[Tuple[StreamState, List[Tuple[int, GmonData, str, float]]]],
    ) -> None:
        """Difference + classify + commit for one coalesced worker tick.

        Differencing stays per-snapshot (each delta depends on its
        predecessor and may fail independently), but classification of
        *every* stream's profiles happens in one cross-stream vectorized
        call — :func:`~repro.core.online.classify_across` pools streams
        whose trackers share an identical frozen model into a single
        NumPy distance computation.  Each batch runs under its stream's
        ``work_lock`` so a concurrent checkpoint never captures the
        differencer advanced past the recorded history.
        """
        start = time.perf_counter()
        total_items = 0
        preps: List[Tuple[StreamState, List[Tuple[int, GmonData, str, float]],
                          List[Any], int]] = []
        for state, batch in work:
            total_items += len(batch)
            errors = 0
            # Universe-projected delta vectors (see delta_vector) — the
            # classify pass consumes them without re-vectorizing.
            profiles: List[Any] = []
            if state.tracker is not None:
                for _seq, gmon, _tid, _enq in batch:
                    try:
                        if isinstance(gmon, GmonBlob):
                            gmon = gmon.load()
                        profile = state.tracker.delta_vector(gmon)
                    except ReproError:
                        # A single inconsistent snapshot (e.g. mismatched
                        # sample period) must not take the worker down.
                        errors += 1
                        self.metrics.note_ingest_error()
                        continue
                    if profile is not None:
                        profiles.append(profile)
            preps.append((state, batch, profiles, errors))
        diffed = time.perf_counter()
        diff_seconds = diffed - start
        groups = [(state.tracker, profiles)
                  for state, _batch, profiles, _err in preps
                  if state.tracker is not None]
        tracked_groups = classify_across(groups)
        classify_seconds = time.perf_counter() - diffed
        if groups:
            self.metrics.note_stage("difference", diff_seconds, total_items)
            self.metrics.note_stage(
                "classify", classify_seconds,
                sum(len(profiles) for _trk, profiles in groups))
        end = time.perf_counter()
        total_counted = sum(len(batch) - errors
                            for _s, batch, _p, errors in preps)
        per_item = (end - start) / max(1, total_counted)
        tracked_iter = iter(tracked_groups)
        for state, batch, _profiles, errors in preps:
            tracked: List[Any] = (list(next(tracked_iter))
                                  if state.tracker is not None else [])
            counted = len(batch) - errors
            novel_count = sum(1 for t in tracked if t.is_novel)
            # Primed first snapshots and tracker-less streams still
            # count as processed work, exactly as before batching.
            self.metrics.note_processed_batch(count=counted,
                                              novel=novel_count,
                                              latency=per_item)
            with state.lock:
                state.processed += len(batch)
                state.novel += novel_count
                # The resume anchor: the highest sequence number this
                # stream has actually consumed (checkpoints persist
                # exactly this).
                state.processed_seq = max(state.processed_seq,
                                          max(item[0] for item in batch))
            if self.store is not None:
                self._archive_batch(state, batch)
        aggregate_seconds = time.perf_counter() - end
        self.metrics.note_stage("aggregate", aggregate_seconds, total_items)
        if self.selfekg is not None:
            if groups:
                self.selfekg.record("difference", diff_seconds)
                self.selfekg.record("classify", classify_seconds)
            self.selfekg.record("aggregate", aggregate_seconds)
        # Per-item share of the batched stages closes out each trace.
        # Spans land in one batched call — the dequeue span (submission
        # to drain, measured against this tick's start) included — so
        # the trace store's lock is taken once per tick, not four times
        # per interval.
        classify_share = (end - start) / max(1, total_items)
        aggregate_share = aggregate_seconds / max(1, total_items)
        closes: List[Tuple[str, List[Tuple[str, float]]]] = []
        origins: List[Tuple[StreamState, int]] = []
        for state, batch, _profiles, _errors in preps:
            for seq, _gmon, trace_id, enq_time in batch:
                closes.append((trace_id,
                               [("dequeue", max(0.0, start - enq_time)),
                                ("classify", classify_share),
                                ("aggregate", aggregate_share)]))
                origins.append((state, seq))
        for (state, seq), record in zip(origins,
                                        self.traces.finish_batch(closes)):
            if (record is not None
                    and record.total_seconds
                    >= self.config.slow_op_threshold):
                self.log.warning(
                    "slow-op", trace_id=record.trace_id,
                    stream_id=state.stream_id, seq=seq,
                    total_seconds=round(record.total_seconds, 6),
                    spans={k: round(v, 6)
                           for k, v in record.spans.items()})

    def _archive_batch(
        self, state: StreamState,
        batch: List[Tuple[int, GmonData, str, float]],
    ) -> None:
        """Append one classified batch's raw gmon bytes to the archive.

        Runs under the stream's ``work_lock`` after commit, so per-stream
        interval order is preserved.  A sequence number at or below the
        store's last archived index (a resume overlap after a restart)
        is skipped — the bytes are already durable.  Archive failures
        are logged, never fatal: the store is an observability surface,
        not the classification path.
        """
        store = self.store
        if store is None:
            return
        for seq, gmon, _trace_id, _enq in batch:
            try:
                if isinstance(gmon, GmonBlob):
                    store.append(state.stream_id, seq, gmon.load(),
                                 raw=gmon.raw)
                else:
                    store.append(state.stream_id, seq, gmon)
            except CollectorError:
                continue  # duplicate/rewound seq: already archived
            except (ReproError, OSError) as exc:
                self.log.warning("store-append-failed",
                                 stream_id=state.stream_id, seq=seq,
                                 error=str(exc))

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def _housekeeping_loop(self) -> None:
        while self._running.is_set():
            if self._stopped.wait(self.config.housekeeping_interval):
                return
            if not self._running.is_set():
                return
            expired = self.registry.expire_idle()
            if expired:
                self.log.info("streams-expired", count=len(expired))
            if self.selfekg is not None:
                # Flush completed self-heartbeat intervals into the LDMS
                # transport before the sampler pull below picks them up.
                self.selfekg.tick()
            self.transport.sample()
            self._flush_model_saves()
            if self.checkpoints is not None and self.checkpoints.due():
                try:
                    self.checkpoint_now()
                    self.metrics.note_checkpoint()
                except (CheckpointError, OSError) as exc:
                    # A failed write must not kill housekeeping; the next
                    # cadence retries and the previous checkpoint file is
                    # still intact (writes are atomic).
                    self.log.warning("checkpoint-failed", error=str(exc))

    # ------------------------------------------------------------------
    # cross-stream analytics
    # ------------------------------------------------------------------
    def _retire_signature(self, state: StreamState) -> None:
        """Registry close hook: keep a finished stream's final signature."""
        if state.tracker is None or not state.processed:
            return
        from repro.fleet.analytics import PhaseSignature

        signature = PhaseSignature.from_tracker(
            state.stream_id, state.tracker,
            worker_id=self.config.worker_id)
        with self._retired_lock:
            self._retired_signatures.pop(state.stream_id, None)
            self._retired_signatures[state.stream_id] = signature
            while (len(self._retired_signatures)
                   > self.config.finished_capacity):
                self._retired_signatures.popitem(last=False)

    def stream_signatures(self) -> List[Any]:
        """Phase signatures of every live stream with a tracker, plus
        the retained final signatures of recently finished streams."""
        # Imported lazily: repro.fleet pulls the service layer in, so a
        # top-level import here would be circular.
        from repro.fleet.analytics import PhaseSignature

        out = []
        live = set()
        for state in self.registry.active():
            if state.tracker is None:
                continue
            live.add(state.stream_id)
            out.append(PhaseSignature.from_tracker(
                state.stream_id, state.tracker,
                worker_id=self.config.worker_id))
        with self._retired_lock:
            retired = [s for sid, s in self._retired_signatures.items()
                       if sid not in live]
        out.extend(retired)
        return out

    def fleet_analytics_report(self, *, kmax: Optional[int] = None,
                               drift_window: Optional[int] = None,
                               include_signatures: bool = True,
                               ) -> Dict[str, Any]:
        """One cross-stream analytics pass over this daemon's streams.

        Cohort ids are stable across calls (one matcher per daemon
        lifetime); the pass's summary is cached for stats()/Prometheus.
        """
        from repro.fleet.analytics import analyze_signatures

        signatures = self.stream_signatures()
        kwargs: Dict[str, Any] = {"include_signatures": include_signatures}
        if kmax is not None:
            kwargs["kmax"] = kmax
        if drift_window is not None:
            kwargs["drift_window"] = drift_window
        with self._analytics_lock:
            report = analyze_signatures(signatures,
                                        matcher=self._analytics_matcher,
                                        **kwargs)
            self._analytics_summary = {
                "streams": report["n_streams"],
                "cohorts": report["n_cohorts"],
                "anomalies": len(report["anomalies"]),
                "drift_events": len(report["drift_events"]),
                "cohort_sizes": {str(c["cohort"]): c["size"]
                                 for c in report["cohorts"]},
            }
        return self._fleet_fields(report)

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service self-metrics plus live queue depths."""
        depths = {s.stream_id: len(s.queue) for s in self.registry.active()
                  if s.queue is not None}
        snap = self.metrics.snapshot()
        snap["queue_depths"] = depths
        snap["queued_total"] = sum(depths.values())
        snap["streams"] = len(self.registry)
        snap["policy"] = self.config.policy
        snap["workers"] = self.config.workers
        snap["ldms_delivered"] = self.transport.delivered
        snap["restored_streams"] = len(self.restored_streams)
        snap["finished_evicted"] = self.registry.finished_evicted
        snap["traces"] = self.traces.stats()
        self._fleet_fields(snap)
        if self.selfekg is not None:
            snap["self_heartbeats"] = self.selfekg.stage_summary()
        if self.metrics_http is not None:
            snap["metrics_url"] = self.metrics_http.url
        if self.dashboard_http is not None:
            snap["dashboard_url"] = self.dashboard_http.url
        with self._analytics_lock:
            if self._analytics_summary is not None:
                snap["analytics"] = dict(self._analytics_summary)
        if self.checkpoints is not None:
            snap["checkpoint"] = {
                "path": str(self.checkpoints.path),
                "interval": self.checkpoints.interval,
                "writes": self.checkpoints.writes,
                "quarantined": len(self.checkpoints.quarantined),
            }
        if self.store is not None:
            snap["store"] = self.store.describe()
        return snap

    def fleet_status(self) -> Dict[str, Any]:
        """Registry fleet view plus the service metrics snapshot."""
        status = self.registry.fleet_status()
        status["service"] = self.stats()
        return status


def serve(
    tracker_template: Optional[OnlinePhaseTracker],
    config: ServerConfig = ServerConfig(),
    faults: Optional[FaultInjector] = None,
) -> PhaseMonitorServer:
    """Start a daemon and return it (caller owns ``stop``/``wait``)."""
    server = PhaseMonitorServer(tracker_template, config, faults=faults)
    server.start()
    return server
