"""Publishers for ``incprofd``.

:class:`PhaseClient` is the low-level request/reply connection; on top of
it sit the replay helpers (stream a :class:`~repro.incprof.session.Session`
run or a :class:`~repro.incprof.storage.SampleStore` directory through the
service, one stream per rank) and :class:`SyntheticLoadGenerator`, which
manufactures deterministic snapshot streams for throughput and
backpressure testing without running a workload at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.gprof.gmon import GmonData
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.service.protocol import (
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Message,
    Reply,
    SnapshotMsg,
    read_message,
    write_message,
)
from repro.util.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ValidationError,
)


class PhaseClient:
    """One connection to the daemon; strict request/reply, thread-safe."""

    def __init__(self, endpoint: Endpoint, timeout: Optional[float] = 30.0) -> None:
        self.endpoint = endpoint
        self._sock = endpoint.connect(timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def request(self, msg: Message) -> Reply:
        """Send one message and wait for the server's reply."""
        with self._lock:
            write_message(self._fh, msg)
            reply = read_message(self._fh)
        if reply is None:
            raise ServiceError("server closed the connection mid-request")
        if not isinstance(reply, Reply):
            raise ProtocolError(f"expected a reply, got {type(reply).__name__}")
        return reply

    def close(self) -> None:
        try:
            self._fh.close()
        except (OSError, ValueError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "PhaseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # typed requests
    # ------------------------------------------------------------------
    def hello(self, stream_id: str, app: str = "", rank: int = 0) -> Reply:
        return self.request(Hello(stream_id=stream_id, app=app, rank=rank))

    def snapshot(self, stream_id: str, seq: int, gmon: GmonData) -> Reply:
        return self.request(SnapshotMsg(stream_id=stream_id, seq=seq, gmon=gmon))

    def heartbeats(self, stream_id: str, records: Sequence[HeartbeatRecord]) -> Reply:
        return self.request(HeartbeatMsg(stream_id=stream_id, records=list(records)))

    def bye(self, stream_id: str) -> Reply:
        return self.request(Bye(stream_id=stream_id))

    def control(self, command: str, **args) -> Reply:
        return self.request(Control(command=command, args=args))

    def ping(self) -> Reply:
        return self.control("ping")

    def stats(self) -> Reply:
        return self.control("stats")

    def fleet_status(self) -> Reply:
        return self.control("fleet-status")

    def shutdown(self) -> Reply:
        return self.control("shutdown")


@dataclass
class PublishReport:
    """What one stream's replay achieved."""

    stream_id: str
    sent: int = 0
    accepted: int = 0
    dropped_oldest: int = 0
    rejected: int = 0
    novel: int = 0
    processed: int = 0
    drained: bool = False
    phase_sequence: List[int] = field(default_factory=list)
    heartbeats_sent: int = 0
    error: str = ""


def publish_samples(
    endpoint: Endpoint,
    stream_id: str,
    samples: Sequence[GmonData],
    app: str = "",
    rank: int = 0,
    heartbeat_records: Sequence[HeartbeatRecord] = (),
    delay: float = 0.0,
) -> PublishReport:
    """Replay one rank's cumulative snapshot series through the service.

    This is the stream a deployed IncProf runtime would produce: ``hello``,
    one ``snapshot`` per collection interval (plus any AppEKG rows), and an
    orderly ``bye`` whose reply carries the server-side classification.
    """
    report = PublishReport(stream_id=stream_id)
    with PhaseClient(endpoint) as client:
        reply = client.hello(stream_id, app=app, rank=rank)
        if not reply.ok:
            report.error = reply.error
            return report
        for seq, snap in enumerate(samples):
            reply = client.snapshot(stream_id, seq, snap)
            report.sent += 1
            outcome = reply.data.get("outcome", "")
            if reply.ok and outcome == "accepted":
                report.accepted += 1
            elif reply.ok and outcome == "dropped-oldest":
                report.accepted += 1
                report.dropped_oldest += 1
            else:
                report.rejected += 1
            if delay > 0:
                time.sleep(delay)
        if heartbeat_records:
            hb = client.heartbeats(stream_id, heartbeat_records)
            if hb.ok:
                report.heartbeats_sent = int(hb.data.get("accepted", 0))
        reply = client.bye(stream_id)
        if reply.ok:
            report.drained = bool(reply.data.get("drained", False))
            report.processed = int(reply.data.get("processed", 0))
            report.novel = int(reply.data.get("novel", 0))
            report.phase_sequence = [int(p) for p in reply.data.get("phase_sequence", [])]
        else:
            report.error = reply.error
    return report


def publish_session(
    endpoint: Endpoint,
    result,
    stream_prefix: str = "",
    include_heartbeats: bool = True,
    delay: float = 0.0,
) -> Dict[str, PublishReport]:
    """Stream every rank of a :class:`~repro.incprof.session.SessionResult`
    through the service concurrently (one connection + thread per rank)."""
    prefix = stream_prefix or f"{result.app_name}"
    reports: Dict[str, PublishReport] = {}
    reports_lock = threading.Lock()

    def one_rank(rank_result) -> None:
        stream_id = f"{prefix}-r{rank_result.rank}"
        try:
            report = publish_samples(
                endpoint,
                stream_id,
                rank_result.samples,
                app=result.app_name,
                rank=rank_result.rank,
                heartbeat_records=(rank_result.heartbeat_records
                                   if include_heartbeats else ()),
                delay=delay,
            )
        except (ReproError, OSError) as exc:
            # A publisher thread must not die silently: surface the
            # failure (unreachable daemon, dropped connection) in its
            # report instead.
            report = PublishReport(stream_id=stream_id, error=str(exc))
        with reports_lock:
            reports[stream_id] = report

    threads = [threading.Thread(target=one_rank, args=(rr,),
                                name=f"publish-{prefix}-r{rr.rank}")
               for rr in result.per_rank]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return reports


@dataclass
class LoadResult:
    """Aggregate outcome of one synthetic load run."""

    streams: Dict[str, PublishReport]
    elapsed: float
    sent: int
    processed: int
    rejected: int
    dropped_oldest: int

    @property
    def throughput(self) -> float:
        """Client-side intervals/second across all streams."""
        return self.sent / self.elapsed if self.elapsed > 0 else 0.0


class SyntheticLoadGenerator:
    """Deterministic snapshot streams for stress and throughput tests.

    Each stream is a cumulative gmon series over a small function set —
    enough structure for the tracker to classify, cheap enough that the
    generator, not the service, is never the bottleneck in tests.
    """

    def __init__(
        self,
        functions: Sequence[str] = ("kernel", "reduce", "exchange"),
        sample_period: float = 0.01,
        ticks_per_interval: int = 100,
    ) -> None:
        if not functions:
            raise ValidationError("need at least one function")
        self.functions = list(functions)
        self.sample_period = sample_period
        self.ticks_per_interval = ticks_per_interval

    def stream(self, stream_seed: int, n_intervals: int) -> List[GmonData]:
        """One stream's cumulative snapshots (deterministic in the seed)."""
        cumulative = GmonData(sample_period=self.sample_period, rank=stream_seed)
        snapshots: List[GmonData] = []
        n_funcs = len(self.functions)
        for i in range(n_intervals):
            # Rotate the dominant function so streams show phase structure.
            dominant = (stream_seed + i // 4) % n_funcs
            for j, func in enumerate(self.functions):
                share = 0.7 if j == dominant else 0.3 / max(1, n_funcs - 1)
                cumulative.add_ticks(func, int(self.ticks_per_interval * share))
            snap = cumulative.copy()
            snap.timestamp = float(i + 1)
            snapshots.append(snap)
        return snapshots

    def run(
        self,
        endpoint: Endpoint,
        n_streams: int,
        n_intervals: int,
        stream_prefix: str = "load",
        delay: float = 0.0,
    ) -> LoadResult:
        """Publish ``n_streams`` concurrent synthetic streams; aggregate."""
        reports: Dict[str, PublishReport] = {}
        lock = threading.Lock()

        def one(i: int) -> None:
            stream_id = f"{stream_prefix}-{i}"
            try:
                report = publish_samples(endpoint, stream_id,
                                         self.stream(i, n_intervals),
                                         app="synthetic-load", rank=i,
                                         delay=delay)
            except (ReproError, OSError) as exc:
                report = PublishReport(stream_id=stream_id, error=str(exc))
            with lock:
                reports[stream_id] = report

        start = time.monotonic()
        threads = [threading.Thread(target=one, args=(i,), name=f"load-{i}")
                   for i in range(n_streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        return LoadResult(
            streams=reports,
            elapsed=elapsed,
            sent=sum(r.sent for r in reports.values()),
            processed=sum(r.processed for r in reports.values()),
            rejected=sum(r.rejected for r in reports.values()),
            dropped_oldest=sum(r.dropped_oldest for r in reports.values()),
        )
