"""Publishers for ``incprofd``.

:class:`PhaseClient` is the low-level request/reply connection; on top of
it sit the replay helpers (stream a :class:`~repro.incprof.session.Session`
run or a :class:`~repro.incprof.storage.SampleStore` directory through the
service, one stream per rank) and :class:`SyntheticLoadGenerator`, which
manufactures deterministic snapshot streams for throughput and
backpressure testing without running a workload at all.

Failure handling is first-class:

- Error replies raise typed exceptions (:class:`RequestError` subclasses
  carrying the full reply payload) unless the client is built with — or
  the call passes — ``check=False``.
- Connection losses surface as :class:`ConnectionLostError`; the client
  reconnects with exponential backoff + jitter (:class:`RetryPolicy`),
  and every request runs under a per-request deadline.
- Publishers resume rather than blindly resend: after a reconnect they
  re-``hello`` with ``resume=True`` and continue from the sequence
  number the server reports, so a daemon restart (or a dropped reply)
  never produces duplicate classification.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.gprof.gmon import GmonData
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.service.protocol import (
    CODECS,
    PROTOCOL_VERSION,
    ROUTE_REDIRECT,
    ROUTE_WRONG_WORKER,
    ROUTING_CODES,
    SUPPORTED_PROTOCOLS,
    Bye,
    Control,
    Endpoint,
    Hello,
    HeartbeatMsg,
    Message,
    Reply,
    SnapshotMsg,
    encode_message,
    frame_bytes,
    read_message,
    routing_directive,
)
from repro.service.tracing import new_trace_id
from repro.util.errors import (
    ConnectionLostError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    UnknownStreamError,
    ValidationError,
    request_error_from_reply,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and deadline knobs for one client connection.

    ``delay_for(attempt)`` grows ``base_delay * multiplier**attempt`` up
    to ``max_delay``, with symmetric ``jitter`` (a fraction of the raw
    delay) so a restarted daemon is not hit by a thundering herd of
    publishers retrying in lockstep.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    #: Per-request deadline (seconds of silence before the request is
    #: declared lost); None waits forever.
    request_timeout: Optional[float] = 30.0
    connect_timeout: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("need at least one attempt")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValidationError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1:
            raise ValidationError("backoff multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValidationError("jitter must be a fraction in [0, 1]")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


#: Retries disabled: one attempt, fail fast (the pre-retry behaviour).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0,
                       jitter=0.0)

#: Routing-hop budget per request: a redirect chain longer than this
#: (router -> worker -> wrong-worker -> home -> ...) means the fleet's
#: view is churning; surface the routing reply instead of looping.
MAX_ROUTE_HOPS = 4

#: Default in-flight window for pipelined submission once binary v2 is
#: negotiated.  Deep enough to hide one round trip behind the next
#: encode, shallow enough that a resume rewind stays cheap.
PIPELINE_WINDOW = 8


class PhaseClient:
    """One connection to the daemon; strict request/reply, thread-safe.

    ``check=True`` (the default) raises a typed
    :class:`~repro.util.errors.RequestError` subclass on error replies;
    pass ``check=False`` (per client or per call) to get the raw
    :class:`Reply` back instead.  Connection losses raise
    :class:`~repro.util.errors.ConnectionLostError`; :meth:`reconnect`
    re-dials with the policy's backoff, and idempotent requests
    (``ping``/``stats``/``hello``...) retry through it transparently.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        *,
        retry: Optional[RetryPolicy] = None,
        check: bool = True,
        timeout: Optional[float] = None,
        seed: Optional[int] = None,
        follow_routing: bool = True,
        protocols: Sequence[int] = SUPPORTED_PROTOCOLS,
    ) -> None:
        self.endpoint = endpoint
        #: Codec versions this client offers in ``hello``.  Pass ``(1,)``
        #: to pin a client to the JSON wire (benchmark baselines, talking
        #: to a pre-v2 daemon without a handshake round trip).
        self.protocols = tuple(protocols)
        #: The codec actually in use; starts at v1 and upgrades when a
        #: hello reply negotiates higher.  Sticky across reconnects —
        #: every reconnect path re-``hello``\ s, which re-negotiates.
        self.wire_version = PROTOCOL_VERSION
        #: The resolve point this client was built with (in a fleet: the
        #: router).  Redirects move ``endpoint`` to a worker; on a
        #: ``wrong-worker`` refusal or an unreachable worker the client
        #: comes back here to re-resolve.
        self.home = endpoint
        self.retry = retry if retry is not None else RetryPolicy()
        if timeout is not None:
            self.retry = replace(self.retry, request_timeout=timeout)
        self.check = check
        #: Follow fleet routing replies transparently.  A router's own
        #: worker links set this False: the router *is* the resolver, so
        #: a routing reply must surface to it, not be chased.
        self.follow_routing = follow_routing
        self.connect_retries = 0
        self.reconnects = 0
        self.request_retries = 0
        self.redirects = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._sock = None
        self._fh = None
        with self._lock:
            self._connect_locked()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect_locked(self) -> None:
        """Dial with backoff; caller holds the lock."""
        policy = self.retry
        last: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.connect_retries += 1
                time.sleep(policy.delay_for(attempt - 1, self._rng))
            try:
                sock = self.endpoint.connect(timeout=policy.connect_timeout)
                sock.settimeout(policy.request_timeout)
                self._sock = sock
                # Buffer comfortably above one pipeline window of frames
                # so a burst flush is one syscall, not several.
                self._fh = sock.makefile("rwb", buffering=65536)
                return
            except OSError as exc:
                last = exc
        raise RetryExhaustedError(
            f"cannot connect to {self.endpoint} after "
            f"{policy.max_attempts} attempts: {last}",
            attempts=policy.max_attempts, cause=last)

    def _teardown_locked(self) -> None:
        for closer in (self._fh, self._sock):
            if closer is None:
                continue
            try:
                closer.close()
            except (OSError, ValueError):
                pass
        self._fh = None
        self._sock = None

    def reconnect(self) -> None:
        """Tear down the dead connection and re-dial with backoff."""
        with self._lock:
            self._teardown_locked()
            self.reconnects += 1
            self._connect_locked()

    def rehome(self) -> None:
        """Go back to the original endpoint (the router) and re-dial.

        The recovery move when a redirected-to worker died: its address
        is useless now, but the home endpoint can re-resolve the stream's
        new owner.
        """
        self._switch(self.home)

    def _switch(self, endpoint: Endpoint) -> None:
        """Drop the current connection and dial ``endpoint`` instead."""
        with self._lock:
            self._teardown_locked()
            self.endpoint = endpoint
            self.reconnects += 1
            self._connect_locked()

    def close(self) -> None:
        with self._lock:
            self._teardown_locked()

    def __enter__(self) -> "PhaseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request/reply
    # ------------------------------------------------------------------
    def request(self, msg: Message, *, check: Optional[bool] = None,
                idempotent: bool = False) -> Reply:
        """Send one message and wait for the server's reply.

        Transport failures (dead socket, deadline expiry, corrupt reply
        frame) raise :class:`ConnectionLostError` — unless the request is
        ``idempotent``, in which case the client transparently reconnects
        and resends up to the policy's attempt budget.  Requests with
        server-side effects (snapshots, byes) must NOT be blindly resent:
        resume via ``hello(resume=True)`` instead.

        The message is encoded exactly once, up front — every retry,
        redirect hop, and resend reuses the same frame bytes.  An
        oversized message therefore also fails here, locally, before any
        round trip.
        """
        frame = encode_message(msg, version=self.wire_version)
        if not idempotent:
            return self._routed(frame, check)
        last: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.request_retries += 1
                try:
                    self.reconnect()
                except RetryExhaustedError as exc:
                    last = exc
                    break
            try:
                return self._routed(frame, check)
            except ConnectionLostError as exc:
                last = exc
        raise RetryExhaustedError(
            f"request failed after {self.retry.max_attempts} attempts: {last}",
            attempts=self.retry.max_attempts, cause=last)

    def request_raw(self, payload: bytes, *, check: Optional[bool] = None) -> Reply:
        """Send one already-encoded payload verbatim and await the reply.

        The router's forward path: a validated frame payload goes to the
        owning worker byte for byte, with no decode/re-encode in between
        (binary snapshots keep their zero-copy gmon bytes).
        """
        return self._routed(frame_bytes(payload), check)

    def _routed(self, frame: bytes, check: Optional[bool]) -> Reply:
        """One request, transparently following fleet routing replies.

        Routing replies (``redirect``/``wrong-worker``/
        ``worker-unavailable``) mean "not processed, safe to resend
        elsewhere" by protocol contract, so resending here is safe even
        for snapshots.  A redirect with an address dials the owning
        worker; a ``wrong-worker`` refusal (a worker after a rebalance,
        no address known) re-resolves through the home endpoint; an
        unavailable worker backs off first — the supervisor is likely
        mid-restart.  The hop budget keeps a churning fleet from looping
        this client forever.
        """
        reply = self._transact(frame, check=False)
        hops = 0
        while (self.follow_routing and not reply.ok
               and hops < MAX_ROUTE_HOPS):
            directive = routing_directive(reply)
            if directive is None:
                break
            hops += 1
            self.redirects += 1
            if (directive.code == ROUTE_REDIRECT
                    and directive.endpoint is not None):
                try:
                    self._switch(directive.endpoint)
                except RetryExhaustedError:
                    # The redirected-to worker is unreachable (it may
                    # have just died); let home re-resolve instead.
                    time.sleep(self.retry.delay_for(hops - 1, self._rng))
                    self.rehome()
            elif directive.code == ROUTE_WRONG_WORKER:
                self.rehome()
            else:  # worker-unavailable (or an address-less redirect)
                time.sleep(self.retry.delay_for(hops - 1, self._rng))
                self.rehome()
            reply = self._transact(frame, check=False)
        effective = self.check if check is None else check
        if effective and not reply.ok:
            raise request_error_from_reply(reply)
        return reply

    def _transact(self, frame: bytes, check: Optional[bool]) -> Reply:
        with self._lock:
            self._write_frame_locked(frame)
            reply = self._read_reply_locked()
        if not isinstance(reply, Reply):
            raise ProtocolError(f"expected a reply, got {type(reply).__name__}")
        effective = self.check if check is None else check
        if effective and not reply.ok:
            raise request_error_from_reply(reply)
        return reply

    def _write_frame_locked(self, frame: bytes, flush: bool = True) -> None:
        if self._fh is None:
            raise ConnectionLostError("client is disconnected "
                                      "(reconnect first)")
        try:
            self._fh.write(frame)
            if flush:
                self._fh.flush()
        except (OSError, ValueError) as exc:
            self._teardown_locked()
            raise ConnectionLostError(
                f"connection to {self.endpoint} died mid-request: {exc}",
                cause=exc) from exc

    def _read_reply_locked(self) -> Message:
        if self._fh is None:
            raise ConnectionLostError("client is disconnected "
                                      "(reconnect first)")
        try:
            reply = read_message(self._fh)
        except (OSError, ValueError) as exc:
            self._teardown_locked()
            raise ConnectionLostError(
                f"connection to {self.endpoint} died mid-request: {exc}",
                cause=exc) from exc
        except ProtocolError as exc:
            # A corrupt reply frame means the byte stream lost sync;
            # nothing further on this connection can be trusted.
            self._teardown_locked()
            raise ConnectionLostError(
                f"reply stream corrupt: {exc}", cause=exc) from exc
        if reply is None:
            self._teardown_locked()
            raise ConnectionLostError(
                "server closed the connection mid-request")
        return reply

    # ------------------------------------------------------------------
    # pipelined submission primitives
    # ------------------------------------------------------------------
    def send_frame(self, frame: bytes, *, flush: bool = True) -> None:
        """Write one already-encoded frame without waiting for its reply.

        The pipelining half-step: a publisher keeps up to N of these in
        flight and drains the replies with :meth:`read_reply` in send
        order (the server handles each connection's frames sequentially,
        so replies always come back in order).  ``flush=False`` only
        buffers the frame — :meth:`flush_frames` then puts the whole
        burst on the wire at once, one syscall for a full pipeline
        window instead of one per frame (and the server, seeing the
        burst arrive together, corks its replies the same way).
        """
        with self._lock:
            self._write_frame_locked(frame, flush=flush)

    def flush_frames(self) -> None:
        """Flush frames buffered by ``send_frame(flush=False)``."""
        with self._lock:
            if self._fh is None:
                raise ConnectionLostError("client is disconnected "
                                          "(reconnect first)")
            try:
                self._fh.flush()
            except (OSError, ValueError) as exc:
                self._teardown_locked()
                raise ConnectionLostError(
                    f"connection to {self.endpoint} died mid-flush: {exc}",
                    cause=exc) from exc

    def read_reply(self) -> Reply:
        """Read the next in-order reply for a pipelined send."""
        with self._lock:
            reply = self._read_reply_locked()
        if not isinstance(reply, Reply):
            raise ProtocolError(f"expected a reply, got {type(reply).__name__}")
        return reply

    # ------------------------------------------------------------------
    # typed requests
    # ------------------------------------------------------------------
    def hello(self, stream_id: str, app: str = "", rank: int = 0,
              resume: bool = False, *, check: Optional[bool] = None) -> Reply:
        """Register (or resume) a stream and negotiate the wire codec.

        The hello offers this client's ``protocols``; a successful reply
        carries the server's pick in ``data["protocol"]`` and upgrades
        :attr:`wire_version` for every subsequent snapshot.  A reply from
        a pre-v2 server has no ``protocol`` key and leaves the client on
        JSON v1 — the fallback is automatic in both directions.
        """
        reply = self.request(
            Hello(stream_id=stream_id, app=app, rank=rank, resume=resume,
                  protocols=self.protocols),
            check=check, idempotent=resume)
        if reply.ok:
            try:
                negotiated = int(reply.data.get("protocol", PROTOCOL_VERSION))
            except (TypeError, ValueError):
                negotiated = PROTOCOL_VERSION
            if negotiated in CODECS and negotiated in self.protocols:
                self.wire_version = negotiated
            else:
                self.wire_version = PROTOCOL_VERSION
        return reply

    def encode_snapshot(self, stream_id: str, seq: int, gmon: GmonData,
                        trace_id: str = "") -> bytes:
        """Encode one snapshot to a reusable frame at the negotiated codec."""
        return encode_message(
            SnapshotMsg(stream_id=stream_id, seq=seq, gmon=gmon,
                        trace_id=trace_id),
            version=self.wire_version)

    def snapshot(self, stream_id: str, seq: int, gmon: GmonData,
                 *, trace_id: str = "",
                 check: Optional[bool] = None) -> Reply:
        """Submit one snapshot; ``trace_id`` propagates end to end.

        An empty trace id makes the server mint one; either way the reply
        data carries the effective id under ``"trace"``.
        """
        return self.request(SnapshotMsg(stream_id=stream_id, seq=seq,
                                        gmon=gmon, trace_id=trace_id),
                            check=check)

    def heartbeats(self, stream_id: str, records: Sequence[HeartbeatRecord],
                   *, check: Optional[bool] = None) -> Reply:
        return self.request(HeartbeatMsg(stream_id=stream_id,
                                         records=list(records)), check=check)

    def bye(self, stream_id: str, *, check: Optional[bool] = None) -> Reply:
        return self.request(Bye(stream_id=stream_id), check=check)

    def control(self, command: str, *, check: Optional[bool] = None,
                **args) -> Reply:
        return self.request(Control(command=command, args=args),
                            check=check, idempotent=command != "shutdown")

    def ping(self) -> Reply:
        return self.control("ping")

    def stats(self) -> Reply:
        return self.control("stats")

    def fleet_status(self) -> Reply:
        return self.control("fleet-status")

    def fleet_analytics(self, *, kmax: Optional[int] = None,
                        drift_window: Optional[int] = None) -> Reply:
        """Cross-stream cohort/anomaly/drift report (daemon or router)."""
        args: Dict[str, object] = {}
        if kmax is not None:
            args["kmax"] = kmax
        if drift_window is not None:
            args["drift_window"] = drift_window
        return self.control("fleet_analytics", **args)

    def metrics(self) -> str:
        """Prometheus text exposition of the daemon's self-metrics."""
        return str(self.control("metrics").data.get("text", ""))

    def trace(self, trace_id: Optional[str] = None,
              stream_id: Optional[str] = None, limit: int = 50,
              completed_only: bool = False) -> Reply:
        """Query the daemon's trace ring (by id, stream, or most recent)."""
        args: Dict[str, object] = {"limit": limit,
                                   "completed_only": completed_only}
        if trace_id is not None:
            args["trace_id"] = trace_id
        if stream_id is not None:
            args["stream_id"] = stream_id
        return self.control("trace", **args)

    def shutdown(self) -> Reply:
        return self.control("shutdown")


@dataclass
class PublishReport:
    """What one stream's replay achieved."""

    stream_id: str
    sent: int = 0
    accepted: int = 0
    dropped_oldest: int = 0
    rejected: int = 0
    novel: int = 0
    processed: int = 0
    drained: bool = False
    phase_sequence: List[int] = field(default_factory=list)
    heartbeats_sent: int = 0
    error: str = ""
    #: Resilience counters: how many reconnect-and-resume handshakes the
    #: replay needed, how many extra connection dials the backoff made,
    #: and how many snapshot sends were repeats after a resume rewind.
    reconnects: int = 0
    retries: int = 0
    resent: int = 0
    #: Pipelined intervals whose admission ack died with a connection
    #: but whose durability the resume point confirmed; they count in
    #: ``sent``/``accepted`` because the server holds them.
    acks_lost: int = 0
    #: seq -> effective trace id of that submission (client-minted, or
    #: what the server's reply reported for it).
    trace_ids: Dict[int, str] = field(default_factory=dict)
    #: Stream model version observed on each snapshot reply, in send
    #: order — a live refit on the server shows up as a monotone step.
    model_versions: List[int] = field(default_factory=list)
    #: Final model version (from the bye reply), and which version
    #: classified each interval (parallel to ``phase_sequence``).
    model_version: int = 0
    classified_versions: List[int] = field(default_factory=list)


def publish_samples(
    endpoint: Endpoint,
    stream_id: str,
    samples: Sequence[GmonData],
    app: str = "",
    rank: int = 0,
    heartbeat_records: Sequence[HeartbeatRecord] = (),
    delay: float = 0.0,
    retry: Optional[RetryPolicy] = None,
    trace: bool = True,
    pipeline: Optional[int] = None,
    protocols: Sequence[int] = SUPPORTED_PROTOCOLS,
) -> PublishReport:
    """Replay one rank's cumulative snapshot series through the service.

    This is the stream a deployed IncProf runtime would produce: ``hello``,
    one ``snapshot`` per collection interval (plus any AppEKG rows), and an
    orderly ``bye`` whose reply carries the server-side classification.

    Submission is *pipelined*: each snapshot is encoded once (binary v2
    when the hello negotiates it) and up to ``pipeline`` frames ride the
    wire before the first reply is drained, so round-trip latency is paid
    once per window instead of once per interval.  Windows move in
    *bursts* — the frames of a window are buffered and flushed in one
    write, and the window's replies drain together — so syscall and
    wakeup costs are paid per window too.  ``pipeline=None``
    picks :data:`PIPELINE_WINDOW` on a v2 wire and the classic one-at-a-
    time submit on v1; the replies come back in send order, each echoing
    its sequence number, and any misalignment (a swallowed reply) resyncs
    through the resume handshake rather than guessing.

    The replay rides through connection losses and daemon restarts: on
    failure it reconnects (exponential backoff + jitter), re-``hello``\\ s
    with ``resume=True``, and continues from the sequence number the
    server asks for — rewinding after a restart, fast-forwarding past
    snapshots whose replies were lost after admission.  Rewound intervals
    resend their cached frames verbatim — no re-serialization.  The
    report's ``reconnects``/``retries``/``resent`` counters say how bumpy
    the ride was.

    With ``trace=True`` (the default) every submission carries a fresh
    trace id; the effective ids land in ``report.trace_ids`` so callers
    can query per-stage span timings back out of the daemon.
    """
    report = PublishReport(stream_id=stream_id)
    samples = list(samples)

    def resume(client: PhaseClient) -> int:
        """Reconnect + resume handshake; returns the next seq to send.

        When the current endpoint is a worker that died, re-dialing it is
        pointless — fall back to the home endpoint (the router) so the
        resume hello re-resolves the stream's new owner.
        """
        try:
            client.reconnect()
        except RetryExhaustedError:
            client.rehome()
        report.reconnects += 1
        reply = client.hello(stream_id, app=app, rank=rank, resume=True)
        if not reply.ok:
            raise RetryExhaustedError(
                f"resume hello refused: {reply.error}",
                attempts=client.retry.max_attempts)
        return int(reply.data.get("resume_from", 0))

    try:
        with PhaseClient(endpoint, retry=retry, check=False,
                         protocols=protocols) as client:
            reply = client.hello(stream_id, app=app, rank=rank, resume=True)
            if not reply.ok:
                report.error = reply.error
                return report
            if pipeline is not None:
                window = max(1, int(pipeline))
            elif client.wire_version > PROTOCOL_VERSION:
                window = PIPELINE_WINDOW
            else:
                window = 1

            #: seq -> (encoded frame, trace id).  Encoded exactly once;
            #: a resume rewind resends these bytes verbatim.  Entries are
            #: evicted when their reply is processed.
            frames: Dict[int, Tuple[bytes, str]] = {}
            in_flight: Deque[int] = deque()
            next_seq = int(reply.data.get("resume_from", 0))
            max_sent = -1
            stalls = 0

            def frame_for(s: int) -> bytes:
                cached = frames.get(s)
                if cached is None:
                    tid = new_trace_id() if trace else ""
                    cached = (client.encode_snapshot(stream_id, s,
                                                     samples[s], tid), tid)
                    frames[s] = cached
                return cached[0]

            def rewind() -> None:
                """Resume handshake + reconcile in-flight state.

                In-flight intervals below the resume point were durably
                admitted server-side but their acks died with the
                connection; the resume point is the server's word for
                that, so credit them here — otherwise a crash that eats
                a window of replies would leave intervals the fleet
                holds uncounted in the ledger.
                """
                nonlocal next_seq, max_sent
                head = in_flight[0] if in_flight else next_seq
                next_seq = resume(client)
                for s in range(head, next_seq):
                    report.sent += 1
                    report.accepted += 1
                    report.acks_lost += 1
                    if s <= max_sent:
                        report.resent += 1
                    max_sent = max(max_sent, s)
                    tid = frames.pop(s, (b"", ""))[1]
                    if tid:
                        report.trace_ids.setdefault(s, tid)
                in_flight.clear()
                # Any other frames at or past the resume point stay
                # cached for verbatim resend; stale ones below it go.
                for s in [s for s in frames if s < next_seq]:
                    del frames[s]

            #: Replies already read off the wire for this burst but not
            #: yet reconciled against ``in_flight``.
            pending: Deque[Reply] = deque()

            while next_seq < len(samples) or in_flight or pending:
                if not pending:
                    try:
                        # One burst: fill the window with buffered
                        # writes, flush once, then drain the window's
                        # replies together (the server corks them into
                        # one flush too) — syscalls per interval drop
                        # from two round-trips' worth to ~2/window.
                        while (next_seq < len(samples)
                               and len(in_flight) < window):
                            client.send_frame(frame_for(next_seq),
                                              flush=False)
                            in_flight.append(next_seq)
                            next_seq += 1
                        client.flush_frames()
                        for _ in range(len(in_flight)):
                            pending.append(client.read_reply())
                    except ConnectionLostError:
                        pending.clear()
                        rewind()
                        continue
                reply = pending.popleft()
                seq = in_flight.popleft()
                echoed = reply.data.get("seq")
                if echoed is not None and int(echoed) != seq:
                    # The reply stream no longer lines up with the sends
                    # (a swallowed reply); resync through the resume
                    # handshake rather than guessing which ack this is.
                    # The popped seq goes back in flight first so the
                    # rewind can reconcile it like the rest; the burst's
                    # remaining replies are stale now and are dropped.
                    in_flight.appendleft(seq)
                    pending.clear()
                    rewind()
                    continue
                code = str(reply.data.get("code", ""))
                if (not reply.ok
                        and (code in ROUTING_CODES
                             or code == UnknownStreamError.code)):
                    # A routing refusal that survived the client's hop
                    # budget means "not processed" — the fleet is mid-
                    # rebalance.  ``unknown-stream`` mid-replay means the
                    # same thing from the other side: the stream's new
                    # owner saw this snapshot before its adoption (or an
                    # idle expiry) landed.  Either way, re-resolve and
                    # resend this interval instead of counting it
                    # rejected (which would lose it); give up only after
                    # repeated stalls.
                    stalls += 1
                    if stalls > client.retry.max_attempts:
                        report.error = reply.error
                        return report
                    in_flight.appendleft(seq)
                    pending.clear()
                    rewind()
                    continue
                stalls = 0
                report.sent += 1
                trace_id = frames.pop(seq, (b"", ""))[1]
                effective = str(reply.data.get("trace", trace_id) or "")
                if effective:
                    report.trace_ids[seq] = effective
                version = reply.data.get("model_version")
                if version is not None:
                    report.model_versions.append(int(version))
                if seq <= max_sent:
                    report.resent += 1
                max_sent = max(max_sent, seq)
                outcome = reply.data.get("outcome", "")
                if reply.ok and outcome == "accepted":
                    report.accepted += 1
                elif reply.ok and outcome == "dropped-oldest":
                    report.accepted += 1
                    report.dropped_oldest += 1
                elif reply.ok and outcome == "duplicate":
                    # Already durably classified (a resend raced an
                    # adoption); counted in ``resent``, not a rejection.
                    report.accepted += 1
                else:
                    report.rejected += 1
                if delay > 0:
                    time.sleep(delay)
            if heartbeat_records:
                try:
                    hb = client.heartbeats(stream_id, heartbeat_records)
                except ConnectionLostError:
                    resume(client)
                    hb = client.heartbeats(stream_id, heartbeat_records)
                if hb.ok:
                    report.heartbeats_sent = int(hb.data.get("accepted", 0))
            try:
                reply = client.bye(stream_id)
            except ConnectionLostError:
                resume(client)
                reply = client.bye(stream_id)
            if reply.ok:
                report.drained = bool(reply.data.get("drained", False))
                report.processed = int(reply.data.get("processed", 0))
                report.novel = int(reply.data.get("novel", 0))
                report.phase_sequence = [int(p) for p in
                                         reply.data.get("phase_sequence", [])]
                report.model_version = int(reply.data.get("model_version", 0))
                report.classified_versions = [
                    int(v) for v in reply.data.get("model_versions", [])]
            else:
                report.error = reply.error
            report.retries = client.connect_retries + client.request_retries
    except RetryExhaustedError as exc:
        report.error = str(exc)
    return report


def publish_session(
    endpoint: Endpoint,
    result,
    stream_prefix: str = "",
    include_heartbeats: bool = True,
    delay: float = 0.0,
    retry: Optional[RetryPolicy] = None,
    pipeline: Optional[int] = None,
    protocols: Sequence[int] = SUPPORTED_PROTOCOLS,
) -> Dict[str, PublishReport]:
    """Stream every rank of a :class:`~repro.incprof.session.SessionResult`
    through the service concurrently (one connection + thread per rank)."""
    prefix = stream_prefix or f"{result.app_name}"
    reports: Dict[str, PublishReport] = {}
    reports_lock = threading.Lock()

    def one_rank(rank_result) -> None:
        stream_id = f"{prefix}-r{rank_result.rank}"
        try:
            report = publish_samples(
                endpoint,
                stream_id,
                rank_result.samples,
                app=result.app_name,
                rank=rank_result.rank,
                heartbeat_records=(rank_result.heartbeat_records
                                   if include_heartbeats else ()),
                delay=delay,
                retry=retry,
                pipeline=pipeline,
                protocols=protocols,
            )
        except (ReproError, OSError) as exc:
            # A publisher thread must not die silently: surface the
            # failure (unreachable daemon, dropped connection) in its
            # report instead.
            report = PublishReport(stream_id=stream_id, error=str(exc))
        with reports_lock:
            reports[stream_id] = report

    threads = [threading.Thread(target=one_rank, args=(rr,),
                                name=f"publish-{prefix}-r{rr.rank}")
               for rr in result.per_rank]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return reports


@dataclass
class LoadResult:
    """Aggregate outcome of one synthetic load run."""

    streams: Dict[str, PublishReport]
    elapsed: float
    sent: int
    processed: int
    rejected: int
    dropped_oldest: int

    @property
    def throughput(self) -> float:
        """Client-side intervals/second across all streams."""
        return self.sent / self.elapsed if self.elapsed > 0 else 0.0


class SyntheticLoadGenerator:
    """Deterministic snapshot streams for stress and throughput tests.

    Each stream is a cumulative gmon series over a small function set —
    enough structure for the tracker to classify, cheap enough that the
    generator, not the service, is never the bottleneck in tests.
    """

    def __init__(
        self,
        functions: Sequence[str] = ("kernel", "reduce", "exchange"),
        sample_period: float = 0.01,
        ticks_per_interval: int = 100,
    ) -> None:
        if not functions:
            raise ValidationError("need at least one function")
        self.functions = list(functions)
        self.sample_period = sample_period
        self.ticks_per_interval = ticks_per_interval

    def stream(self, stream_seed: int, n_intervals: int,
               pattern: Optional[Callable[[int], int]] = None,
               ) -> List[GmonData]:
        """One stream's cumulative snapshots (deterministic in the seed).

        ``pattern`` overrides the dominant-function schedule: called
        with the interval index, it returns the dominant function's
        index (taken modulo the function count).  Lets tests and the
        analytics selftest drive *distinct workload shapes* — steady,
        alternating, bursty — over one shared function universe, so
        they classify against one model yet separate into cohorts.
        """
        cumulative = GmonData(sample_period=self.sample_period, rank=stream_seed)
        snapshots: List[GmonData] = []
        n_funcs = len(self.functions)
        for i in range(n_intervals):
            # Rotate the dominant function so streams show phase structure.
            dominant = (pattern(i) % n_funcs if pattern is not None
                        else (stream_seed + i // 4) % n_funcs)
            for j, func in enumerate(self.functions):
                share = 0.7 if j == dominant else 0.3 / max(1, n_funcs - 1)
                cumulative.add_ticks(func, int(self.ticks_per_interval * share))
            snap = cumulative.copy()
            snap.timestamp = float(i + 1)
            snapshots.append(snap)
        return snapshots

    def run(
        self,
        endpoint: Endpoint,
        n_streams: int,
        n_intervals: int,
        stream_prefix: str = "load",
        delay: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        pipeline: Optional[int] = None,
        protocols: Sequence[int] = SUPPORTED_PROTOCOLS,
    ) -> LoadResult:
        """Publish ``n_streams`` concurrent synthetic streams; aggregate."""
        reports: Dict[str, PublishReport] = {}
        lock = threading.Lock()

        def one(i: int) -> None:
            stream_id = f"{stream_prefix}-{i}"
            try:
                report = publish_samples(endpoint, stream_id,
                                         self.stream(i, n_intervals),
                                         app="synthetic-load", rank=i,
                                         delay=delay, retry=retry,
                                         pipeline=pipeline,
                                         protocols=protocols)
            except (ReproError, OSError) as exc:
                report = PublishReport(stream_id=stream_id, error=str(exc))
            with lock:
                reports[stream_id] = report

        start = time.monotonic()
        threads = [threading.Thread(target=one, args=(i,), name=f"load-{i}")
                   for i in range(n_streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        return LoadResult(
            streams=reports,
            elapsed=elapsed,
            sent=sum(r.sent for r in reports.values()),
            processed=sum(r.processed for r in reports.values()),
            rejected=sum(r.rejected for r in reports.values()),
            dropped_oldest=sum(r.dropped_oldest for r in reports.values()),
        )


class ScenarioLoadGenerator:
    """Generated heterogeneous fleet traffic from scenario specs.

    Where :class:`SyntheticLoadGenerator` rotates dominants over one
    shared function universe, this generator draws each stream's
    snapshots from a *generated scenario's* ground-truth phase timeline
    (:func:`repro.apps.generator.scenario_snapshots`) — distinct kernel
    universes, phase durations, and Markov phase sequences per shape —
    so fleet tests see the mixed-phase heterogeneity real deployments
    produce.  Streams are assigned shapes explicitly, keeping worker
    placement and shape coverage under the caller's control.
    """

    def __init__(self, specs: Sequence[object], interval: float = 1.0,
                 sample_period: float = 0.01,
                 ticks_per_interval: int = 200) -> None:
        if not specs:
            raise ValidationError("need at least one scenario spec")
        self.specs = list(specs)
        self.interval = interval
        self.sample_period = sample_period
        self.ticks_per_interval = ticks_per_interval

    def stream(self, shape: int, n_intervals: int,
               rank: int = 0) -> List[GmonData]:
        """One stream's cumulative snapshots for the given shape index."""
        from repro.apps.generator import scenario_snapshots

        spec = self.specs[shape % len(self.specs)]
        return scenario_snapshots(
            spec, n_intervals, interval=self.interval,
            ticks_per_interval=self.ticks_per_interval,
            sample_period=self.sample_period, rank=rank)

    def run(
        self,
        endpoint: Endpoint,
        streams: Sequence[Tuple[str, int]],
        n_intervals: int,
        delay: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        pipeline: Optional[int] = None,
        protocols: Sequence[int] = SUPPORTED_PROTOCOLS,
    ) -> LoadResult:
        """Publish ``(stream_id, shape_index)`` streams concurrently."""
        reports: Dict[str, PublishReport] = {}
        lock = threading.Lock()

        def one(index: int, stream_id: str, shape: int) -> None:
            spec = self.specs[shape % len(self.specs)]
            try:
                report = publish_samples(
                    endpoint, stream_id,
                    self.stream(shape, n_intervals, rank=index),
                    app=getattr(spec, "name", "scenario-load"), rank=index,
                    delay=delay, retry=retry, pipeline=pipeline,
                    protocols=protocols)
            except (ReproError, OSError) as exc:
                report = PublishReport(stream_id=stream_id, error=str(exc))
            with lock:
                reports[stream_id] = report

        start = time.monotonic()
        threads = [
            threading.Thread(target=one, args=(i, stream_id, shape),
                             name=f"scenario-load-{i}")
            for i, (stream_id, shape) in enumerate(streams)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - start
        return LoadResult(
            streams=reports,
            elapsed=elapsed,
            sent=sum(r.sent for r in reports.values()),
            processed=sum(r.processed for r in reports.values()),
            rejected=sum(r.rejected for r in reports.values()),
            dropped_oldest=sum(r.dropped_oldest for r in reports.values()),
        )
