"""Minimal stdlib live dashboard for fleet analytics.

One daemon thread, one :class:`~http.server.ThreadingHTTPServer` (the
:class:`~repro.service.exposition.MetricsHTTPServer` pattern), three
routes:

- ``/`` — server-rendered HTML: cohort summary, per-stream phase
  timeline strips, anomaly and drift-event tables.  No javascript
  beyond a ``<meta http-equiv=refresh>``; every render is a fresh
  analytics pass, so the page is the report.
- ``/analytics.json`` — the same report as JSON for tooling.
- ``/healthz`` — liveness.

Enabled with ``incprof serve --dashboard-port`` (one daemon's own
streams) and ``incprof serve-fleet --dashboard-port`` (the router's
merged fleet view).
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from repro.core.online import NOVEL

__all__ = ["DashboardServer", "render_dashboard_html"]

#: Glyph per phase id for the timeline strips (NOVEL renders as ``!``).
_PHASE_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #101418; color: #d8dee9; margin: 2em; }
h1, h2 { color: #88c0d0; font-weight: 600; }
table { border-collapse: collapse; margin: 0.6em 0 1.4em; }
th, td { border: 1px solid #2e3440; padding: 0.25em 0.7em;
         text-align: left; }
th { color: #81a1c1; }
.timeline { letter-spacing: 1px; }
.novel { color: #bf616a; font-weight: bold; }
.muted { color: #616e7c; }
.warn { color: #ebcb8b; }
"""


def _glyph(phase_id: int) -> str:
    if phase_id == NOVEL:
        return '<span class="novel">!</span>'
    if 0 <= phase_id < len(_PHASE_GLYPHS):
        return _PHASE_GLYPHS[phase_id]
    return "?"


def _timeline_html(timeline: List[int], width: int = 96) -> str:
    tail = timeline[-width:]
    if not tail:
        return '<span class="muted">(warmup)</span>'
    return "".join(_glyph(int(p)) for p in tail)


def render_dashboard_html(report: Dict[str, Any],
                          title: str = "incprofd fleet analytics",
                          refresh: int = 5) -> str:
    """One analytics report as a self-contained HTML page."""
    sig_by_stream = {s["stream_id"]: s
                     for s in report.get("signatures", [])}
    parts: List[str] = [
        "<!doctype html><html><head>",
        f"<title>{html.escape(title)}</title>",
        f'<meta http-equiv="refresh" content="{int(refresh)}">',
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{report.get('n_streams', 0)} stream(s) in "
        f"{report.get('n_cohorts', 0)} cohort(s) &middot; "
        f"{len(report.get('anomalies', []))} anomalie(s) &middot; "
        f"{len(report.get('drift_events', []))} drift event(s)</p>",
    ]
    for cohort in report.get("cohorts", []):
        parts.append(
            f"<h2>cohort {cohort['cohort']} "
            f'<span class="muted">({cohort["size"]} stream(s), '
            f"transition rate {cohort['mean_transition_rate']:.2f}, "
            f"novel {cohort['mean_novel_share']:.1%})</span></h2>")
        parts.append("<table><tr><th>stream</th><th>worker</th>"
                     "<th>intervals</th><th>phases</th><th>novel</th>"
                     "<th>timeline (newest right, ! = novel)</th></tr>")
        for stream_id in cohort.get("streams", []):
            sig = sig_by_stream.get(stream_id, {})
            parts.append(
                "<tr>"
                f"<td>{html.escape(stream_id)}</td>"
                f"<td>{html.escape(str(sig.get('worker_id', '') or '-'))}</td>"
                f"<td>{sig.get('n_intervals', '?')}</td>"
                f"<td>{sig.get('n_phases', '?')}</td>"
                f"<td>{float(sig.get('novel_share', 0.0)):.1%}</td>"
                f'<td class="timeline">'
                f"{_timeline_html(sig.get('timeline', []))}</td>"
                "</tr>")
        parts.append("</table>")
    anomalies = report.get("anomalies", [])
    if anomalies:
        parts.append("<h2>anomalous streams</h2>")
        parts.append("<table><tr><th>stream</th><th>cohort</th>"
                     "<th>distance</th><th>cohort mean &plusmn; std</th></tr>")
        for a in anomalies:
            parts.append(
                "<tr>"
                f'<td class="warn">{html.escape(a["stream_id"])}</td>'
                f"<td>{a['cohort']}</td>"
                f"<td>{a['distance']:.3f}</td>"
                f"<td>{a['cohort_mean']:.3f} &plusmn; "
                f"{a['cohort_std']:.3f}</td></tr>")
        parts.append("</table>")
    drift = report.get("drift_events", [])
    if drift:
        parts.append("<h2>drift events</h2>")
        parts.append("<table><tr><th>cohort</th><th>kind</th>"
                     "<th>streams</th><th>window</th><th>share</th></tr>")
        for event in drift:
            parts.append(
                "<tr>"
                f"<td>{event['cohort']}</td>"
                f'<td class="warn">{html.escape(event["kind"])}</td>'
                f"<td>{html.escape(', '.join(event['streams']))}</td>"
                f"<td>last {event['window']} intervals</td>"
                f"<td>{event['share']:.0%}</td></tr>")
        parts.append("</table>")
    if not report.get("cohorts"):
        parts.append('<p class="muted">no streams yet — publish some '
                     "traffic and refresh</p>")
    parts.append('<p class="muted">auto-refreshes every '
                 f"{int(refresh)}s &middot; "
                 '<a href="/analytics.json">analytics.json</a></p>')
    parts.append("</body></html>")
    return "".join(parts)


class _Handler(BaseHTTPRequestHandler):
    server_version = "incprofd-dashboard/1"

    def _send(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send(b"ok\n", "text/plain; charset=utf-8")
            return
        if path not in ("/", "/analytics.json"):
            self.send_error(404, "only /, /analytics.json and /healthz "
                                 "are served")
            return
        try:
            report = self.server.report_fn()  # type: ignore[attr-defined]
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, str(exc))
            return
        if path == "/analytics.json":
            self._send(json.dumps(report, sort_keys=True).encode("utf-8"),
                       "application/json; charset=utf-8")
        else:
            title = self.server.title  # type: ignore[attr-defined]
            self._send(render_dashboard_html(report, title=title)
                       .encode("utf-8"),
                       "text/html; charset=utf-8")

    def log_message(self, fmt: str, *args: Any) -> None:
        # Same contract as the metrics endpoint: silent on stderr.
        pass


class DashboardServer:
    """A stdlib HTTP dashboard over an analytics-report callable.

    ``report_fn`` returns the JSON-ready report dict (typically a fresh
    ``fleet_analytics`` pass); each GET renders it server-side.  Runs on
    one daemon thread, threaded per request, same lifecycle surface as
    :class:`~repro.service.exposition.MetricsHTTPServer`.
    """

    def __init__(self, report_fn: Callable[[], Dict[str, Any]],
                 host: str = "127.0.0.1", port: int = 0,
                 title: str = "incprofd fleet analytics") -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.report_fn = report_fn  # type: ignore[attr-defined]
        self._httpd.title = title  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "DashboardServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="incprofd-dashboard-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
