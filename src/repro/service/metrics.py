"""Service self-metrics for ``incprofd``.

The daemon measures itself the way it measures applications: counters
plus per-interval style summaries.  Everything here is thread-safe —
reader threads, workers, and the stats endpoint all touch the same
object concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.util.errors import ValidationError


class LatencyWindow:
    """A bounded sliding window of latency observations (seconds).

    Percentiles are computed over the most recent ``capacity``
    observations — a long-lived daemon must not accumulate an unbounded
    sample list just to answer a stats query.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValidationError("latency window capacity must be positive")
        self._window: Deque[float] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.observed = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._window.append(seconds)
            self.observed += 1

    def record_many(self, seconds: float, count: int) -> None:
        """Record ``count`` identical observations under one lock."""
        if count <= 0:
            return
        with self._lock:
            self._window.extend([seconds] * count)
            self.observed += count

    def values(self) -> list:
        """The raw window as a list (for exact cross-worker merging).

        A fleet router cannot compute an exact merged p99 from
        per-worker percentiles — quantiles do not compose.  Shipping the
        bounded raw window (a few thousand floats) lets the router take
        percentiles over the *union* instead of approximating.
        """
        with self._lock:
            return list(self._window)

    @staticmethod
    def percentile_key(q: float) -> str:
        """``0.5 -> "p50"``, ``0.999 -> "p99.9"``, ``1.0 -> "p100"``.

        Fractional quantiles keep their fraction: rounding 0.999 to an
        integer percent would render ``p100`` and collide with (and
        shadow) q = 1.0, the true maximum.
        """
        return f"p{round(q * 100, 6):g}"

    def percentiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99, 0.999)
    ) -> Dict[str, float]:
        """``{"p50": ..., "p99.9": ...}`` over the current window (empty: zeros)."""
        with self._lock:
            sample = list(self._window)
        out: Dict[str, float] = {}
        for q in qs:
            out[self.percentile_key(q)] = (
                float(np.quantile(sample, q)) if sample else 0.0)
        return out


class ServiceMetrics:
    """Counters + derived rates for the whole service.

    ``ingested`` counts messages accepted into a queue; ``processed``
    counts intervals actually classified; the difference across all
    streams is the fleet's total lag.  Drop counters are split by
    backpressure policy outcome so a stats reader can tell "the queue
    shed load" (``dropped_oldest``) from "the client was pushed back"
    (``rejected``).
    """

    def __init__(self, clock=time.monotonic, latency_capacity: int = 2048) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.ingested = 0
        self.processed = 0
        self.novel = 0
        self.dropped_oldest = 0
        self.rejected = 0
        self.protocol_errors = 0
        self.ingest_errors = 0
        self.heartbeats = 0
        self.connections = 0
        self.faults_injected = 0
        self.checkpoints_written = 0
        self.refits = 0
        self.wrong_worker = 0
        self.classify_latency = LatencyWindow(latency_capacity)
        self.stages: Dict[str, Dict[str, float]] = {}
        self._first_ingest: Optional[float] = None
        self._last_process: Optional[float] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def note_connection(self) -> None:
        with self._lock:
            self.connections += 1

    def note_ingested(self, n: int = 1) -> None:
        with self._lock:
            self.ingested += n
            if self._first_ingest is None:
                self._first_ingest = self._clock()

    def note_processed(self, novel: bool, latency: float) -> None:
        with self._lock:
            self.processed += 1
            if novel:
                self.novel += 1
            self._last_process = self._clock()
        self.classify_latency.record(latency)

    def note_processed_batch(self, count: int, novel: int,
                             latency: float) -> None:
        """One coalesced tick's worth of :meth:`note_processed` calls.

        ``latency`` is the per-item share, recorded once per item so the
        latency distribution is identical to ``count`` single calls.
        """
        if count <= 0:
            return
        with self._lock:
            self.processed += count
            self.novel += novel
            self._last_process = self._clock()
        self.classify_latency.record_many(latency, count)

    def note_dropped_oldest(self, n: int = 1) -> None:
        with self._lock:
            self.dropped_oldest += n

    def note_rejected(self, n: int = 1) -> None:
        with self._lock:
            self.rejected += n

    def note_protocol_error(self) -> None:
        with self._lock:
            self.protocol_errors += 1

    def note_ingest_error(self) -> None:
        with self._lock:
            self.ingest_errors += 1

    def note_heartbeats(self, n: int) -> None:
        with self._lock:
            self.heartbeats += n

    def note_fault_injected(self) -> None:
        with self._lock:
            self.faults_injected += 1

    def note_checkpoint(self) -> None:
        with self._lock:
            self.checkpoints_written += 1

    def note_refit(self) -> None:
        """One live model refit (any stream) hot-swapped a new version."""
        with self._lock:
            self.refits += 1

    def note_wrong_worker(self) -> None:
        """One request refused because the ring assigns the stream away."""
        with self._lock:
            self.wrong_worker += 1

    def note_stage(self, stage: str, seconds: float, items: int = 1) -> None:
        """Accumulate wall time of one worker pipeline stage.

        The service hot path is staged (snapshot differencing, then one
        vectorized classification per drained batch); per-stage totals
        show where worker time actually goes at fleet scale.
        """
        with self._lock:
            rec = self.stages.setdefault(
                stage, {"calls": 0, "items": 0, "seconds": 0.0})
            rec["calls"] += 1
            rec["items"] += items
            rec["seconds"] += seconds

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def total_drops(self) -> int:
        return self.dropped_oldest + self.rejected

    def _elapsed_locked(self) -> float:
        """Seconds from first ingest to last classify; caller holds the lock."""
        if self._first_ingest is None or self._last_process is None:
            return 0.0
        return max(0.0, self._last_process - self._first_ingest)

    def _ingest_rate_locked(self) -> float:
        elapsed = self._elapsed_locked()
        if elapsed <= 0:
            return float(self.processed) if self._last_process is not None else 0.0
        return self.processed / elapsed

    def ingest_rate(self) -> float:
        """Processed intervals per second, first ingest to last classify."""
        with self._lock:
            return self._ingest_rate_locked()

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view of every counter and derived rate.

        The whole snapshot — counters *and* the rate derived from them —
        is composed under a single lock acquisition, so ``ingest_rate``
        is always consistent with the ``processed``/``elapsed`` values in
        the same snapshot.  (Reading the rate after releasing the lock
        would let a concurrent ``note_processed`` slip in between, making
        a stats reply disagree with itself under load.)
        """
        with self._lock:
            elapsed = self._elapsed_locked()
            snap: Dict[str, Any] = {
                "ingested": self.ingested,
                "processed": self.processed,
                "novel": self.novel,
                "dropped_oldest": self.dropped_oldest,
                "rejected": self.rejected,
                "drops": self.dropped_oldest + self.rejected,
                "protocol_errors": self.protocol_errors,
                "ingest_errors": self.ingest_errors,
                "heartbeats": self.heartbeats,
                "connections": self.connections,
                "faults_injected": self.faults_injected,
                "checkpoints_written": self.checkpoints_written,
                "refits": self.refits,
                "wrong_worker": self.wrong_worker,
                "elapsed": elapsed,
                "ingest_rate": self._ingest_rate_locked(),
                "stages": {name: dict(rec)
                           for name, rec in self.stages.items()},
            }
        # The latency window has its own lock and no invariant tying it
        # to the counters; percentiles are taken right after.
        snap["classify_latency"] = self.classify_latency.percentiles()
        # One worker's percentiles are computed over its own window, so
        # they are exact; merged fleet views relabel this (see
        # :func:`aggregate_worker_stats`) because quantiles of quantiles
        # are not quantiles.
        snap["classify_latency_source"] = {
            "kind": "exact",
            "observed": self.classify_latency.observed,
        }
        return snap


# ----------------------------------------------------------------------
# fleet-level merging
# ----------------------------------------------------------------------

#: stats() keys that sum across workers in a merged fleet view.
_MERGE_SUM_KEYS = (
    "ingested", "processed", "novel", "dropped_oldest", "rejected",
    "drops", "protocol_errors", "ingest_errors", "heartbeats",
    "connections", "faults_injected", "checkpoints_written", "refits",
    "wrong_worker", "streams", "queued_total", "ldms_delivered",
    "restored_streams", "workers", "finished_evicted", "ingest_rate",
)

_MERGE_QS = (0.5, 0.9, 0.99, 0.999)


def merged_latency_percentiles(
    windows: Sequence[Sequence[float]],
    qs: Sequence[float] = _MERGE_QS,
) -> Dict[str, float]:
    """Exact percentiles over the union of per-worker latency windows."""
    sample = [v for window in windows for v in window]
    return {
        LatencyWindow.percentile_key(q):
            (float(np.quantile(sample, q)) if sample else 0.0)
        for q in qs
    }


def aggregate_worker_stats(
    worker_stats: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge per-worker ``stats()`` snapshots into one fleet view.

    Counters and rates sum; queue depths and stage accounting union.
    ``classify_latency`` is the delicate part: when every worker shipped
    its raw ``latency_window`` the merged percentiles are *exact* over
    the union and labelled ``{"kind": "merged-window"}``; otherwise the
    merge falls back to the per-key maximum — a valid upper bound, but
    approximate — and says so with ``{"kind": "merged-upper-bound"}``.
    Dashboards must be able to tell those apart (a "p99" that is really
    max-of-p99s overstates tail latency on skewed fleets).
    """
    merged: Dict[str, Any] = {key: 0 for key in _MERGE_SUM_KEYS}
    merged["queue_depths"] = {}
    merged["stages"] = {}
    windows: List[Sequence[float]] = []
    have_all_windows = bool(worker_stats)
    upper_bound: Dict[str, float] = {}
    per_worker: Dict[str, Any] = {}
    for worker_id, stats in sorted(worker_stats.items()):
        for key in _MERGE_SUM_KEYS:
            value = stats.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                merged[key] += value
        for sid, depth in (stats.get("queue_depths") or {}).items():
            merged["queue_depths"][sid] = depth
        for stage, rec in (stats.get("stages") or {}).items():
            agg = merged["stages"].setdefault(
                stage, {"calls": 0, "items": 0, "seconds": 0.0})
            for field in ("calls", "items", "seconds"):
                agg[field] += rec.get(field, 0)
        window = stats.get("latency_window")
        if isinstance(window, list):
            windows.append([float(v) for v in window])
        else:
            have_all_windows = False
        for key, value in (stats.get("classify_latency") or {}).items():
            upper_bound[key] = max(upper_bound.get(key, 0.0), float(value))
        per_worker[worker_id] = {
            "processed": stats.get("processed", 0),
            "streams": stats.get("streams", 0),
            "queued_total": stats.get("queued_total", 0),
            "classify_latency": stats.get("classify_latency", {}),
        }
    merged["queued_total"] = sum(merged["queue_depths"].values())
    if have_all_windows:
        merged["classify_latency"] = merged_latency_percentiles(windows)
        merged["classify_latency_source"] = {
            "kind": "merged-window",
            "samples": sum(len(w) for w in windows),
            "workers": len(worker_stats),
        }
    else:
        merged["classify_latency"] = upper_bound
        merged["classify_latency_source"] = {
            "kind": "merged-upper-bound",
            "workers": len(worker_stats),
        }
    merged["per_worker"] = per_worker
    merged["n_workers"] = len(worker_stats)
    return merged
