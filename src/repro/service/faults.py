"""Deterministic fault injection for chaos-testing ``incprofd``.

Production networks drop replies, stall, corrupt bytes, and kill
connections; this module scripts those failures *deterministically* so
the chaos suite can assert exact recovery behaviour (no state loss, no
duplicate classification) instead of sampling randomness.

Server side, a :class:`FaultInjector` hooks the reply path of every
connection handler: each rule fires on a fixed cadence over the matching
message kinds and returns a :class:`FaultAction` — drop the reply, delay
it, corrupt the reply frame, or close the connection outright.  Client
side, :class:`FlakyEndpoint` wraps a real endpoint and fails the first
N connection attempts, driving the retry/backoff path without a server
in a broken state.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.util.errors import ValidationError

#: What an injected fault does to the connection handler.
DROP = "drop"        # swallow the reply (client times out / sees silence)
DELAY = "delay"      # sleep before replying (latency injection)
CLOSE = "close"      # close the connection before replying
CORRUPT = "corrupt"  # write a well-framed but undecodable reply

FAULT_KINDS = (DROP, DELAY, CLOSE, CORRUPT)


@dataclass(frozen=True)
class FaultAction:
    """One injected failure: what to do, and how long to stall doing it."""

    kind: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(f"unknown fault kind {self.kind!r} "
                                  f"(expected one of {FAULT_KINDS})")
        if self.delay < 0:
            raise ValidationError("fault delay must be non-negative")


@dataclass
class _Rule:
    action: FaultAction
    message_types: tuple
    every: int
    limit: Optional[int]
    seen: int = 0
    fired: int = 0

    def match(self, msg_type: str) -> Optional[FaultAction]:
        if self.message_types and msg_type not in self.message_types:
            return None
        if self.limit is not None and self.fired >= self.limit:
            return None
        self.seen += 1
        if self.seen % self.every:
            return None
        self.fired += 1
        return self.action


class FaultInjector:
    """A deterministic schedule of failures over server replies.

    Rules fire per *matching message*, counted across all connections:
    ``every=5`` means every 5th matching message triggers the action,
    ``limit`` caps total firings.  Thread-safe (connection handlers run
    concurrently); ``injected`` counts every fault actually delivered.
    """

    def __init__(self) -> None:
        self._rules: List[_Rule] = []
        self._lock = threading.Lock()
        self.injected = 0

    def add(self, action: FaultAction, *, every: int = 1,
            message_types: tuple = (), limit: Optional[int] = None) -> "FaultInjector":
        if every < 1:
            raise ValidationError("'every' must be at least 1")
        with self._lock:
            self._rules.append(_Rule(action=action,
                                     message_types=tuple(message_types),
                                     every=every, limit=limit))
        return self

    # Convenience constructors for the common chaos scenarios.
    def close_every(self, n: int, message_types: tuple = ("snapshot",),
                    limit: Optional[int] = None) -> "FaultInjector":
        """Kill the connection after every ``n``-th matching message."""
        return self.add(FaultAction(CLOSE), every=n,
                        message_types=message_types, limit=limit)

    def drop_every(self, n: int, message_types: tuple = ("snapshot",),
                   limit: Optional[int] = None) -> "FaultInjector":
        """Swallow every ``n``-th reply (request processed, reply lost)."""
        return self.add(FaultAction(DROP), every=n,
                        message_types=message_types, limit=limit)

    def corrupt_every(self, n: int, message_types: tuple = ("snapshot",),
                      limit: Optional[int] = None) -> "FaultInjector":
        """Replace every ``n``-th reply with an undecodable frame."""
        return self.add(FaultAction(CORRUPT), every=n,
                        message_types=message_types, limit=limit)

    def delay_every(self, n: int, delay: float,
                    message_types: tuple = ("snapshot",),
                    limit: Optional[int] = None) -> "FaultInjector":
        """Stall every ``n``-th reply by ``delay`` seconds."""
        return self.add(FaultAction(DELAY, delay=delay), every=n,
                        message_types=message_types, limit=limit)

    def on_reply(self, msg_type: str) -> Optional[FaultAction]:
        """Called by the server before writing a reply; first match wins."""
        with self._lock:
            for rule in self._rules:
                action = rule.match(msg_type)
                if action is not None:
                    self.injected += 1
                    return action
        return None


#: A length-prefixed frame whose payload is not JSON — exercises the
#: client's corrupt-frame handling without breaking stream sync.
CORRUPT_FRAME = len(b"\xff\xfenot-json").to_bytes(4, "big") + b"\xff\xfenot-json"


class FlakyEndpoint:
    """An endpoint whose first ``fail_connects`` connection attempts fail.

    Duck-types the :class:`~repro.service.protocol.Endpoint` surface the
    client uses (``connect``); deterministic, in-process, no broken
    server required to exercise client backoff.
    """

    def __init__(self, endpoint, fail_connects: int = 0) -> None:
        self.endpoint = endpoint
        self.fail_connects = fail_connects
        self.attempts = 0
        self._lock = threading.Lock()

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        with self._lock:
            self.attempts += 1
            failing = self.attempts <= self.fail_connects
        if failing:
            raise ConnectionRefusedError(
                f"injected connect failure {self.attempts}/{self.fail_connects}")
        return self.endpoint.connect(timeout=timeout)

    def __str__(self) -> str:
        return f"flaky({self.endpoint})"
