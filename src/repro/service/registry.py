"""Stream lifecycle for ``incprofd``.

One *stream* is one publisher — a rank, node, or synthetic load thread.
The registry owns per-stream state (its online tracker, ingest counters,
sequence tracking) and the lifecycle: streams register with a ``hello``,
stay alive as long as traffic (or explicit touches) arrive, and are
expired when idle longer than the configured timeout — exactly the LDMS
aggregator behaviour of dropping metric sets whose node went silent.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core.online import OnlinePhaseTracker
from repro.util.errors import (
    ServiceError,
    StreamConflictError,
    UnknownStreamError,
    ValidationError,
)


class StreamState:
    """Everything the service knows about one publisher stream.

    The ``queue`` attribute is attached by the server (the registry is
    transport-agnostic); counter updates take the per-stream lock so the
    reader thread and the worker pool can update concurrently.
    """

    def __init__(
        self,
        stream_id: str,
        app: str,
        rank: int,
        now: float,
        tracker: Optional[OnlinePhaseTracker] = None,
    ) -> None:
        self.stream_id = stream_id
        self.app = app
        self.rank = rank
        self.tracker = tracker
        self.connected_at = now
        self.last_seen = now
        self.lock = threading.Lock()
        #: Held by a worker for one whole classify batch and by the
        #: checkpointer while snapshotting — a checkpoint never observes
        #: a stream with its differencer advanced but history not yet
        #: appended.
        self.work_lock = threading.Lock()
        self.queue: Any = None  # BoundedStreamQueue, attached by the server
        self.scheduled = False  # worker-pool scheduling flag (server-owned)
        self.closed = False
        self.last_seq = -1
        #: Highest sequence number actually consumed by the worker pool
        #: (differenced/classified) — the resume anchor a checkpoint
        #: records, as opposed to ``last_seq`` which is merely admitted.
        self.processed_seq = -1
        self.seq_gaps = 0
        self.enqueued = 0
        self.processed = 0
        self.novel = 0
        self.dropped_oldest = 0
        self.rejected = 0
        self.heartbeats = 0
        #: Live model refits this stream's tracker has performed.
        self.refits = 0

    # ------------------------------------------------------------------
    def touch(self, now: float) -> None:
        with self.lock:
            self.last_seen = now

    def note_sequence(self, seq: int) -> None:
        """Track the publisher's interval index; count gaps (lost dumps)."""
        with self.lock:
            if self.last_seq >= 0 and seq > self.last_seq + 1:
                self.seq_gaps += seq - self.last_seq - 1
            self.last_seq = max(self.last_seq, seq)

    def admit_sequence(self, seq: int, now: float) -> bool:
        """Touch, duplicate-check, and sequence-track in one lock trip.

        The admission fast path runs this once per snapshot instead of
        three separate lock acquisitions.  Returns ``False`` when
        ``seq`` is already admitted (``seq <= last_seq``) — the caller
        acks the duplicate without enqueuing; the stream still counts
        as seen either way.
        """
        with self.lock:
            self.last_seen = now
            if seq <= self.last_seq:
                return False
            if self.last_seq >= 0 and seq > self.last_seq + 1:
                self.seq_gaps += seq - self.last_seq - 1
            self.last_seq = seq
            return True

    @property
    def lag(self) -> int:
        """Intervals accepted but not yet classified."""
        with self.lock:
            return max(0, self.enqueued - self.processed - self.dropped_oldest)

    def phase_sequence(self) -> List[int]:
        return self.tracker.phase_sequence() if self.tracker else []

    def info(self, now: float) -> Dict[str, Any]:
        """JSON-ready per-stream status row."""
        with self.lock:
            row = {
                "stream_id": self.stream_id,
                "app": self.app,
                "rank": self.rank,
                "connected_at": self.connected_at,
                "idle_seconds": max(0.0, now - self.last_seen),
                "last_seq": self.last_seq,
                "processed_seq": self.processed_seq,
                "seq_gaps": self.seq_gaps,
                "enqueued": self.enqueued,
                "processed": self.processed,
                "novel": self.novel,
                "dropped_oldest": self.dropped_oldest,
                "rejected": self.rejected,
                "heartbeats": self.heartbeats,
                "refits": self.refits,
                "closed": self.closed,
            }
        row["lag"] = max(0, row["enqueued"] - row["processed"] - row["dropped_oldest"])
        if self.tracker is not None:
            row["phase_counts"] = {str(k): v for k, v in self.tracker.phase_counts().items()}
            row["model_version"] = getattr(self.tracker, "model_version", 0)
        return row


class StreamRegistry:
    """Thread-safe registry of live (and recently finished) streams."""

    def __init__(
        self,
        idle_timeout: float = 30.0,
        clock=time.monotonic,
        finished_capacity: int = 64,
    ) -> None:
        if idle_timeout <= 0:
            raise ValidationError("idle timeout must be positive")
        if finished_capacity < 1:
            raise ValidationError("finished capacity must be positive")
        self.idle_timeout = idle_timeout
        self.finished_capacity = finished_capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._streams: Dict[str, StreamState] = {}
        self._finished: Deque[Dict[str, Any]] = deque(maxlen=finished_capacity)
        self.registered = 0
        self.expired = 0
        #: Finished-stream rows evicted by the drop-oldest cap — the
        #: counter that makes the bounded ring's loss *visible* instead
        #: of silently shrinking fleet occupancy history.
        self.finished_evicted = 0
        #: Optional hook invoked (outside the registry lock) with each
        #: StreamState leaving the active set — both orderly ``close``
        #: and idle expiry.  The server uses it to retain a final phase
        #: signature for fleet analytics after the tracker is gone.
        self.on_close: Optional[Callable[[StreamState], None]] = None

    def _note_finished_locked(self, row: Dict[str, Any]) -> None:
        """Append to the finished ring, counting drop-oldest evictions."""
        if len(self._finished) >= self.finished_capacity:
            self.finished_evicted += 1
        self._finished.append(row)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        stream_id: str,
        app: str = "",
        rank: int = 0,
        tracker: Optional[OnlinePhaseTracker] = None,
    ) -> StreamState:
        if not stream_id:
            raise ServiceError("stream id must be non-empty")
        now = self._clock()
        with self._lock:
            if stream_id in self._streams:
                raise StreamConflictError(
                    f"stream {stream_id!r} is already registered")
            state = StreamState(stream_id, app, rank, now, tracker)
            self._streams[stream_id] = state
            self.registered += 1
            return state

    def adopt(self, state: StreamState) -> StreamState:
        """Install a restored stream (checkpoint recovery), replacing any."""
        state.touch(self._clock())
        with self._lock:
            if state.stream_id not in self._streams:
                self.registered += 1
            self._streams[state.stream_id] = state
        return state

    def get(self, stream_id: str) -> StreamState:
        state = self.get_or_none(stream_id)
        if state is None:
            raise UnknownStreamError(
                f"unknown stream {stream_id!r} (hello first?)")
        return state

    def get_or_none(self, stream_id: str) -> Optional[StreamState]:
        with self._lock:
            return self._streams.get(stream_id)

    def touch(self, stream_id: str) -> None:
        self.get(stream_id).touch(self._clock())

    def now(self) -> float:
        """The registry's clock reading (injectable in tests)."""
        return self._clock()

    def close(self, stream_id: str) -> Optional[StreamState]:
        """Remove a stream on orderly shutdown; keep its final stats."""
        with self._lock:
            state = self._streams.pop(stream_id, None)
        if state is not None:
            state.closed = True
            row = state.info(self._clock())
            with self._lock:
                self._note_finished_locked(row)
            if self.on_close is not None:
                self.on_close(state)
        return state

    def expire_idle(self, now: Optional[float] = None) -> List[str]:
        """Expire every stream idle longer than the timeout; return ids."""
        now = self._clock() if now is None else now
        with self._lock:
            stale = [sid for sid, s in self._streams.items()
                     if now - s.last_seen > self.idle_timeout]
            expired = [self._streams.pop(sid) for sid in stale]
        for state in expired:
            state.closed = True
            row = state.info(now)
            with self._lock:
                self._note_finished_locked(row)
            if self.on_close is not None:
                self.on_close(state)
        self.expired += len(expired)
        return [s.stream_id for s in expired]

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def finished_rows(self) -> List[Dict[str, Any]]:
        """The finished-stream ring as JSON-ready rows (for checkpoints)."""
        with self._lock:
            return list(self._finished)

    def restore_finished(self, rows: List[Dict[str, Any]],
                         registered: int = 0, expired: int = 0,
                         finished_evicted: int = 0) -> None:
        """Reinstall the finished ring and lifetime counters on recovery.

        A checkpoint written under a larger cap may carry more rows than
        this registry keeps; the overflow is dropped oldest-first and
        counted as evictions, never silently truncated.
        """
        with self._lock:
            self._finished.clear()
            overflow = max(0, len(rows) - self.finished_capacity)
            self._finished.extend(rows[overflow:])
            self.finished_evicted = finished_evicted + overflow
        self.registered = registered
        self.expired = expired

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def active(self) -> List[StreamState]:
        with self._lock:
            return list(self._streams.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)

    def fleet_status(self) -> Dict[str, Any]:
        """Aggregated fleet view: per-stream rows + cross-stream occupancy.

        Occupancy spans live streams *and* the finished ring, so a
        dashboard polled right after a fleet drains still sees where the
        intervals went.
        """
        now = self._clock()
        streams = [state.info(now) for state in self.active()]
        with self._lock:
            finished = list(self._finished)
        occupancy: Dict[str, int] = {}
        for row in streams + finished:
            for phase, count in row.get("phase_counts", {}).items():
                occupancy[phase] = occupancy.get(phase, 0) + count
        total = sum(occupancy.values())
        return {
            "streams": sorted(streams, key=lambda r: r["stream_id"]),
            "n_streams": len(streams),
            "registered_total": self.registered,
            "expired_total": self.expired,
            "phase_occupancy": {
                phase: {"intervals": count,
                        "share": count / total if total else 0.0}
                for phase, count in sorted(occupancy.items())
            },
            "total_lag": sum(row["lag"] for row in streams),
            "novel_total": sum(row["novel"] for row in streams + finished),
            "finished": finished,
        }
