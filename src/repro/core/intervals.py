"""Interval profiles from cumulative snapshots.

The data IncProf writes is cumulative-since-start (gprof semantics), so
the first analysis step subtracts each snapshot from its successor to get
*interval profiles*: per-interval tuples of function self-time — the
clustering attributes — plus per-interval call counts, which Algorithm 1
needs for site ordering and body/loop designation.

Only functions that appear in the profile data become attribute
dimensions (the paper's footnote 3: not every program function shows up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData
from repro.simulate.engine import SPONTANEOUS
from repro.util.errors import ProfileDataError


@dataclass
class IntervalData:
    """Per-interval profile matrices.

    Attributes
    ----------
    functions:
        Attribute dimensions (function names), sorted.
    self_time:
        ``(n_intervals, n_functions)`` seconds of gprof 'self' time.
    calls:
        ``(n_intervals, n_functions)`` calls begun in each interval.
    timestamps:
        Interval end times.
    interval:
        Nominal interval length in seconds.
    interval_gmons:
        Optional per-interval gmon deltas (kept for call-graph features).
    """

    functions: List[str]
    self_time: np.ndarray
    calls: np.ndarray
    timestamps: np.ndarray
    interval: float
    interval_gmons: Optional[List[GmonData]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n_i, n_f = self.self_time.shape
        if self.calls.shape != (n_i, n_f):
            raise ProfileDataError("self_time and calls shapes disagree")
        if len(self.functions) != n_f:
            raise ProfileDataError("function list does not match matrix width")
        if self.timestamps.shape != (n_i,):
            raise ProfileDataError("timestamps length does not match interval count")

    @property
    def n_intervals(self) -> int:
        return self.self_time.shape[0]

    @property
    def n_functions(self) -> int:
        return self.self_time.shape[1]

    def index_of(self, function: str) -> int:
        return self.functions.index(function)

    def active(self) -> np.ndarray:
        """Boolean ``(n_intervals, n_functions)``: non-zero self-time."""
        return self.self_time > 0.0

    def function_total_seconds(self) -> np.ndarray:
        """Total self-time per function across all intervals."""
        return self.self_time.sum(axis=0)

    def drop_inactive_functions(self) -> "IntervalData":
        """Remove functions with zero self-time everywhere.

        Call-only entries (arcs but never sampled) carry no clustering
        signal and would otherwise inflate the attribute space.
        """
        keep = self.self_time.sum(axis=0) > 0.0
        names = [f for f, k in zip(self.functions, keep) if k]
        return IntervalData(
            functions=names,
            self_time=self.self_time[:, keep],
            calls=self.calls[:, keep],
            timestamps=self.timestamps,
            interval=self.interval,
            interval_gmons=self.interval_gmons,
        )


def _snapshot_pairs(snapshots: Sequence[GmonData]) -> List[GmonData]:
    """Difference consecutive cumulative snapshots (first vs empty)."""
    deltas: List[GmonData] = []
    previous: Optional[GmonData] = None
    for snap in snapshots:
        if previous is None:
            empty = GmonData(sample_period=snap.sample_period, rank=snap.rank)
            deltas.append(snap.subtract(empty))
        else:
            if snap.timestamp < previous.timestamp:
                raise ProfileDataError("snapshots are not in time order")
            deltas.append(snap.subtract(previous))
        previous = snap
    return deltas


def intervals_from_snapshots(
    snapshots: Sequence[GmonData],
    drop_short_final: bool = True,
    min_final_fraction: float = 0.5,
    keep_gmons: bool = True,
) -> IntervalData:
    """Build :class:`IntervalData` from an ordered cumulative snapshot series.

    ``drop_short_final`` discards a trailing partial interval shorter than
    ``min_final_fraction`` of the nominal interval (the program-exit dump
    right after a periodic one would otherwise add a near-empty point that
    k-means would have to absorb).
    """
    if len(snapshots) < 2:
        raise ProfileDataError("need at least two snapshots to form an interval")

    interval = snapshots[0].timestamp if snapshots[0].timestamp > 0 else (
        snapshots[1].timestamp - snapshots[0].timestamp
    )
    if interval <= 0:
        raise ProfileDataError("could not infer a positive interval length")

    deltas = _snapshot_pairs(snapshots)
    timestamps = [s.timestamp for s in snapshots]

    if drop_short_final and len(deltas) >= 2:
        final_len = timestamps[-1] - timestamps[-2]
        if final_len < min_final_fraction * interval:
            deltas = deltas[:-1]
            timestamps = timestamps[:-1]

    # Attribute dimensions: every function sampled anywhere in the run.
    # (The *last* snapshot is cumulative, but we derive from deltas so the
    # same code handles pre-differenced inputs.)
    names = sorted(
        {f for d in deltas for f in d.hist} | {c for d in deltas for (_p, c) in d.arcs}
        - {SPONTANEOUS}
    )
    name_index = {name: i for i, name in enumerate(names)}

    self_time = np.zeros((len(deltas), len(names)))
    calls = np.zeros((len(deltas), len(names)), dtype=np.int64)
    for i, delta in enumerate(deltas):
        for func, ticks in delta.hist.items():
            if func in name_index:
                self_time[i, name_index[func]] = ticks * delta.sample_period
        for (_caller, callee), count in delta.arcs.items():
            if callee in name_index:
                calls[i, name_index[callee]] += count

    return IntervalData(
        functions=names,
        self_time=self_time,
        calls=calls,
        timestamps=np.asarray(timestamps, dtype=float),
        interval=float(interval),
        interval_gmons=deltas if keep_gmons else None,
    )


def intervals_from_flat_profiles(
    profiles: Sequence[FlatProfile],
    interval: float = 1.0,
) -> IntervalData:
    """Build :class:`IntervalData` from *cumulative* parsed flat profiles.

    This is the text-report path the original tool takes (it shells out to
    ``gprof`` per sample file and parses the tables); values carry the
    report's two-decimal precision.
    """
    if len(profiles) < 2:
        raise ProfileDataError("need at least two flat profiles to form an interval")

    names = sorted({e.name for p in profiles for e in p} - {SPONTANEOUS})
    name_index = {name: i for i, name in enumerate(names)}
    n = len(profiles)

    cum_time = np.zeros((n, len(names)))
    cum_calls = np.zeros((n, len(names)), dtype=np.int64)
    for i, profile in enumerate(profiles):
        for entry in profile:
            j = name_index.get(entry.name)
            if j is None:
                continue
            cum_time[i, j] = entry.self_seconds
            cum_calls[i, j] = entry.calls or 0

    self_time = np.diff(cum_time, axis=0, prepend=np.zeros((1, len(names))))
    calls = np.diff(cum_calls, axis=0, prepend=np.zeros((1, len(names)), dtype=np.int64))
    np.clip(self_time, 0.0, None, out=self_time)
    np.clip(calls, 0, None, out=calls)

    timestamps = np.array(
        [p.timestamp if p.timestamp else (i + 1) * interval for i, p in enumerate(profiles)]
    )
    return IntervalData(
        functions=names,
        self_time=self_time,
        calls=calls,
        timestamps=timestamps,
        interval=interval,
        interval_gmons=None,
    )
