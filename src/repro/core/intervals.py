"""Interval profiles from cumulative snapshots.

The data IncProf writes is cumulative-since-start (gprof semantics), so
the first analysis step subtracts each snapshot from its successor to get
*interval profiles*: per-interval tuples of function self-time — the
clustering attributes — plus per-interval call counts, which Algorithm 1
needs for site ordering and body/loop designation.

Only functions that appear in the profile data become attribute
dimensions (the paper's footnote 3: not every program function shows up).
"""

from __future__ import annotations

from collections.abc import Sequence as _Sequence
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData
from repro.simulate.engine import SPONTANEOUS
from repro.util.errors import ProfileDataError, ValidationError


@dataclass
class IntervalData:
    """Per-interval profile matrices.

    Attributes
    ----------
    functions:
        Attribute dimensions (function names), sorted.
    self_time:
        ``(n_intervals, n_functions)`` seconds of gprof 'self' time.
    calls:
        ``(n_intervals, n_functions)`` calls begun in each interval.
    timestamps:
        Interval end times.
    interval:
        Nominal interval length in seconds.
    interval_gmons:
        Optional per-interval gmon deltas (kept for call-graph features).
    """

    functions: List[str]
    self_time: np.ndarray
    calls: np.ndarray
    timestamps: np.ndarray
    interval: float
    interval_gmons: Optional[Sequence[GmonData]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n_i, n_f = self.self_time.shape
        if self.calls.shape != (n_i, n_f):
            raise ProfileDataError("self_time and calls shapes disagree")
        if len(self.functions) != n_f:
            raise ProfileDataError("function list does not match matrix width")
        if self.timestamps.shape != (n_i,):
            raise ProfileDataError("timestamps length does not match interval count")

    @property
    def n_intervals(self) -> int:
        return self.self_time.shape[0]

    @property
    def n_functions(self) -> int:
        return self.self_time.shape[1]

    def index_of(self, function: str) -> int:
        return self.functions.index(function)

    def active(self) -> np.ndarray:
        """Boolean ``(n_intervals, n_functions)``: non-zero self-time."""
        return self.self_time > 0.0

    def function_total_seconds(self) -> np.ndarray:
        """Total self-time per function across all intervals."""
        return self.self_time.sum(axis=0)

    def drop_inactive_functions(self) -> "IntervalData":
        """Remove functions with zero self-time everywhere.

        Call-only entries (arcs but never sampled) carry no clustering
        signal and would otherwise inflate the attribute space.
        """
        keep = self.self_time.sum(axis=0) > 0.0
        names = [f for f, k in zip(self.functions, keep) if k]
        return IntervalData(
            functions=names,
            self_time=self.self_time[:, keep],
            calls=self.calls[:, keep],
            timestamps=self.timestamps,
            interval=self.interval,
            interval_gmons=self.interval_gmons,
        )


def _snapshot_pairs(snapshots: Sequence[GmonData]) -> List[GmonData]:
    """Difference consecutive cumulative snapshots (first vs empty).

    Reference implementation of the differencing step (per-pair
    ``GmonData.subtract``); :func:`intervals_from_snapshots` does the
    same subtraction as one aligned-matrix operation and keeps this
    around for tests to check against.
    """
    deltas: List[GmonData] = []
    previous: Optional[GmonData] = None
    for snap in snapshots:
        if previous is None:
            empty = GmonData(sample_period=snap.sample_period, rank=snap.rank)
            deltas.append(snap.subtract(empty))
        else:
            if snap.timestamp < previous.timestamp:
                raise ProfileDataError("snapshots are not in time order")
            deltas.append(snap.subtract(previous))
        previous = snap
    return deltas


def assemble_interval_data(
    tick_deltas: np.ndarray,
    arc_deltas: np.ndarray,
    all_funcs: Sequence[str],
    all_arcs: Sequence[Tuple[str, str]],
    timestamps: Sequence[float],
    periods: np.ndarray,
    metas: Sequence[Tuple[float, float, int]],
    interval: float,
    keep_gmons: bool = True,
) -> IntervalData:
    """Turn raw per-interval delta matrices into :class:`IntervalData`.

    The one place the delta -> attribute-matrix conversion lives: the
    batch path (:func:`intervals_from_snapshots`) and the streaming path
    (:class:`repro.core.incremental.IncrementalAnalyzer`) both call this,
    so however the deltas were accumulated — one vectorized ``np.diff``
    or one appended row per snapshot — the resulting interval data is
    identical.  Column order of ``all_funcs``/``all_arcs`` is arbitrary;
    the attribute vocabulary is re-derived from the deltas and sorted.
    """
    # Attribute dimensions: every function that shows up in the *deltas*
    # (the paper's footnote 3) — sampled in some interval, or the callee
    # of an arc that fired in some interval.
    sampled = tick_deltas.any(axis=0)
    fired = arc_deltas.any(axis=0)
    active_funcs = {all_funcs[j] for j in np.nonzero(sampled)[0]}
    active_funcs |= {all_arcs[j][1] for j in np.nonzero(fired)[0]}
    active_funcs -= {SPONTANEOUS}
    names = sorted(active_funcs)
    name_index = {name: i for i, name in enumerate(names)}

    keep_func = np.array([f in name_index for f in all_funcs], dtype=bool)
    self_time = tick_deltas[:, keep_func].astype(float)
    self_time *= np.asarray(periods)[:, None]
    func_dest = np.array([name_index[f] for f, k in zip(all_funcs, keep_func) if k],
                         dtype=np.intp)
    # Columns of the union vocabulary are a subset in arbitrary positions;
    # scatter them into sorted attribute order.
    ordered_time = np.zeros((self_time.shape[0], len(names)))
    ordered_time[:, func_dest] = self_time

    # Calls into each attribute function: per-arc clamped deltas summed
    # over callers (an integer matmul against the arc->callee indicator).
    keep_arc = np.array([a[1] in name_index for a in all_arcs], dtype=bool)
    kept_arcs = [a for a, k in zip(all_arcs, keep_arc) if k]
    arc_to_name = np.zeros((len(kept_arcs), len(names)), dtype=np.int64)
    for j, (_caller, callee) in enumerate(kept_arcs):
        arc_to_name[j, name_index[callee]] = 1
    calls = arc_deltas[:, keep_arc] @ arc_to_name

    interval_gmons: Optional[Sequence[GmonData]] = None
    if keep_gmons:
        interval_gmons = LazyGmonDeltas(
            list(metas), tick_deltas, arc_deltas, list(all_funcs), list(all_arcs))

    return IntervalData(
        functions=names,
        self_time=ordered_time,
        calls=calls,
        timestamps=np.asarray(timestamps, dtype=float),
        interval=float(interval),
        interval_gmons=interval_gmons,
    )


def intervals_from_snapshots(
    snapshots: Sequence[GmonData],
    drop_short_final: bool = True,
    min_final_fraction: float = 0.5,
    keep_gmons: bool = True,
) -> IntervalData:
    """Build :class:`IntervalData` from an ordered cumulative snapshot series.

    ``drop_short_final`` discards a trailing partial interval shorter than
    ``min_final_fraction`` of the nominal interval (the program-exit dump
    right after a periodic one would otherwise add a near-empty point that
    k-means would have to absorb).

    The differencing itself is vectorized: one tick matrix and one
    per-arc matrix over the union vocabulary, a single ``np.diff`` +
    clamp along the time axis (exactly the per-pair clamped subtraction
    of :meth:`GmonData.subtract`), and a column filter that reproduces
    the delta-derived attribute vocabulary.
    """
    if len(snapshots) < 2:
        raise ProfileDataError("need at least two snapshots to form an interval")

    interval = snapshots[0].timestamp if snapshots[0].timestamp > 0 else (
        snapshots[1].timestamp - snapshots[0].timestamp
    )
    if interval <= 0:
        raise ProfileDataError("could not infer a positive interval length")

    timestamps = [s.timestamp for s in snapshots]
    periods = np.array([s.sample_period for s in snapshots])
    for i in range(1, len(snapshots)):
        if timestamps[i] < timestamps[i - 1]:
            raise ProfileDataError("snapshots are not in time order")
        if abs(periods[i] - periods[i - 1]) > 1e-12:
            raise ValidationError(
                "cannot subtract snapshots with different sample periods")

    # Union vocabulary over the whole series (column order is arbitrary
    # here; the attribute vocabulary is re-derived from the deltas in
    # assemble_interval_data).
    all_funcs = sorted({f for s in snapshots for f in s.hist})
    all_arcs = sorted({a for s in snapshots for a in s.arcs})
    func_col = {f: j for j, f in enumerate(all_funcs)}
    arc_col = {a: j for j, a in enumerate(all_arcs)}

    n = len(snapshots)
    cum_ticks = np.zeros((n, len(all_funcs)), dtype=np.int64)
    cum_arcs = np.zeros((n, len(all_arcs)), dtype=np.int64)
    for i, snap in enumerate(snapshots):
        row = cum_ticks[i]
        for func, ticks in snap.hist.items():
            row[func_col[func]] = ticks
        row = cum_arcs[i]
        for arc, count in snap.arcs.items():
            row[arc_col[arc]] = count

    # Interval deltas: diff along time (first row vs zero), clamped at
    # zero per entry — identical to GmonData.subtract pair by pair.
    tick_deltas = np.diff(cum_ticks, axis=0,
                          prepend=np.zeros((1, len(all_funcs)), dtype=np.int64))
    arc_deltas = np.diff(cum_arcs, axis=0,
                         prepend=np.zeros((1, len(all_arcs)), dtype=np.int64))
    np.clip(tick_deltas, 0, None, out=tick_deltas)
    np.clip(arc_deltas, 0, None, out=arc_deltas)

    if drop_short_final and n >= 2:
        final_len = timestamps[-1] - timestamps[-2]
        if final_len < min_final_fraction * interval:
            tick_deltas = tick_deltas[:-1]
            arc_deltas = arc_deltas[:-1]
            timestamps = timestamps[:-1]
            periods = periods[:-1]
            snapshots = snapshots[: len(timestamps)]

    metas = [(s.sample_period, s.timestamp, s.rank) for s in snapshots]
    return assemble_interval_data(
        tick_deltas, arc_deltas, all_funcs, all_arcs,
        timestamps, periods, metas, interval, keep_gmons=keep_gmons,
    )


class LazyGmonDeltas(_Sequence):
    """Per-interval :class:`GmonData` deltas, materialized per index.

    The analysis hot path (self-time features) never touches the delta
    *dicts* — only the matrices — so building 2×n_intervals dicts up
    front would be pure overhead.  Consumers that do need them (children
    -time features, call-graph lift) index or iterate this sequence;
    each entry is converted on first access and cached individually, so
    touching one interval costs one dict build, not n, and repeated
    access never re-materializes.  Entries with zero delta are omitted,
    matching ``GmonData.subtract``.
    """

    def __init__(self, metas: List[Tuple[float, float, int]],
                 tick_deltas: np.ndarray, arc_deltas: np.ndarray,
                 all_funcs: List[str],
                 all_arcs: List[Tuple[str, str]]) -> None:
        self._metas = metas
        self._tick_deltas = tick_deltas
        self._arc_deltas = arc_deltas
        self._all_funcs = all_funcs
        self._all_arcs = all_arcs
        self._cache: List[Optional[GmonData]] = [None] * len(metas)
        self._funcs_arr: Optional[np.ndarray] = None
        self._arcs_arr: Optional[np.ndarray] = None

    def _entry(self, i: int) -> GmonData:
        got = self._cache[i]
        if got is not None:
            return got
        if self._funcs_arr is None:
            self._funcs_arr = np.array(self._all_funcs, dtype=object)
            arcs_arr = np.empty(len(self._all_arcs), dtype=object)
            arcs_arr[:] = self._all_arcs
            self._arcs_arr = arcs_arr
        period, timestamp, rank = self._metas[i]
        trow = self._tick_deltas[i]
        tcols = np.nonzero(trow)[0]
        arow = self._arc_deltas[i]
        acols = np.nonzero(arow)[0]
        got = GmonData(
            sample_period=period,
            hist=dict(zip(self._funcs_arr[tcols].tolist(),
                          trow[tcols].tolist())),
            arcs=dict(zip(self._arcs_arr[acols].tolist(),
                          arow[acols].tolist())),
            timestamp=timestamp,
            rank=rank,
        )
        self._cache[i] = got
        return got

    def __len__(self) -> int:
        return len(self._metas)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._entry(i)
                    for i in range(*index.indices(len(self._metas)))]
        if index < 0:
            index += len(self._metas)
        if not 0 <= index < len(self._metas):
            raise IndexError("interval delta index out of range")
        return self._entry(index)

    def __iter__(self):
        return (self._entry(i) for i in range(len(self._metas)))


def intervals_from_flat_profiles(
    profiles: Sequence[FlatProfile],
    interval: float = 1.0,
) -> IntervalData:
    """Build :class:`IntervalData` from *cumulative* parsed flat profiles.

    This is the text-report path the original tool takes (it shells out to
    ``gprof`` per sample file and parses the tables); values carry the
    report's two-decimal precision.
    """
    if len(profiles) < 2:
        raise ProfileDataError("need at least two flat profiles to form an interval")

    names = sorted({e.name for p in profiles for e in p} - {SPONTANEOUS})
    name_index = {name: i for i, name in enumerate(names)}
    n = len(profiles)

    cum_time = np.zeros((n, len(names)))
    cum_calls = np.zeros((n, len(names)), dtype=np.int64)
    for i, profile in enumerate(profiles):
        for entry in profile:
            j = name_index.get(entry.name)
            if j is None:
                continue
            cum_time[i, j] = entry.self_seconds
            cum_calls[i, j] = entry.calls or 0

    self_time = np.diff(cum_time, axis=0, prepend=np.zeros((1, len(names))))
    calls = np.diff(cum_calls, axis=0, prepend=np.zeros((1, len(names)), dtype=np.int64))
    np.clip(self_time, 0.0, None, out=self_time)
    np.clip(calls, 0, None, out=calls)

    timestamps = np.array(
        [p.timestamp if p.timestamp else (i + 1) * interval for i, p in enumerate(profiles)]
    )
    return IntervalData(
        functions=names,
        self_time=self_time,
        calls=calls,
        timestamps=timestamps,
        interval=interval,
        interval_gmons=None,
    )
