"""Choosing the number of clusters (phases).

k-means needs k up front; the paper runs k = 1..8 and applies the *elbow*
method, with *silhouette* evaluated as an alternative (both implemented
here; the ablation bench compares them).  Eight was enough because no
studied application showed more than five phases.

Each k of the sweep is fit under its own child seed spawned from one
``numpy.random.SeedSequence``, so the per-k results are independent of
sweep order and of how the sweep is scheduled — fitting k = 1..kmax
serially, fitting each k in its own process (``workers``), or fitting a
single k in isolation all produce bit-identical clusterings.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.kmeans import KMeansResult, Seed, kmeans
from repro.util.errors import ClusteringError, ValidationError

DEFAULT_KMAX = 8

#: Variance-explained knee for the default elbow criterion, calibrated so
#: the method reproduces the paper's phase counts on all five workloads.
DEFAULT_ELBOW_THRESHOLD = 0.88

#: If the best multi-cluster fit only shaves this relative amount off the
#: k=1 WCSS, the data has no cluster structure and one phase is reported.
_FLAT_CURVE_FRACTION = 0.05

#: Floats per distance block in the chunked silhouette computation; the
#: working set stays ~32 MiB however many intervals are scored.
_SIL_CHUNK_BUDGET = 4 * 1024 * 1024


@dataclass(frozen=True)
class KSelection:
    """The fitted k sweep plus the chosen k."""

    method: str
    chosen_k: int
    results: Dict[int, KMeansResult]
    scores: Dict[int, float]  # per-k score used by the method

    @property
    def best(self) -> KMeansResult:
        return self.results[self.chosen_k]


def spawn_seedseqs(seed: Seed, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child seeds derived from ``seed``.

    Child i is ``SeedSequence(seed).spawn(...)[i]``, whose identity
    depends only on the root seed and i — not on ``count`` — so a sweep
    over k = 1..5 and one over k = 1..8 agree on their shared prefix,
    and tasks can be fanned out to workers in any order.  A Generator
    seed is accepted for backward compatibility; one draw from it forms
    the root entropy.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2 ** 63)))
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(count)


def _fit_one_k(points: np.ndarray, k: int, seedseq: np.random.SeedSequence,
               n_init: int) -> Tuple[int, KMeansResult]:
    """One sweep task (module-level so it pickles for worker processes)."""
    return k, kmeans(points, k, seed=seedseq, n_init=n_init)


def wcss_curve(
    points: np.ndarray,
    kmax: int = DEFAULT_KMAX,
    seed: Seed = 0,
    n_init: int = 8,
    workers: Optional[int] = None,
) -> Dict[int, KMeansResult]:
    """Fit k-means for k = 1..min(kmax, n_points).

    Every k gets its own independent child seed (see
    :func:`spawn_seedseqs`), so ``workers > 1`` — a process pool with
    one task per k — returns bit-identical results to the serial sweep.

    .. note:: Compatibility: earlier versions threaded one shared
       ``Generator`` through the fits in ascending-k order, which made
       each k's result depend on every smaller k having run first.  For
       a given integer seed the clusterings therefore differ from those
       versions, but they no longer depend on sweep order or schedule.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] < 1:
        raise ClusteringError("no points to cluster")
    top = min(kmax, points.shape[0])
    seeds = spawn_seedseqs(seed, top)
    ks = range(1, top + 1)
    if workers is not None and workers > 1 and top > 1:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_fit_one_k, points, k, seeds[k - 1], n_init)
                       for k in ks]
            return dict(f.result() for f in futures)
    return dict(_fit_one_k(points, k, seeds[k - 1], n_init) for k in ks)


def elbow_k(results: Dict[int, KMeansResult]) -> int:
    """Pick k at the elbow of the WCSS curve (max distance to chord).

    The curve ``(k, WCSS_k)`` is normalized to the unit square and the k
    farthest from the straight line between its endpoints is the elbow —
    a quantitative form of the classic visual rule.  Degenerate cases
    (flat curve, or immediate zero WCSS) fall back to the smallest k that
    already explains the data.
    """
    ks = np.array(sorted(results))
    wcss = np.array([results[k].inertia for k in ks])

    if ks.size == 1:
        return int(ks[0])
    if wcss[0] <= 0.0:
        return 1  # all points identical
    # Zero (or near-zero) WCSS reached early: the first k achieving it is exact.
    near_zero = wcss <= 1e-12 * wcss[0]
    if near_zero.any():
        first = int(ks[np.argmax(near_zero)])
        ks = ks[ks <= first]
        wcss = wcss[: ks.size]
        if ks.size <= 2:
            return first
    if (wcss[0] - wcss[-1]) / wcss[0] < _FLAT_CURVE_FRACTION:
        return 1  # no structure: k=1 is as good as kmax

    x = (ks - ks[0]) / (ks[-1] - ks[0])
    y = (wcss - wcss[-1]) / (wcss[0] - wcss[-1])
    # Distance from each point to the chord through (0,1) and (1,0):
    # |x + y - 1| / sqrt(2); the sqrt(2) is constant so skip it.
    dist = np.abs(x + y - 1.0)
    return int(ks[int(dist.argmax())])


#: Greedy-refinement parameters of the variance elbow: after the knee,
#: keep adding clusters while one more cluster still removes at least
#: ``ADVANCE_RATIO`` of the remaining WCSS — but never once the fit
#: already explains ``EXPLAINED_CAP`` of the variance.
ADVANCE_RATIO = 0.75
EXPLAINED_CAP = 0.97


def variance_elbow_k(
    results: Dict[int, KMeansResult],
    threshold: float = DEFAULT_ELBOW_THRESHOLD,
    advance_ratio: float = ADVANCE_RATIO,
    explained_cap: float = EXPLAINED_CAP,
) -> int:
    """Percentage-of-variance-explained form of the elbow criterion.

    Picks the smallest k whose clustering explains at least ``threshold``
    of the k=1 WCSS (the knee), then greedily refines: while the *next*
    cluster would still remove at least ``advance_ratio`` of the remaining
    WCSS — a sign the knee sat on top of real unresolved structure — and
    the current fit has not already explained ``explained_cap`` of the
    variance, advance k by one.

    The refinement matters when clusters are very unequal in mass: a huge
    dominant cluster can push the cumulative curve over the knee while a
    small genuine cluster (e.g. Graph500's bfs-loop intervals) is still
    merged; the remaining-WCSS ratio exposes it.  Robust likewise when
    interval mixtures put probability mass *between* phase centroids
    (boundary intervals), which flattens the geometric chord criterion.
    """
    ks = sorted(results)
    total = results[ks[0]].inertia
    # A (near-)zero k=1 WCSS means every interval is identical up to float
    # noise: one phase, no matter what the noise-scale curve looks like.
    if total <= 1e-12:
        return ks[0]

    chosen = ks[-1]
    for k in ks:
        if (total - results[k].inertia) / total >= threshold:
            chosen = k
            break

    while chosen + 1 in results:
        current = results[chosen].inertia
        explained = (total - current) / total
        if current <= 0.0 or explained >= explained_cap:
            break
        nxt = results[chosen + 1].inertia
        if (current - nxt) / current < advance_ratio:
            break
        chosen += 1
    return chosen


def _silhouette_means(points: np.ndarray,
                      labelings: Sequence[np.ndarray]) -> List[float]:
    """Mean silhouette for several labelings over ONE distance pass.

    Distances are produced in row chunks (``_SIL_CHUNK_BUDGET`` floats
    at a time — never the O(n^2) matrix plus a per-point Python loop),
    and each chunk's per-cluster distance sums come from a single
    ``(chunk, n) @ (n, k)`` matmul against the labeling's one-hot
    membership matrix.
    """
    n = points.shape[0]
    x_sq = np.einsum("ij,ij->i", points, points)

    # One-hot membership and cluster sizes per labeling, built once.
    onehots = []
    for labels in labelings:
        _, inv = np.unique(labels, return_inverse=True)
        k = int(inv.max()) + 1
        onehot = np.zeros((n, k))
        onehot[np.arange(n), inv] = 1.0
        onehots.append((inv, onehot, np.bincount(inv, minlength=k)))

    totals = np.zeros(len(labelings))
    chunk = max(1, _SIL_CHUNK_BUDGET // n)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        rows = points[start:stop]
        d = x_sq[start:stop, None] - 2.0 * (rows @ points.T)
        d += x_sq[None, :]
        np.maximum(d, 0.0, out=d)
        np.sqrt(d, out=d)
        d[np.arange(stop - start), np.arange(start, stop)] = 0.0

        for li, (inv, onehot, counts) in enumerate(onehots):
            own = inv[start:stop]
            sums = d @ onehot  # (chunk, k)
            row_idx = np.arange(stop - start)
            own_count = counts[own] - 1
            a = sums[row_idx, own] / np.maximum(own_count, 1)
            means = sums / counts[None, :]
            means[row_idx, own] = np.inf
            b = means.min(axis=1)
            denom = np.maximum(a, b)
            s = np.where((own_count == 0) | (denom == 0.0), 0.0,
                         (b - a) / np.where(denom == 0.0, 1.0, denom))
            totals[li] += s.sum()
    return [float(t / n) for t in totals]


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (from scratch).

    For each point: a = mean distance to its own cluster's other members,
    b = smallest mean distance to another cluster, s = (b - a)/max(a, b).
    Singleton clusters contribute s = 0 (standard convention).
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    n = points.shape[0]
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValidationError("silhouette requires at least two clusters")
    if unique.size > n - 1:
        raise ValidationError("silhouette requires k <= n - 1")
    return _silhouette_means(points, [labels])[0]


def _silhouette_sweep_scores(
    points: np.ndarray, results: Dict[int, KMeansResult]
) -> Dict[int, float]:
    """Silhouette score per valid k of a sweep (one distance pass total)."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    valid = [k for k in sorted(results) if 2 <= k <= n - 1]
    if not valid:
        return {}
    scores = _silhouette_means(points, [results[k].labels for k in valid])
    return dict(zip(valid, scores))


def silhouette_k(points: np.ndarray, results: Dict[int, KMeansResult]) -> int:
    """Pick the k (>= 2) maximizing mean silhouette."""
    scores = _silhouette_sweep_scores(points, results)
    best_k, best_score = None, -np.inf
    for k in sorted(scores):
        if scores[k] > best_score:
            best_k, best_score = k, scores[k]
    if best_k is None:
        return 1
    return best_k


def choose_k(
    points: np.ndarray,
    kmax: int = DEFAULT_KMAX,
    method: str = "elbow",
    seed: Seed = 0,
    n_init: int = 8,
    threshold: float = DEFAULT_ELBOW_THRESHOLD,
    workers: Optional[int] = None,
) -> KSelection:
    """Run the k sweep and select k with the requested method.

    ``workers`` fans the sweep out over a process pool (one task per k)
    without changing any result; see :func:`wcss_curve`.
    """
    if method not in ("elbow", "chord", "silhouette"):
        raise ValidationError(f"unknown k-selection method {method!r}")
    results = wcss_curve(points, kmax=kmax, seed=seed, n_init=n_init,
                         workers=workers)
    if method == "elbow":
        chosen = variance_elbow_k(results, threshold=threshold)
        scores = {k: r.inertia for k, r in results.items()}
    elif method == "chord":
        chosen = elbow_k(results)
        scores = {k: r.inertia for k, r in results.items()}
    else:
        scores = _silhouette_sweep_scores(points, results)
        chosen = 1
        best_score = -np.inf
        for k in sorted(scores):
            if scores[k] > best_score:
                chosen, best_score = k, scores[k]
    return KSelection(method=method, chosen_k=chosen, results=results, scores=scores)
