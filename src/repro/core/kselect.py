"""Choosing the number of clusters (phases).

k-means needs k up front; the paper runs k = 1..8 and applies the *elbow*
method, with *silhouette* evaluated as an alternative (both implemented
here; the ablation bench compares them).  Eight was enough because no
studied application showed more than five phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.core.kmeans import KMeansResult, kmeans
from repro.util.errors import ClusteringError, ValidationError

DEFAULT_KMAX = 8

#: Variance-explained knee for the default elbow criterion, calibrated so
#: the method reproduces the paper's phase counts on all five workloads.
DEFAULT_ELBOW_THRESHOLD = 0.88

#: If the best multi-cluster fit only shaves this relative amount off the
#: k=1 WCSS, the data has no cluster structure and one phase is reported.
_FLAT_CURVE_FRACTION = 0.05


@dataclass(frozen=True)
class KSelection:
    """The fitted k sweep plus the chosen k."""

    method: str
    chosen_k: int
    results: Dict[int, KMeansResult]
    scores: Dict[int, float]  # per-k score used by the method

    @property
    def best(self) -> KMeansResult:
        return self.results[self.chosen_k]


def wcss_curve(
    points: np.ndarray,
    kmax: int = DEFAULT_KMAX,
    seed: Union[int, np.random.Generator] = 0,
    n_init: int = 8,
) -> Dict[int, KMeansResult]:
    """Fit k-means for k = 1..min(kmax, n_points)."""
    points = np.asarray(points, dtype=float)
    if points.shape[0] < 1:
        raise ClusteringError("no points to cluster")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    top = min(kmax, points.shape[0])
    return {k: kmeans(points, k, seed=rng, n_init=n_init) for k in range(1, top + 1)}


def elbow_k(results: Dict[int, KMeansResult]) -> int:
    """Pick k at the elbow of the WCSS curve (max distance to chord).

    The curve ``(k, WCSS_k)`` is normalized to the unit square and the k
    farthest from the straight line between its endpoints is the elbow —
    a quantitative form of the classic visual rule.  Degenerate cases
    (flat curve, or immediate zero WCSS) fall back to the smallest k that
    already explains the data.
    """
    ks = np.array(sorted(results))
    wcss = np.array([results[k].inertia for k in ks])

    if ks.size == 1:
        return int(ks[0])
    if wcss[0] <= 0.0:
        return 1  # all points identical
    # Zero (or near-zero) WCSS reached early: the first k achieving it is exact.
    near_zero = wcss <= 1e-12 * wcss[0]
    if near_zero.any():
        first = int(ks[np.argmax(near_zero)])
        ks = ks[ks <= first]
        wcss = wcss[: ks.size]
        if ks.size <= 2:
            return first
    if (wcss[0] - wcss[-1]) / wcss[0] < _FLAT_CURVE_FRACTION:
        return 1  # no structure: k=1 is as good as kmax

    x = (ks - ks[0]) / (ks[-1] - ks[0])
    y = (wcss - wcss[-1]) / (wcss[0] - wcss[-1])
    # Distance from each point to the chord through (0,1) and (1,0):
    # |x + y - 1| / sqrt(2); the sqrt(2) is constant so skip it.
    dist = np.abs(x + y - 1.0)
    return int(ks[int(dist.argmax())])


#: Greedy-refinement parameters of the variance elbow: after the knee,
#: keep adding clusters while one more cluster still removes at least
#: ``ADVANCE_RATIO`` of the remaining WCSS — but never once the fit
#: already explains ``EXPLAINED_CAP`` of the variance.
ADVANCE_RATIO = 0.75
EXPLAINED_CAP = 0.97


def variance_elbow_k(
    results: Dict[int, KMeansResult],
    threshold: float = DEFAULT_ELBOW_THRESHOLD,
    advance_ratio: float = ADVANCE_RATIO,
    explained_cap: float = EXPLAINED_CAP,
) -> int:
    """Percentage-of-variance-explained form of the elbow criterion.

    Picks the smallest k whose clustering explains at least ``threshold``
    of the k=1 WCSS (the knee), then greedily refines: while the *next*
    cluster would still remove at least ``advance_ratio`` of the remaining
    WCSS — a sign the knee sat on top of real unresolved structure — and
    the current fit has not already explained ``explained_cap`` of the
    variance, advance k by one.

    The refinement matters when clusters are very unequal in mass: a huge
    dominant cluster can push the cumulative curve over the knee while a
    small genuine cluster (e.g. Graph500's bfs-loop intervals) is still
    merged; the remaining-WCSS ratio exposes it.  Robust likewise when
    interval mixtures put probability mass *between* phase centroids
    (boundary intervals), which flattens the geometric chord criterion.
    """
    ks = sorted(results)
    total = results[ks[0]].inertia
    # A (near-)zero k=1 WCSS means every interval is identical up to float
    # noise: one phase, no matter what the noise-scale curve looks like.
    if total <= 1e-12:
        return ks[0]

    chosen = ks[-1]
    for k in ks:
        if (total - results[k].inertia) / total >= threshold:
            chosen = k
            break

    while chosen + 1 in results:
        current = results[chosen].inertia
        explained = (total - current) / total
        if current <= 0.0 or explained >= explained_cap:
            break
        nxt = results[chosen + 1].inertia
        if (current - nxt) / current < advance_ratio:
            break
        chosen += 1
    return chosen


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (from scratch).

    For each point: a = mean distance to its own cluster's other members,
    b = smallest mean distance to another cluster, s = (b - a)/max(a, b).
    Singleton clusters contribute s = 0 (standard convention).
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels)
    n = points.shape[0]
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValidationError("silhouette requires at least two clusters")
    if unique.size > n - 1:
        raise ValidationError("silhouette requires k <= n - 1")

    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))

    scores = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        own_count = own.sum() - 1
        if own_count == 0:
            scores[i] = 0.0
            continue
        a = dists[i, own].sum() / own_count
        b = np.inf
        for cluster in unique:
            if cluster == labels[i]:
                continue
            members = labels == cluster
            b = min(b, dists[i, members].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def silhouette_k(points: np.ndarray, results: Dict[int, KMeansResult]) -> int:
    """Pick the k (>= 2) maximizing mean silhouette."""
    best_k, best_score = None, -np.inf
    n = np.asarray(points).shape[0]
    for k, result in sorted(results.items()):
        if k < 2 or k > n - 1:
            continue
        score = silhouette_score(points, result.labels)
        if score > best_score:
            best_k, best_score = k, score
    if best_k is None:
        return 1
    return best_k


def choose_k(
    points: np.ndarray,
    kmax: int = DEFAULT_KMAX,
    method: str = "elbow",
    seed: Union[int, np.random.Generator] = 0,
    n_init: int = 8,
    threshold: float = DEFAULT_ELBOW_THRESHOLD,
) -> KSelection:
    """Run the k sweep and select k with the requested method."""
    if method not in ("elbow", "chord", "silhouette"):
        raise ValidationError(f"unknown k-selection method {method!r}")
    results = wcss_curve(points, kmax=kmax, seed=seed, n_init=n_init)
    if method == "elbow":
        chosen = variance_elbow_k(results, threshold=threshold)
        scores = {k: r.inertia for k, r in results.items()}
    elif method == "chord":
        chosen = elbow_k(results)
        scores = {k: r.inertia for k, r in results.items()}
    else:
        chosen = silhouette_k(points, results)
        scores = {}
        n = np.asarray(points).shape[0]
        for k, r in results.items():
            if 2 <= k <= n - 1:
                scores[k] = silhouette_score(points, r.labels)
    return KSelection(method=method, chosen_k=chosen, results=results, scores=scores)
