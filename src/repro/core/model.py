"""Fundamental result types shared across the analysis pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np


class InstType(str, Enum):
    """How a discovered site should be instrumented.

    *body*: heartbeat begin/end wrap the function body (the covering
    interval saw calls to the function).

    *loop*: the function had self-time but zero calls in the covering
    interval — it kept running from an earlier invocation, so a loop
    inside its body must carry the heartbeat.
    """

    BODY = "body"
    LOOP = "loop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Site:
    """An instrumentation site: a function plus how to instrument it."""

    function: str
    inst_type: InstType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function} [{self.inst_type.value}]"


@dataclass(frozen=True)
class SelectedSite:
    """A site selected for a phase, with its coverage shares.

    ``phase_pct``/``app_pct`` follow the paper's tables: intervals are
    attributed to the earliest-selected site active in them; the shares
    are attributed intervals over the phase's and the whole run's interval
    counts respectively.
    """

    site: Site
    phase_id: int
    hb_id: int
    phase_pct: float
    app_pct: float
    covered_intervals: Tuple[int, ...]

    @property
    def function(self) -> str:
        return self.site.function

    @property
    def inst_type(self) -> InstType:
        return self.site.inst_type


@dataclass(frozen=True)
class Phase:
    """One detected phase: a cluster of profile intervals."""

    phase_id: int
    interval_indices: Tuple[int, ...]
    centroid: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.interval_indices)

    def fraction_of(self, total_intervals: int) -> float:
        """This phase's share of the whole run, by interval count."""
        if total_intervals <= 0:
            return 0.0
        return len(self.interval_indices) / total_intervals
