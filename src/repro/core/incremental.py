"""The incremental streaming analysis engine.

The paper's pitch is *incremental* profiling, and this module makes the
analysis side live up to it: an :class:`IncrementalAnalyzer` accepts
cumulative gmon snapshots **one at a time**, appends one interval row
per snapshot via incremental differencing (no O(n^2) re-diff of the
whole series), and maintains a live phase model between full fits —
nearest-centroid assignment, mini-batch centroid refinement, and a
drift detector that triggers a *bounded* re-sweep (k-1..k+1) only when
the stream stops looking like the model.

Batch analysis is the degenerate case: feed every snapshot, then
:meth:`IncrementalAnalyzer.finalize`, which assembles the accumulated
delta rows through the same :func:`~repro.core.intervals.assemble_interval_data`
helper the batch path uses and runs the full pipeline — so
``analyze_snapshots`` (now a thin driver over this engine) returns
results identical to the historical implementation.

Label stability across refits comes from greedy centroid matching
(:func:`match_phase_labels`): each refit's clusters inherit the stable
id of the nearest old centroid, unmatched clusters get fresh ids, and
ids are never reused — so phase 2 before a refit and phase 2 after it
mean the same behaviour.  The same helpers drive the online tracker's
live refits (see :class:`~repro.core.online.OnlinePhaseTracker`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import assemble_interval_data
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.kselect import (
    DEFAULT_KMAX,
    _silhouette_means,
    choose_k,
    spawn_seedseqs,
)
from repro.core.phases import phases_from_labels
from repro.core.pipeline import AnalysisConfig, AnalysisResult, analyze_intervals
from repro.gprof.gmon import GmonData
from repro.util.errors import ProfileDataError, ValidationError

#: Live-assignment label for intervals outside every phase's gate
#: (same value as :data:`repro.core.online.NOVEL`).
NOVEL = -1

#: Absolute floor on novelty gates, matching the online tracker: a
#: zero-variance phase still accepts intervals within this distance.
GATE_FLOOR = 0.05

#: How far (in multiples of a phase's novelty gate) a refit centroid may
#: sit from the old one and still inherit its stable id.
MATCH_RADIUS_FACTOR = 2.0


# ----------------------------------------------------------------------
# shared model-maintenance helpers (engine + online tracker)
# ----------------------------------------------------------------------
def calibrate_gates(
    features: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    quantile: float = 0.95,
    slack: float = 1.5,
) -> np.ndarray:
    """Per-cluster novelty gates from the fit's own member distances.

    A cluster's gate is ``slack`` times the ``quantile`` of its members'
    centroid distances, floored at :data:`GATE_FLOOR` — the calibration
    the online tracker has always used, factored out so live refits and
    offline training stay consistent.
    """
    if not 0 < quantile <= 1 or slack <= 0:
        raise ValidationError("quantile in (0,1], slack > 0 required")
    labels = np.asarray(labels)
    gates = np.full(centroids.shape[0], GATE_FLOOR)
    for cid in range(centroids.shape[0]):
        members = features[labels == cid]
        if members.shape[0] == 0:
            continue
        dists = np.linalg.norm(members - centroids[cid], axis=1)
        gates[cid] = max(float(np.quantile(dists, quantile)) * slack, GATE_FLOOR)
    return gates


def match_phase_labels(
    old_centroids: np.ndarray,
    old_labels: Sequence[int],
    new_centroids: np.ndarray,
    next_label: int,
    max_distance: Any = None,
) -> Tuple[np.ndarray, int]:
    """Stable phase ids for a refit's clusters via greedy centroid matching.

    Pairs old and new centroids greedily by globally smallest distance
    (the greedy form of Hungarian assignment — optimal matchings and
    greedy ones agree whenever phases are well separated, which is
    exactly when label stability matters).  Each matched new cluster
    inherits its partner's stable id; unmatched new clusters (k grew, or
    genuinely new behaviour) get fresh ids from ``next_label`` upward,
    ordered by cluster index so the assignment is deterministic.

    ``max_distance`` caps how far a pair may be and still count as the
    *same* phase — a scalar, or one radius per old centroid (callers
    pass a multiple of each phase's novelty gate).  Without a cap, a
    genuinely new cluster sitting far from everything would still steal
    the least-bad old id; with it, "phase 2 survived the refit" means
    the new centroid is within phase 2's own similarity radius.

    Returns ``(labels_for_new_rows, next_unused_label)``.  Ids of old
    clusters that found no partner (k shrank) simply retire — they are
    never reassigned, so a consumer holding "phase 3" from before the
    refit can still interpret it.
    """
    old_centroids = np.asarray(old_centroids, dtype=float)
    new_centroids = np.asarray(new_centroids, dtype=float)
    n_old = old_centroids.shape[0]
    n_new = new_centroids.shape[0]
    labels = np.full(n_new, -1, dtype=int)
    if n_old and n_new:
        width = max(old_centroids.shape[1], new_centroids.shape[1])
        if old_centroids.shape[1] < width:
            old_centroids = np.pad(
                old_centroids, ((0, 0), (0, width - old_centroids.shape[1])))
        if new_centroids.shape[1] < width:
            new_centroids = np.pad(
                new_centroids, ((0, 0), (0, width - new_centroids.shape[1])))
        dist = np.linalg.norm(
            old_centroids[:, None, :] - new_centroids[None, :, :], axis=2)
        if max_distance is not None:
            caps = np.broadcast_to(
                np.asarray(max_distance, dtype=float).reshape(-1, 1)
                if np.ndim(max_distance) else float(max_distance),
                (n_old, 1))
        matched_old: set = set()
        matched = 0
        for flat in np.argsort(dist, axis=None, kind="stable"):
            i, j = divmod(int(flat), n_new)
            if i in matched_old or labels[j] >= 0:
                continue
            if max_distance is not None and dist[i, j] > caps[i, 0]:
                continue  # too far to be the same phase (caps vary per row)
            labels[j] = int(old_labels[i])
            matched_old.add(i)
            matched += 1
            if matched == min(n_old, n_new):
                break
    for j in range(n_new):
        if labels[j] < 0:
            labels[j] = next_label
            next_label += 1
    return labels, next_label


@dataclass(frozen=True)
class DriftConfig:
    """When does the live model no longer fit the stream?"""

    #: Sliding window of recent intervals the detector looks at.
    window: int = 32
    #: Don't judge before this many intervals are in the window.
    min_samples: int = 16
    #: Fire when at least this fraction of the window is novel.
    novel_rate: float = 0.3
    #: Fire when the window's mean squared centroid distance exceeds this
    #: multiple of the fit-time baseline (inertia degradation).
    inertia_factor: float = 2.5

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1:
            raise ValidationError("drift window sizes must be positive")
        if not 0 < self.novel_rate <= 1:
            raise ValidationError("novel-rate threshold must be in (0, 1]")
        if self.inertia_factor <= 1:
            raise ValidationError("inertia factor must exceed 1")


class DriftDetector:
    """Sliding-window drift detection over live classifications.

    Two independent triggers, either of which fires:

    - *novel rate*: the recent fraction of gate-rejected intervals —
      catches genuinely new behaviour (phases the model has never seen);
    - *inertia degradation*: the recent mean squared distance to the
      assigned centroid versus the fit-time baseline — catches phases
      that still match but have *moved* (workload drift within a phase).
    """

    def __init__(self, config: DriftConfig = DriftConfig()) -> None:
        self.config = config
        self._novel: Deque[bool] = deque(maxlen=config.window)
        self._sq: Deque[float] = deque(maxlen=config.window)
        self.baseline: Optional[float] = None

    def reset(self, baseline: Optional[float]) -> None:
        """Clear the window and install a fresh fit-time baseline."""
        self._novel.clear()
        self._sq.clear()
        self.baseline = baseline

    def observe(self, novel: bool, sq_dist: float) -> None:
        self._novel.append(bool(novel))
        self._sq.append(float(sq_dist))

    def check(self) -> Optional[str]:
        """A human-readable reason to refit, or None."""
        if len(self._novel) < self.config.min_samples:
            return None
        rate = sum(self._novel) / len(self._novel)
        if rate >= self.config.novel_rate:
            return (f"novel-rate {rate:.2f} >= "
                    f"{self.config.novel_rate:.2f} over {len(self._novel)} intervals")
        if self.baseline is not None and self.baseline > 0:
            recent = sum(self._sq) / len(self._sq)
            if recent >= self.config.inertia_factor * self.baseline:
                return (f"inertia {recent:.4g} >= "
                        f"{self.config.inertia_factor:g}x baseline {self.baseline:.4g}")
        return None

    # -- checkpoint support -------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "novel": [bool(x) for x in self._novel],
            "sq": [float(x) for x in self._sq],
            "baseline": self.baseline,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._novel.clear()
        self._novel.extend(bool(x) for x in state.get("novel", []))
        self._sq.clear()
        self._sq.extend(float(x) for x in state.get("sq", []))
        baseline = state.get("baseline")
        self.baseline = None if baseline is None else float(baseline)


@dataclass(frozen=True)
class RefitEvent:
    """One live model refit (bootstrap, drift-triggered, or forced)."""

    #: Interval index at which the refit fired.
    interval_index: int
    #: The model version the refit produced (monotonically increasing).
    version: int
    old_k: int
    new_k: int
    reason: str
    #: Stable phase id of each new centroid row, in row order.
    label_map: Tuple[int, ...]

    def to_obj(self) -> Dict[str, Any]:
        return {
            "interval_index": self.interval_index,
            "version": self.version,
            "old_k": self.old_k,
            "new_k": self.new_k,
            "reason": self.reason,
            "label_map": list(self.label_map),
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "RefitEvent":
        return cls(
            interval_index=int(obj.get("interval_index", 0)),
            version=int(obj.get("version", 0)),
            old_k=int(obj.get("old_k", 0)),
            new_k=int(obj.get("new_k", 0)),
            reason=str(obj.get("reason", "")),
            label_map=tuple(int(x) for x in obj.get("label_map", [])),
        )


def bounded_resweep(
    features: np.ndarray,
    current_k: int,
    kmax: int = DEFAULT_KMAX,
    seed: Any = 0,
    n_init: int = 4,
) -> KMeansResult:
    """Refit around the current k only: candidates are k-1, k, k+1.

    The full k = 1..kmax sweep is a discovery tool; once a model exists,
    drift rarely changes the phase count by more than one, so the
    bounded sweep keeps refits O(3 fits) instead of O(kmax fits).
    Candidates are scored by mean silhouette (the criterion that needs
    no reference curve); if every multi-cluster candidate scores <= 0
    the data is one blob and k = 1 wins when it is a candidate.
    """
    n = features.shape[0]
    candidates = sorted({k for k in (current_k - 1, current_k, current_k + 1)
                         if 1 <= k <= min(kmax, n)})
    if not candidates:
        candidates = [min(max(1, current_k), n)]
    seeds = spawn_seedseqs(seed, max(candidates))
    fits = {k: kmeans(features, k, seed=seeds[k - 1], n_init=n_init)
            for k in candidates}
    scorable = [k for k in candidates if 2 <= k <= n - 1]
    if not scorable:
        return fits[candidates[0]]
    scores = _silhouette_means(features, [fits[k].labels for k in scorable])
    best = scorable[int(np.argmax(scores))]
    if max(scores) <= 0.0 and 1 in fits:
        best = 1
    return fits[best]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Online-refit policy for a live tracker (``incprofd`` per-stream).

    ``cooldown_s`` is the wall-clock floor between refits (the server's
    ``--refit-interval``); ``drift.novel_rate`` is the drift threshold
    (``--refit-drift-threshold``).  Refits train on the last ``window``
    observed interval profiles.
    """

    window: int = 128
    min_refit_window: int = 16
    drift: DriftConfig = field(default_factory=DriftConfig)
    cooldown_s: float = 30.0
    cooldown_intervals: int = 16
    kmax: int = DEFAULT_KMAX
    n_init: int = 4
    quantile: float = 0.95
    slack: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < self.min_refit_window or self.min_refit_window < 2:
            raise ValidationError(
                "need window >= min_refit_window >= 2 profiles for refits")
        if self.cooldown_s < 0 or self.cooldown_intervals < 0:
            raise ValidationError("refit cooldowns must be non-negative")
        if self.kmax < 1 or self.n_init < 1:
            raise ValidationError("kmax and n_init must be positive")
        if not 0 < self.quantile <= 1 or self.slack <= 0:
            raise ValidationError("quantile in (0,1], slack > 0 required")


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class _GrowableMatrix:
    """A 2-D buffer with amortized O(1) row appends and column growth.

    Rows are interval deltas, columns the (growing) vocabulary; the
    backing array doubles in either dimension when full, so feeding n
    snapshots costs O(total entries), never O(n^2).
    """

    def __init__(self, dtype=np.int64, row_capacity: int = 64,
                 col_capacity: int = 32) -> None:
        self._buf = np.zeros((row_capacity, col_capacity), dtype=dtype)
        self.rows = 0
        self.cols = 0

    def ensure_cols(self, cols: int) -> None:
        if cols > self._buf.shape[1]:
            new_cols = max(cols, 2 * self._buf.shape[1])
            buf = np.zeros((self._buf.shape[0], new_cols), dtype=self._buf.dtype)
            buf[:self.rows, :self.cols] = self._buf[:self.rows, :self.cols]
            self._buf = buf
        self.cols = max(self.cols, cols)

    def append_row(self, items: Sequence[Tuple[int, int]]) -> None:
        if self.rows == self._buf.shape[0]:
            buf = np.zeros((2 * self._buf.shape[0], self._buf.shape[1]),
                           dtype=self._buf.dtype)
            buf[:self.rows] = self._buf[:self.rows]
            self._buf = buf
        row = self._buf[self.rows]
        for col, value in items:
            row[col] = value
        self.rows += 1

    def row(self, i: int) -> np.ndarray:
        return self._buf[i, :self.cols]

    def view(self) -> np.ndarray:
        return self._buf[:self.rows, :self.cols]


@dataclass(frozen=True)
class IncrementalUpdate:
    """What one :meth:`IncrementalAnalyzer.observe` call produced."""

    index: int
    timestamp: float
    #: Live phase assignment: a stable phase id, :data:`NOVEL`, or None
    #: while the engine is still warming up (no model yet).
    phase_id: Optional[int]
    distance: Optional[float]
    novel: bool
    model_version: int
    refit: Optional[RefitEvent] = None


class IncrementalAnalyzer:
    """One-snapshot-at-a-time analysis with a live, refittable model.

    :meth:`observe` ingests a cumulative snapshot: the interval delta is
    computed against the previous snapshot only (O(functions), not O(n)),
    appended to growing tick/arc matrices, and — with ``track=True`` —
    classified against the live model, whose centroids are refined by
    mini-batch k-means updates and re-swept (k-1..k+1) when the drift
    detector fires.  :meth:`finalize` assembles the accumulated deltas
    through the same helper as the batch path and runs the full pipeline,
    so it returns exactly what ``analyze_snapshots`` on the same series
    would.

    Not thread-safe: one engine serves one snapshot stream (the service
    wraps per-stream trackers in locks instead).
    """

    def __init__(
        self,
        config: AnalysisConfig = AnalysisConfig(),
        *,
        track: bool = True,
        warmup: int = 12,
        drift: Optional[DriftConfig] = None,
        refit_cooldown: int = 16,
        quantile: float = 0.95,
        slack: float = 1.5,
    ) -> None:
        if warmup < 2:
            raise ValidationError("warmup needs at least two intervals")
        if refit_cooldown < 1:
            raise ValidationError("refit cooldown must be positive")
        self.config = config
        self.track = track
        self.warmup = warmup
        self.quantile = quantile
        self.slack = slack
        self.refit_cooldown = refit_cooldown
        self._detector = DriftDetector(drift or DriftConfig())
        # -- accumulated interval data --------------------------------
        self._funcs: List[str] = []
        self._func_col: Dict[str, int] = {}
        self._arcs: List[Tuple[str, str]] = []
        self._arc_col: Dict[Tuple[str, str], int] = {}
        self._ticks = _GrowableMatrix()
        self._arcmat = _GrowableMatrix()
        self._timestamps: List[float] = []
        self._periods: List[float] = []
        self._metas: List[Tuple[float, float, int]] = []
        self._prev_hist: Dict[str, int] = {}
        self._prev_arcs: Dict[Tuple[str, str], int] = {}
        # -- live model ------------------------------------------------
        self.model_version = 0
        self._centroids: Optional[np.ndarray] = None
        self._gates: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None  # row -> stable phase id
        self._counts: Optional[np.ndarray] = None
        self._next_label = 0
        self._last_fit_at = -1
        self.updates: List[IncrementalUpdate] = []
        self.refits: List[RefitEvent] = []

    # ------------------------------------------------------------------
    @property
    def n_intervals(self) -> int:
        return self._ticks.rows

    @property
    def n_functions(self) -> int:
        return len(self._funcs)

    @property
    def current_k(self) -> int:
        return 0 if self._centroids is None else int(self._centroids.shape[0])

    def phase_sequence(self) -> List[Optional[int]]:
        """Live phase id per observed interval (None during warmup)."""
        return [u.phase_id for u in self.updates]

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _add_func(self, func: str) -> int:
        col = len(self._funcs)
        self._funcs.append(func)
        self._func_col[func] = col
        self._ticks.ensure_cols(col + 1)
        if self._centroids is not None and self._centroids.shape[1] < col + 1:
            # The live model predates this function: a zero coordinate
            # (the function never ran during training) keeps distances
            # meaningful as the vocabulary grows.
            pad = col + 1 - self._centroids.shape[1]
            self._centroids = np.pad(self._centroids, ((0, 0), (0, pad)))
        return col

    def _add_arc(self, arc: Tuple[str, str]) -> int:
        col = len(self._arcs)
        self._arcs.append(arc)
        self._arc_col[arc] = col
        self._arcmat.ensure_cols(col + 1)
        return col

    def observe(self, snapshot: GmonData) -> IncrementalUpdate:
        """Ingest one cumulative snapshot; returns the live assignment."""
        timestamp = snapshot.timestamp
        period = snapshot.sample_period
        if self._timestamps:
            if timestamp < self._timestamps[-1]:
                raise ProfileDataError("snapshots are not in time order")
            if abs(period - self._periods[-1]) > 1e-12:
                raise ValidationError(
                    "cannot subtract snapshots with different sample periods")

        tick_items: List[Tuple[int, int]] = []
        prev_hist = self._prev_hist
        for func, ticks in snapshot.hist.items():
            col = self._func_col.get(func)
            if col is None:
                col = self._add_func(func)
            delta = ticks - prev_hist.get(func, 0)
            if delta > 0:  # clamped at zero, exactly GmonData.subtract
                tick_items.append((col, delta))
        arc_items: List[Tuple[int, int]] = []
        prev_arcs = self._prev_arcs
        for arc, count in snapshot.arcs.items():
            col = self._arc_col.get(arc)
            if col is None:
                col = self._add_arc(arc)
            delta = count - prev_arcs.get(arc, 0)
            if delta > 0:
                arc_items.append((col, delta))

        self._ticks.append_row(tick_items)
        self._arcmat.append_row(arc_items)
        self._prev_hist = dict(snapshot.hist)
        self._prev_arcs = dict(snapshot.arcs)
        self._timestamps.append(timestamp)
        self._periods.append(period)
        self._metas.append((period, timestamp, snapshot.rank))

        index = self._ticks.rows - 1
        if self.track:
            update = self._track_row(index, timestamp, period)
        else:
            update = IncrementalUpdate(
                index=index, timestamp=timestamp, phase_id=None,
                distance=None, novel=False, model_version=self.model_version)
        self.updates.append(update)
        return update

    def observe_many(self, snapshots: Sequence[GmonData]) -> List[IncrementalUpdate]:
        return [self.observe(snap) for snap in snapshots]

    # ------------------------------------------------------------------
    # live model maintenance
    # ------------------------------------------------------------------
    def _all_features(self) -> np.ndarray:
        """Self-time feature matrix over everything observed so far."""
        return self._ticks.view() * np.asarray(self._periods)[:, None]

    def _install_fit(self, index: int, fit: KMeansResult, reason: str,
                     features: np.ndarray) -> RefitEvent:
        old_k = self.current_k
        if self._centroids is None:
            labels = np.arange(fit.k)
            self._next_label = fit.k
        else:
            labels, self._next_label = match_phase_labels(
                self._centroids, self._labels, fit.centroids, self._next_label,
                max_distance=self._gates * MATCH_RADIUS_FACTOR)
        self._centroids = np.asarray(fit.centroids, dtype=float).copy()
        self._gates = calibrate_gates(features, fit.labels, fit.centroids,
                                      self.quantile, self.slack)
        self._labels = labels
        self._counts = np.bincount(fit.labels, minlength=fit.k).astype(float)
        self.model_version += 1
        self._last_fit_at = index
        baseline = fit.inertia / max(1, features.shape[0])
        self._detector.reset(baseline)
        event = RefitEvent(
            interval_index=index, version=self.model_version,
            old_k=old_k, new_k=fit.k, reason=reason,
            label_map=tuple(int(x) for x in labels))
        self.refits.append(event)
        return event

    def _bootstrap(self, index: int, features: np.ndarray) -> RefitEvent:
        """First fit: the full k sweep, clusters ordered like the batch
        pipeline (size descending, first appearance) so early live ids
        line up with what a batch analysis of the prefix would report."""
        cfg = self.config
        selection = choose_k(
            features, kmax=min(cfg.kmax, features.shape[0]),
            method=cfg.kselect_method, seed=cfg.seed, n_init=cfg.n_init,
            threshold=cfg.kselect_threshold)
        best = selection.best
        model = phases_from_labels(best.labels, best.centroids, selection)
        centroids = np.vstack([p.centroid for p in model.phases])
        ordered = KMeansResult(
            k=model.n_phases, centroids=centroids, labels=model.labels,
            inertia=best.inertia, n_iter=best.n_iter)
        return self._install_fit(index, ordered, "bootstrap", features)

    def _track_row(self, index: int, timestamp: float,
                   period: float) -> IncrementalUpdate:
        refit: Optional[RefitEvent] = None
        if self._centroids is None:
            if index + 1 < max(self.warmup, 2):
                return IncrementalUpdate(
                    index=index, timestamp=timestamp, phase_id=None,
                    distance=None, novel=False, model_version=0)
            refit = self._bootstrap(index, self._all_features())

        x = self._ticks.row(index) * period
        dists = np.linalg.norm(self._centroids - x[None, :], axis=1)
        nearest = int(dists.argmin())
        distance = float(dists[nearest])
        novel = distance > self._gates[nearest]
        phase_id = NOVEL if novel else int(self._labels[nearest])
        if not novel:
            # Mini-batch k-means update: the centroid tracks the running
            # mean of everything assigned to it (learning rate 1/count).
            self._counts[nearest] += 1.0
            self._centroids[nearest] += (
                (x - self._centroids[nearest]) / self._counts[nearest])
        self._detector.observe(novel, distance * distance)

        if refit is None and index - self._last_fit_at >= self.refit_cooldown:
            reason = self._detector.check()
            if reason is not None:
                features = self._all_features()
                fit = bounded_resweep(
                    features, self.current_k, kmax=self.config.kmax,
                    seed=np.random.SeedSequence(
                        [self.config.seed & 0xFFFFFFFF, self.model_version]),
                    n_init=self.config.n_init)
                refit = self._install_fit(index, fit, reason, features)

        return IncrementalUpdate(
            index=index, timestamp=timestamp, phase_id=phase_id,
            distance=distance, novel=novel,
            model_version=self.model_version, refit=refit)

    # ------------------------------------------------------------------
    # finalize (the batch-equivalent result)
    # ------------------------------------------------------------------
    def finalize(self, workers: Optional[int] = None) -> AnalysisResult:
        """Run the full pipeline on everything observed so far.

        Returns exactly what ``analyze_snapshots`` over the same series
        returns: the accumulated delta rows go through the shared
        assembly helper (same vocabulary derivation, same matrices) and
        the same ``analyze_intervals`` stages.  The engine remains
        usable afterwards — more snapshots can be observed and a later
        finalize covers them too.
        """
        n = self._ticks.rows
        if n < 2:
            raise ProfileDataError("need at least two snapshots to form an interval")
        interval = self._timestamps[0] if self._timestamps[0] > 0 else (
            self._timestamps[1] - self._timestamps[0])
        if interval <= 0:
            raise ProfileDataError("could not infer a positive interval length")

        tick_deltas = self._ticks.view().copy()
        arc_deltas = self._arcmat.view().copy()
        timestamps = list(self._timestamps)
        periods = np.asarray(self._periods)
        metas = list(self._metas)
        cfg = self.config
        if cfg.drop_short_final and n >= 2:
            final_len = timestamps[-1] - timestamps[-2]
            if final_len < cfg.min_final_fraction * interval:
                tick_deltas = tick_deltas[:-1]
                arc_deltas = arc_deltas[:-1]
                timestamps = timestamps[:-1]
                periods = periods[:-1]
                metas = metas[:-1]

        data = assemble_interval_data(
            tick_deltas, arc_deltas, self._funcs, self._arcs,
            timestamps, periods, metas, interval)
        return analyze_intervals(data, cfg, workers=workers)
