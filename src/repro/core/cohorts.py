"""Label-stable cohort identity for cross-stream analytics.

Fleet analytics (``repro.fleet.analytics``) clusters *streams* by their
phase-signature vectors the same way phase detection clusters intervals.
Re-clustering happens on every ``fleet_analytics`` request, and plain
k-means is free to permute cluster indices between runs — so "cohort 0"
would mean a different group of streams every scrape.  This module keeps
cohort ids stable over time by reusing the greedy nearest-centroid
matching that already keeps *phase* ids stable across live refits
(:func:`repro.core.incremental.match_phase_labels`).

:func:`signature_distance` is the one distance the analytics layer uses
everywhere (clustering, anomaly radii, cohort matching), so thresholds
compose: an anomaly threshold expressed in this distance means the same
thing in the anomaly flagger and in the matcher's stickiness cap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.incremental import match_phase_labels
from repro.util.errors import ValidationError

__all__ = ["CohortMatcher", "signature_distance"]


def signature_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two phase-signature vectors."""
    va = np.asarray(a, dtype=float)
    vb = np.asarray(b, dtype=float)
    if va.shape != vb.shape:
        raise ValidationError(
            f"signature vectors disagree: {va.shape} vs {vb.shape}")
    return float(np.linalg.norm(va - vb))


class CohortMatcher:
    """Stable cohort ids across successive signature re-clusterings.

    Holds the previous clustering's centroids and their stable ids;
    :meth:`match` pairs a new centroid set against them greedily by
    distance (the phase-refit mechanism, applied one level up), hands
    matched clusters their old ids, and mints fresh ids for genuinely
    new cohorts — retired ids are never reused, so "cohort 3 went
    anomalous at 14:00" still names the same population at 15:00 even
    if the fleet re-clustered twice in between.

    ``max_distance`` (optional) caps how far a new centroid may drift
    from an old one and still inherit its id; beyond the cap the cohort
    is treated as new.  The matcher itself is cheap, JSON-serializable
    (:meth:`to_obj`/:meth:`from_obj` so a router can checkpoint it), and
    not thread-safe — callers serialize access (the router handles
    control requests one at a time per connection and wraps analytics in
    its own lock).
    """

    def __init__(self, max_distance: Optional[float] = None) -> None:
        if max_distance is not None and max_distance <= 0:
            raise ValidationError("max_distance must be positive")
        self.max_distance = max_distance
        self._centroids: Optional[np.ndarray] = None
        self._labels: List[int] = []
        self._next_label = 0

    @property
    def generation_labels(self) -> List[int]:
        """Stable ids of the last matched clustering (cluster order)."""
        return list(self._labels)

    def reset(self) -> None:
        self._centroids = None
        self._labels = []
        self._next_label = 0

    def match(self, centroids: np.ndarray) -> List[int]:
        """Stable cohort ids for a new clustering's centroid rows."""
        centroids = np.asarray(centroids, dtype=float)
        if centroids.ndim != 2:
            raise ValidationError("centroids must be a 2-D array")
        if (self._centroids is None
                or self._centroids.shape[1] != centroids.shape[1]):
            # First clustering (or the embedding dimensionality changed,
            # e.g. the signature schema evolved): row order is the id.
            labels = list(range(self._next_label,
                                self._next_label + centroids.shape[0]))
        else:
            matched, self._next_label = match_phase_labels(
                self._centroids, self._labels, centroids, self._next_label,
                max_distance=self.max_distance)
            labels = [int(x) for x in matched]
        self._centroids = centroids.copy()
        self._labels = labels
        self._next_label = max(self._next_label,
                               (max(labels) + 1) if labels else 0)
        return list(labels)

    def to_obj(self) -> Dict[str, Any]:
        return {
            "centroids": (None if self._centroids is None
                          else [[float(x) for x in row]
                                for row in self._centroids]),
            "labels": list(self._labels),
            "next_label": self._next_label,
            "max_distance": self.max_distance,
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "CohortMatcher":
        matcher = cls(max_distance=obj.get("max_distance"))
        centroids = obj.get("centroids")
        if centroids is not None:
            matcher._centroids = np.asarray(centroids, dtype=float)
        matcher._labels = [int(x) for x in obj.get("labels", [])]
        matcher._next_label = int(obj.get("next_label", 0))
        return matcher
