"""Online phase tracking for deployed runs.

The paper's end goal is *in-production* phase visibility: discovery runs
offline once, instrumentation ships, and deployment monitoring tracks
the phases thereafter.  This module closes the loop on the profile side:
a :class:`OnlinePhaseTracker` is trained on an offline analysis and then
classifies *new* interval profiles as they stream in — nearest phase
centroid, with a distance gate that flags intervals unlike anything seen
during training (novel behaviour: new inputs, degraded nodes, bugs).

The gate is calibrated from the training data itself: an interval is
*novel* when its distance to the nearest centroid exceeds that phase's
``quantile`` training distance by ``slack``.
"""

from __future__ import annotations

import base64
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import AnalysisResult
from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.util.errors import ValidationError

#: Phase label reported for intervals unlike any training phase.
NOVEL = -1


@dataclass(frozen=True)
class TrackedInterval:
    """One classified deployment interval."""

    index: int
    phase_id: int  # NOVEL (-1) when outside every phase's gate
    distance: float
    nearest_phase: int

    @property
    def is_novel(self) -> bool:
        return self.phase_id == NOVEL


class OnlinePhaseTracker:
    """Classify streaming interval profiles against trained phases.

    Instances are thread-safe: classification, snapshot observation, and
    every history accessor take an internal lock, so one tracker can be
    driven from a worker pool (the ``incprofd`` service classifies each
    stream on whichever worker picks it up).

    ``zero_start`` controls how the first *cumulative* snapshot fed to
    :meth:`observe_snapshot` is treated: ``False`` (the historical
    behaviour) primes the differencer and classifies from the second
    snapshot on; ``True`` assumes the stream began at a zero profile, so
    the first snapshot *is* the first interval — matching the offline
    pipeline, which also counts interval 0 from the process start.
    """

    def __init__(
        self,
        *,
        functions: Sequence[str],
        centroids: np.ndarray,
        gates: np.ndarray,
        interval: float = 1.0,
        zero_start: bool = False,
    ) -> None:
        if centroids.ndim != 2 or centroids.shape[0] != gates.shape[0]:
            raise ValidationError("centroids and gates disagree")
        if centroids.shape[1] != len(functions):
            raise ValidationError("centroid width must match function count")
        self.functions = list(functions)
        self._index = {name: j for j, name in enumerate(self.functions)}
        self.centroids = centroids.astype(float)
        self.gates = gates.astype(float)
        self.interval = interval
        self.zero_start = zero_start
        self.history: List[TrackedInterval] = []
        self._previous: Optional[GmonData] = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    @classmethod
    def from_analysis(
        cls,
        analysis: AnalysisResult,
        quantile: float = 0.95,
        slack: float = 1.5,
    ) -> "OnlinePhaseTracker":
        """Train a tracker from an offline phase-detection result.

        ``quantile``/``slack``: a phase's gate is ``slack`` times the
        ``quantile`` of its training members' centroid distances (plus a
        small absolute floor so zero-variance phases keep a gate).
        """
        if not 0 < quantile <= 1 or slack <= 0:
            raise ValidationError("quantile in (0,1], slack > 0 required")
        data = analysis.interval_data
        features = data.self_time
        phases = analysis.phase_model.phases
        centroids = np.vstack([
            features[list(phase.interval_indices)].mean(axis=0)
            for phase in phases
        ])
        gates = np.empty(len(phases))
        for phase_id, phase in enumerate(phases):
            members = features[list(phase.interval_indices)]
            dists = np.linalg.norm(members - centroids[phase_id], axis=1)
            gates[phase_id] = max(float(np.quantile(dists, quantile)) * slack, 0.05)
        return cls(
            functions=data.functions,
            centroids=centroids,
            gates=gates,
            interval=data.interval,
        )

    # ------------------------------------------------------------------
    # streaming classification
    # ------------------------------------------------------------------
    def _vectorize_batch(self, profiles: Sequence[Dict[str, float]]) -> np.ndarray:
        """``(n_profiles, n_functions)`` matrix via the name->column index."""
        mat = np.zeros((len(profiles), len(self.functions)))
        index = self._index
        for i, profile in enumerate(profiles):
            row = mat[i]
            for func, seconds in profile.items():
                j = index.get(func)
                if j is not None:
                    row[j] = seconds
        return mat

    def classify(self, profile: Dict[str, float]) -> TrackedInterval:
        """Classify one interval profile (function -> self seconds)."""
        return self.classify_batch([profile])[0]

    def classify_batch(self, profiles: Sequence[Dict[str, float]]) -> List[TrackedInterval]:
        """Classify several interval profiles in order, atomically.

        All distances come from one ``(n_profiles, k, d)`` vectorized
        computation — the service hot path calls this once per drained
        batch instead of once per snapshot.  The whole batch is appended
        to the history as one unit — a concurrent classifier cannot
        interleave inside it.
        """
        if not profiles:
            return []
        mat = self._vectorize_batch(profiles)
        diffs = mat[:, None, :] - self.centroids[None, :, :]
        dists = np.linalg.norm(diffs, axis=2)  # (n_profiles, k)
        nearest = dists.argmin(axis=1)
        distance = dists[np.arange(len(profiles)), nearest]
        novel = distance > self.gates[nearest]
        with self._lock:
            start = len(self.history)
            tracked = [
                TrackedInterval(
                    index=start + i,
                    phase_id=NOVEL if novel[i] else int(nearest[i]),
                    distance=float(distance[i]),
                    nearest_phase=int(nearest[i]),
                )
                for i in range(len(profiles))
            ]
            self.history.extend(tracked)
        return tracked

    def delta_profile(self, snapshot: GmonData) -> Optional[Dict[str, float]]:
        """Difference a *cumulative* snapshot against the stream state.

        Returns the interval profile (function -> self seconds) the
        snapshot closes, or None when it merely primed the differencer
        (first snapshot without ``zero_start``).  Splitting this from
        classification lets the service difference a drained batch
        per-snapshot but classify it in one vectorized call.
        """
        with self._lock:
            if self._previous is None and not self.zero_start:
                self._previous = snapshot
                return None
            delta = (snapshot if self._previous is None
                     else snapshot.subtract(self._previous))
            self._previous = snapshot
        return {func: ticks * delta.sample_period
                for func, ticks in delta.hist.items()}

    def observe_snapshot(self, snapshot: GmonData) -> Optional[TrackedInterval]:
        """Feed a *cumulative* gmon snapshot (deployment dump stream).

        Without ``zero_start``, the first snapshot primes the differencer
        and returns None; each later one is differenced against its
        predecessor and classified.  With ``zero_start``, the first
        snapshot is classified as-is (the stream's zero baseline).
        """
        with self._lock:
            profile = self.delta_profile(snapshot)
            if profile is None:
                return None
            return self.classify(profile)

    # ------------------------------------------------------------------
    # per-stream forking
    # ------------------------------------------------------------------
    def spawn(self, zero_start: bool = True) -> "OnlinePhaseTracker":
        """A fresh tracker sharing this one's trained model.

        The trained arrays are copied (cheap: ``k × n_functions``), the
        history starts empty — one template tracker trained offline can
        be forked once per deployment stream.
        """
        return OnlinePhaseTracker(
            functions=self.functions,
            centroids=self.centroids,
            gates=self.gates,
            interval=self.interval,
            zero_start=zero_start,
        )

    # ------------------------------------------------------------------
    # state (for model artifacts and daemon checkpoints)
    # ------------------------------------------------------------------
    def trained_state(self) -> Dict[str, Any]:
        """The trained model as a JSON-ready dict (no runtime state).

        Floats survive exactly: Python's ``float`` repr (which ``json``
        uses) is shortest-round-trip, so a saved model classifies
        bit-identically after loading.
        """
        return {
            "functions": list(self.functions),
            "centroids": [[float(x) for x in row] for row in self.centroids],
            "gates": [float(g) for g in self.gates],
            "interval": float(self.interval),
            "zero_start": bool(self.zero_start),
        }

    @classmethod
    def from_trained_state(cls, state: Dict[str, Any]) -> "OnlinePhaseTracker":
        """Inverse of :meth:`trained_state`."""
        try:
            return cls(
                functions=[str(f) for f in state["functions"]],
                centroids=np.asarray(state["centroids"], dtype=float).reshape(
                    len(state["gates"]), len(state["functions"])),
                gates=np.asarray(state["gates"], dtype=float),
                interval=float(state["interval"]),
                zero_start=bool(state.get("zero_start", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad trained-tracker state: {exc!r}") from exc

    def runtime_state(self) -> Dict[str, Any]:
        """Mutable stream state (history + differencer), JSON-ready.

        Taken atomically under the tracker lock; pairs with
        :meth:`restore_runtime_state` so a daemon checkpoint can resume a
        stream exactly where classification left off.
        """
        with self._lock:
            history = [[t.index, t.phase_id, float(t.distance), t.nearest_phase]
                       for t in self.history]
            previous = self._previous
        blob = None
        if previous is not None:
            blob = base64.b64encode(dumps_gmon(previous)).decode("ascii")
        return {"history": history, "previous": blob}

    def restore_runtime_state(self, state: Dict[str, Any]) -> None:
        """Install stream state captured by :meth:`runtime_state`."""
        try:
            history = [
                TrackedInterval(index=int(i), phase_id=int(p),
                                distance=float(d), nearest_phase=int(n))
                for i, p, d, n in state.get("history", [])
            ]
            blob = state.get("previous")
            previous = None
            if blob is not None:
                previous = loads_gmon(base64.b64decode(blob.encode("ascii")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad tracker runtime state: {exc!r}") from exc
        with self._lock:
            self.history = history
            self._previous = previous

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def phase_sequence(self) -> List[int]:
        with self._lock:
            return [t.phase_id for t in self.history]

    def novel_fraction(self) -> float:
        with self._lock:
            if not self.history:
                return 0.0
            return sum(t.is_novel for t in self.history) / len(self.history)

    def phase_counts(self) -> Dict[int, int]:
        """Observed intervals per phase id (NOVEL included as -1)."""
        counts: Dict[int, int] = {}
        for phase_id in self.phase_sequence():
            counts[phase_id] = counts.get(phase_id, 0) + 1
        return counts

    def transitions(self) -> List[Tuple[int, int, int]]:
        """(interval, from_phase, to_phase) for every phase change."""
        out: List[Tuple[int, int, int]] = []
        seq = self.phase_sequence()
        for i in range(1, len(seq)):
            if seq[i] != seq[i - 1]:
                out.append((i, seq[i - 1], seq[i]))
        return out
