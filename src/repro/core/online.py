"""Online phase tracking for deployed runs.

The paper's end goal is *in-production* phase visibility: discovery runs
offline once, instrumentation ships, and deployment monitoring tracks
the phases thereafter.  This module closes the loop on the profile side:
a :class:`OnlinePhaseTracker` is trained on an offline analysis and then
classifies *new* interval profiles as they stream in — nearest phase
centroid, with a distance gate that flags intervals unlike anything seen
during training (novel behaviour: new inputs, degraded nodes, bugs).

The gate is calibrated from the training data itself: an interval is
*novel* when its distance to the nearest centroid exceeds that phase's
``quantile`` training distance by ``slack``.

Trackers are no longer frozen: constructed with an
:class:`~repro.core.incremental.AdaptiveConfig`, a tracker buffers the
interval profiles it classifies, refines centroids with mini-batch
k-means updates, and — when the shared drift detector fires — refits
itself with a bounded re-sweep (k-1..k+1) and **hot-swaps** the new
model atomically under its lock.  Every refit bumps ``model_version``
(carried on each :class:`TrackedInterval`) and remaps cluster rows onto
*stable* phase ids via greedy centroid matching, so phase 2 before the
swap and phase 2 after it mean the same behaviour.
"""

from __future__ import annotations

import base64
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.incremental import (
    MATCH_RADIUS_FACTOR,
    AdaptiveConfig,
    DriftDetector,
    RefitEvent,
    bounded_resweep,
    calibrate_gates,
    match_phase_labels,
)
from repro.core.pipeline import AnalysisResult
from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.util.errors import ValidationError

#: An interval profile: a function -> self-seconds mapping, or the same
#: already projected onto the model universe as an ``(n_functions,)``
#: vector (see :meth:`OnlinePhaseTracker.delta_vector`).
Profile = Union[Dict[str, float], np.ndarray]

#: Phase label reported for intervals unlike any training phase.
NOVEL = -1


@dataclass(frozen=True)
class TrackedInterval:
    """One classified deployment interval."""

    index: int
    phase_id: int  # NOVEL (-1) when outside every phase's gate
    distance: float
    nearest_phase: int
    #: Version of the model that produced this classification (0 for the
    #: original offline fit; bumped by every live refit / installed model).
    model_version: int = 0

    @property
    def is_novel(self) -> bool:
        return self.phase_id == NOVEL


class OnlinePhaseTracker:
    """Classify streaming interval profiles against trained phases.

    Instances are thread-safe: classification, snapshot observation, and
    every history accessor take an internal lock, so one tracker can be
    driven from a worker pool (the ``incprofd`` service classifies each
    stream on whichever worker picks it up).  Model hot-swaps (live
    refits, :meth:`install_model`) happen under the same lock, so a
    classification sees either the old model or the new one, never a
    half-installed mix.

    ``zero_start`` controls how the first *cumulative* snapshot fed to
    :meth:`observe_snapshot` is treated: ``False`` (the historical
    behaviour) primes the differencer and classifies from the second
    snapshot on; ``True`` assumes the stream began at a zero profile, so
    the first snapshot *is* the first interval — matching the offline
    pipeline, which also counts interval 0 from the process start.

    ``labels`` maps centroid rows to *stable* phase ids (defaults to
    row order).  With ``adaptive`` set, the tracker refits itself when
    drift fires; reported phase ids stay comparable across refits.
    """

    def __init__(
        self,
        *,
        functions: Sequence[str],
        centroids: np.ndarray,
        gates: np.ndarray,
        interval: float = 1.0,
        zero_start: bool = False,
        labels: Optional[Sequence[int]] = None,
        counts: Optional[Sequence[float]] = None,
        version: int = 0,
        adaptive: Optional[AdaptiveConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if centroids.ndim != 2 or centroids.shape[0] != gates.shape[0]:
            raise ValidationError("centroids and gates disagree")
        if centroids.shape[1] != len(functions):
            raise ValidationError("centroid width must match function count")
        if labels is not None and len(labels) != centroids.shape[0]:
            raise ValidationError("labels must cover every centroid row")
        self.functions = list(functions)
        self._index = {name: j for j, name in enumerate(self.functions)}
        self.centroids = centroids.astype(float)
        self.gates = gates.astype(float)
        self.interval = interval
        self.zero_start = zero_start
        self.history: List[TrackedInterval] = []
        self._previous: Optional[GmonData] = None
        #: Universe-projected ticks of ``_previous`` — a pure cache for
        #: :meth:`delta_vector`.  ``_previous`` stays the checkpointed
        #: source of truth; any path that replaces it without refreshing
        #: the projection must reset this to ``None``.
        self._previous_vec: Optional[np.ndarray] = None
        self._lock = threading.RLock()
        # -- versioned model identity ----------------------------------
        k = self.centroids.shape[0]
        self.phase_labels = (np.arange(k) if labels is None
                             else np.asarray([int(x) for x in labels]))
        self.model_version = int(version)
        self._counts = (np.ones(k) if counts is None
                        else np.asarray([float(c) for c in counts]))
        if self._counts.shape[0] != k:
            raise ValidationError("counts must cover every centroid row")
        self._next_label = int(self.phase_labels.max()) + 1 if k else 0
        # -- adaptive refit state --------------------------------------
        self._adaptive = adaptive
        self._clock = clock
        self._buffer: Deque[np.ndarray] = deque(
            maxlen=adaptive.window if adaptive else 1)
        self._drift = DriftDetector(adaptive.drift) if adaptive else None
        self._last_refit_index = 0
        self._last_refit_time: Optional[float] = None
        self.refit_events: List[RefitEvent] = []
        self._refit_listeners: List[
            Callable[["OnlinePhaseTracker", RefitEvent], None]] = []

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    @classmethod
    def from_analysis(
        cls,
        analysis: AnalysisResult,
        quantile: float = 0.95,
        slack: float = 1.5,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> "OnlinePhaseTracker":
        """Train a tracker from an offline phase-detection result.

        ``quantile``/``slack``: a phase's gate is ``slack`` times the
        ``quantile`` of its training members' centroid distances (plus a
        small absolute floor so zero-variance phases keep a gate).
        """
        if not 0 < quantile <= 1 or slack <= 0:
            raise ValidationError("quantile in (0,1], slack > 0 required")
        data = analysis.interval_data
        features = data.self_time
        phases = analysis.phase_model.phases
        centroids = np.vstack([
            features[list(phase.interval_indices)].mean(axis=0)
            for phase in phases
        ])
        gates = calibrate_gates(
            features, analysis.phase_model.labels, centroids, quantile, slack)
        counts = [len(phase.interval_indices) for phase in phases]
        return cls(
            functions=data.functions,
            centroids=centroids,
            gates=gates,
            interval=data.interval,
            counts=counts,
            adaptive=adaptive,
        )

    # ------------------------------------------------------------------
    # streaming classification
    # ------------------------------------------------------------------
    def _vectorize_batch(self, profiles: Sequence[Profile]) -> np.ndarray:
        """``(n_profiles, n_functions)`` matrix via the name->column index.

        A profile is either a function -> self-seconds dict or an
        already-projected ``(n_functions,)`` vector from
        :meth:`delta_vector`; vector rows copy straight in.
        """
        mat = np.zeros((len(profiles), len(self.functions)))
        index = self._index
        for i, profile in enumerate(profiles):
            if isinstance(profile, np.ndarray):
                mat[i] = profile
                continue
            row = mat[i]
            for func, seconds in profile.items():
                j = index.get(func)
                if j is not None:
                    row[j] = seconds
        return mat

    def classify(self, profile: Profile) -> TrackedInterval:
        """Classify one interval profile (function -> self seconds)."""
        return self.classify_batch([profile])[0]

    def classify_batch(self, profiles: Sequence[Profile]) -> List[TrackedInterval]:
        """Classify several interval profiles in order, atomically.

        All distances come from one ``(n_profiles, k, d)`` vectorized
        computation — the service hot path calls this once per drained
        batch instead of once per snapshot.  The whole batch runs under
        the tracker lock: a concurrent classifier cannot interleave
        inside it, and a model hot-swap cannot land mid-batch — every
        interval in the batch is classified by one model version.
        """
        if not profiles:
            return []
        with self._lock:
            mat = self._vectorize_batch(profiles)
            diffs = mat[:, None, :] - self.centroids[None, :, :]
            dists = np.linalg.norm(diffs, axis=2)  # (n_profiles, k)
            nearest = dists.argmin(axis=1)
            distance = dists[np.arange(len(profiles)), nearest]
            novel = distance > self.gates[nearest]
            start = len(self.history)
            version = self.model_version
            tracked = [
                TrackedInterval(
                    index=start + i,
                    phase_id=(NOVEL if novel[i]
                              else int(self.phase_labels[nearest[i]])),
                    distance=float(distance[i]),
                    nearest_phase=int(self.phase_labels[nearest[i]]),
                    model_version=version,
                )
                for i in range(len(profiles))
            ]
            self.history.extend(tracked)
            if self._adaptive is not None:
                for i in range(len(profiles)):
                    self._buffer.append(mat[i].copy())
                    self._drift.observe(bool(novel[i]),
                                        float(distance[i]) ** 2)
                    if not novel[i]:
                        # Mini-batch k-means: the centroid tracks the
                        # running mean of its members (rate 1/count).
                        j = int(nearest[i])
                        self._counts[j] += 1.0
                        self.centroids[j] += (
                            (mat[i] - self.centroids[j]) / self._counts[j])
                self._maybe_refit_locked()
        return tracked

    def delta_profile(self, snapshot: GmonData) -> Optional[Dict[str, float]]:
        """Difference a *cumulative* snapshot against the stream state.

        Returns the interval profile (function -> self seconds) the
        snapshot closes, or None when it merely primed the differencer
        (first snapshot without ``zero_start``).  Splitting this from
        classification lets the service difference a drained batch
        per-snapshot but classify it in one vectorized call.
        """
        with self._lock:
            if self._previous is None and not self.zero_start:
                self._previous = snapshot
                self._previous_vec = None
                return None
            delta = (snapshot if self._previous is None
                     else snapshot.subtract(self._previous))
            self._previous = snapshot
            self._previous_vec = None
        return {func: ticks * delta.sample_period
                for func, ticks in delta.hist.items()}

    def _hist_ticks_locked(self, snapshot: GmonData) -> np.ndarray:
        """``snapshot.hist`` projected onto the model universe (ticks)."""
        vec = np.zeros(len(self.functions))
        index = self._index
        for func, ticks in snapshot.hist.items():
            j = index.get(func)
            if j is not None:
                vec[j] = ticks
        return vec

    def delta_vector(self, snapshot: GmonData) -> Optional[np.ndarray]:
        """Difference a *cumulative* snapshot straight into feature space.

        Vectorized twin of :meth:`delta_profile`: returns the interval
        the snapshot closes as an ``(n_functions,)`` self-seconds vector
        ready for :meth:`classify_batch`, or None when the snapshot
        merely primed the differencer.  Classification only ever sees
        the model universe, so projecting each snapshot *before* the
        clamped subtract commutes with subtracting first — the result
        matches ``delta_profile`` exactly while skipping the
        intermediate dicts and the (classification-irrelevant) arc
        differencing, which is what the service hot path pays for at
        wire rate.  The projection of the previous snapshot is cached
        between calls; mixing in :meth:`delta_profile` merely drops the
        cache, never the correctness.
        """
        with self._lock:
            prev = self._previous
            if (prev is not None
                    and abs(prev.sample_period - snapshot.sample_period)
                    > 1e-12):
                raise ValidationError(
                    "cannot subtract snapshots with different sample periods")
            cur = self._hist_ticks_locked(snapshot)
            if prev is None and not self.zero_start:
                self._previous = snapshot
                self._previous_vec = cur
                return None
            if prev is None:
                delta = cur
            else:
                prev_vec = self._previous_vec
                if prev_vec is None:  # cache dropped by restore/dict path
                    prev_vec = self._hist_ticks_locked(prev)
                delta = np.maximum(cur - prev_vec, 0.0)
            self._previous = snapshot
            self._previous_vec = cur
            return delta * snapshot.sample_period

    def observe_snapshot(self, snapshot: GmonData) -> Optional[TrackedInterval]:
        """Feed a *cumulative* gmon snapshot (deployment dump stream).

        Without ``zero_start``, the first snapshot primes the differencer
        and returns None; each later one is differenced against its
        predecessor and classified.  With ``zero_start``, the first
        snapshot is classified as-is (the stream's zero baseline).
        """
        with self._lock:
            profile = self.delta_profile(snapshot)
            if profile is None:
                return None
            return self.classify(profile)

    # ------------------------------------------------------------------
    # live refits and hot swaps
    # ------------------------------------------------------------------
    def add_refit_listener(
        self, listener: Callable[["OnlinePhaseTracker", RefitEvent], None],
    ) -> None:
        """Call ``listener(tracker, event)`` after each model swap.

        Listeners run under the tracker lock (the swap and its
        notification are one atomic unit) — keep them quick, and reach
        back into the tracker only from the same thread.
        """
        with self._lock:
            self._refit_listeners.append(listener)

    def force_refit(self, reason: str = "manual") -> Optional[RefitEvent]:
        """Refit now from the buffered window, ignoring drift/cooldowns.

        Returns None when the tracker is not adaptive or the buffer has
        fewer than ``min_refit_window`` profiles.
        """
        with self._lock:
            return self._maybe_refit_locked(reason=reason, force=True)

    def _maybe_refit_locked(self, reason: Optional[str] = None,
                            force: bool = False) -> Optional[RefitEvent]:
        ad = self._adaptive
        if ad is None or len(self._buffer) < ad.min_refit_window:
            return None
        n_seen = len(self.history)
        if not force:
            if n_seen - self._last_refit_index < ad.cooldown_intervals:
                return None
            if (self._last_refit_time is not None
                    and self._clock() - self._last_refit_time < ad.cooldown_s):
                return None
            reason = self._drift.check()
            if reason is None:
                return None
        features = np.vstack(self._buffer)
        fit = bounded_resweep(
            features, self.centroids.shape[0], kmax=ad.kmax,
            seed=np.random.SeedSequence(
                [ad.seed & 0xFFFFFFFF, self.model_version + 1]),
            n_init=ad.n_init)
        new_labels, self._next_label = match_phase_labels(
            self.centroids, self.phase_labels, fit.centroids, self._next_label,
            max_distance=self.gates * MATCH_RADIUS_FACTOR)
        gates = calibrate_gates(features, fit.labels, fit.centroids,
                                ad.quantile, ad.slack)
        event = RefitEvent(
            interval_index=n_seen, version=self.model_version + 1,
            old_k=self.centroids.shape[0], new_k=fit.k,
            reason=reason or "forced",
            label_map=tuple(int(x) for x in new_labels))
        self.centroids = np.asarray(fit.centroids, dtype=float).copy()
        self.gates = gates
        self.phase_labels = new_labels
        self._counts = np.bincount(fit.labels, minlength=fit.k).astype(float)
        self.model_version = event.version
        self._last_refit_index = n_seen
        self._last_refit_time = self._clock()
        self._drift.reset(fit.inertia / max(1, features.shape[0]))
        self.refit_events.append(event)
        for listener in list(self._refit_listeners):
            listener(self, event)
        return event

    def install_model(
        self,
        *,
        centroids: np.ndarray,
        gates: np.ndarray,
        labels: Optional[Sequence[int]] = None,
        counts: Optional[Sequence[float]] = None,
        version: Optional[int] = None,
    ) -> int:
        """Atomically hot-swap an externally trained model.

        ``version`` must exceed the current one (defaults to current+1);
        returns the installed version.  Classifications already appended
        to the history are untouched — only future intervals see the new
        model.
        """
        centroids = np.asarray(centroids, dtype=float)
        gates = np.asarray(gates, dtype=float)
        if centroids.ndim != 2 or centroids.shape[0] != gates.shape[0]:
            raise ValidationError("centroids and gates disagree")
        if centroids.shape[1] != len(self.functions):
            raise ValidationError("centroid width must match function count")
        if labels is not None and len(labels) != centroids.shape[0]:
            raise ValidationError("labels must cover every centroid row")
        with self._lock:
            new_version = (self.model_version + 1 if version is None
                           else int(version))
            if new_version <= self.model_version:
                raise ValidationError(
                    f"model version must increase "
                    f"(have {self.model_version}, got {new_version})")
            k = centroids.shape[0]
            self.centroids = centroids.copy()
            self.gates = gates.copy()
            self.phase_labels = (np.arange(k) if labels is None
                                 else np.asarray([int(x) for x in labels]))
            self._counts = (np.ones(k) if counts is None
                            else np.asarray([float(c) for c in counts]))
            self._next_label = max(
                self._next_label, int(self.phase_labels.max()) + 1 if k else 0)
            self.model_version = new_version
            if self._drift is not None:
                self._drift.reset(None)
            return new_version

    # ------------------------------------------------------------------
    # per-stream forking
    # ------------------------------------------------------------------
    def spawn(self, zero_start: bool = True,
              adaptive: Optional[AdaptiveConfig] = None) -> "OnlinePhaseTracker":
        """A fresh tracker sharing this one's trained model.

        The trained arrays are copied (cheap: ``k × n_functions``), the
        history starts empty — one template tracker trained offline can
        be forked once per deployment stream.  ``adaptive`` makes the
        spawned stream refit itself independently; the fork inherits the
        template's model version and stable labels, so a refit on one
        stream never perturbs another.
        """
        with self._lock:
            return OnlinePhaseTracker(
                functions=self.functions,
                centroids=self.centroids,
                gates=self.gates,
                interval=self.interval,
                zero_start=zero_start,
                labels=self.phase_labels,
                counts=self._counts,
                version=self.model_version,
                adaptive=adaptive if adaptive is not None else self._adaptive,
            )

    # ------------------------------------------------------------------
    # state (for model artifacts and daemon checkpoints)
    # ------------------------------------------------------------------
    def trained_state(self) -> Dict[str, Any]:
        """The trained model as a JSON-ready dict (no runtime state).

        Floats survive exactly: Python's ``float`` repr (which ``json``
        uses) is shortest-round-trip, so a saved model classifies
        bit-identically after loading.
        """
        with self._lock:
            state = {
                "functions": list(self.functions),
                "centroids": [[float(x) for x in row] for row in self.centroids],
                "gates": [float(g) for g in self.gates],
                "interval": float(self.interval),
                "zero_start": bool(self.zero_start),
            }
            # Only refit survivors carry labels/version: a never-refit
            # model stays byte-identical to pre-streaming artifacts
            # (the golden-blob format test pins those bytes), and the
            # loader's defaults reproduce exactly what is omitted here.
            k = self.centroids.shape[0]
            if self.model_version > 0 or not np.array_equal(
                    self.phase_labels, np.arange(k)):
                state["labels"] = [int(x) for x in self.phase_labels]
                state["version"] = int(self.model_version)
            return state

    @classmethod
    def from_trained_state(cls, state: Dict[str, Any]) -> "OnlinePhaseTracker":
        """Inverse of :meth:`trained_state`.

        ``labels``/``version`` are optional (models saved before live
        refits existed default to row-order labels at version 0), so old
        artifacts keep loading.
        """
        try:
            labels = state.get("labels")
            return cls(
                functions=[str(f) for f in state["functions"]],
                centroids=np.asarray(state["centroids"], dtype=float).reshape(
                    len(state["gates"]), len(state["functions"])),
                gates=np.asarray(state["gates"], dtype=float),
                interval=float(state["interval"]),
                zero_start=bool(state.get("zero_start", False)),
                labels=None if labels is None else [int(x) for x in labels],
                version=int(state.get("version", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad trained-tracker state: {exc!r}") from exc

    def runtime_state(self) -> Dict[str, Any]:
        """Mutable stream state (history, differencer, live model), JSON-ready.

        Taken atomically under the tracker lock; pairs with
        :meth:`restore_runtime_state` so a daemon checkpoint can resume a
        stream exactly where classification left off.  When the stream
        has refit itself (or is adaptive), the current model and refit
        machinery ride along — a restored stream keeps its version, its
        stable labels, and its drift window.
        """
        with self._lock:
            history = [
                [t.index, t.phase_id, float(t.distance), t.nearest_phase,
                 t.model_version]
                for t in self.history
            ]
            previous = self._previous
            state: Dict[str, Any] = {"history": history, "previous": None}
            if self.model_version > 0 or self._adaptive is not None:
                state["model"] = {
                    "centroids": [[float(x) for x in row]
                                  for row in self.centroids],
                    "gates": [float(g) for g in self.gates],
                    "labels": [int(x) for x in self.phase_labels],
                    "counts": [float(c) for c in self._counts],
                    "version": int(self.model_version),
                }
            if self._adaptive is not None:
                state["refit"] = {
                    "buffer": [[float(x) for x in row] for row in self._buffer],
                    "drift": self._drift.state(),
                    "next_label": int(self._next_label),
                    "last_refit_index": int(self._last_refit_index),
                    "events": [e.to_obj() for e in self.refit_events],
                }
        if previous is not None:
            state["previous"] = base64.b64encode(
                dumps_gmon(previous)).decode("ascii")
        return state

    def restore_runtime_state(self, state: Dict[str, Any]) -> None:
        """Install stream state captured by :meth:`runtime_state`.

        Accepts both the historical 4-element history rows (pre-version
        checkpoints classify as version 0) and the current 5-element
        form; ``model``/``refit`` sections are optional.
        """
        try:
            history = [
                TrackedInterval(
                    index=int(row[0]), phase_id=int(row[1]),
                    distance=float(row[2]), nearest_phase=int(row[3]),
                    model_version=int(row[4]) if len(row) > 4 else 0)
                for row in state.get("history", [])
            ]
            blob = state.get("previous")
            previous = None
            if blob is not None:
                previous = loads_gmon(base64.b64decode(blob.encode("ascii")))
            model = state.get("model")
            refit = state.get("refit")
            if model is not None:
                k = len(model["gates"])
                centroids = np.asarray(model["centroids"], dtype=float).reshape(
                    k, len(self.functions))
                gates = np.asarray(model["gates"], dtype=float)
                labels = np.asarray([int(x) for x in model["labels"]])
                counts = np.asarray([float(c) for c in
                                     model.get("counts", [1.0] * k)])
                version = int(model.get("version", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad tracker runtime state: {exc!r}") from exc
        with self._lock:
            self.history = history
            self._previous = previous
            self._previous_vec = None
            if model is not None:
                self.centroids = centroids
                self.gates = gates
                self.phase_labels = labels
                self._counts = counts
                self.model_version = version
                self._next_label = (int(labels.max()) + 1 if labels.size
                                    else self._next_label)
            if refit is not None and self._adaptive is not None:
                self._buffer.clear()
                for row in refit.get("buffer", []):
                    self._buffer.append(np.asarray(row, dtype=float))
                self._drift.restore(refit.get("drift", {}))
                self._next_label = max(
                    self._next_label, int(refit.get("next_label", 0)))
                self._last_refit_index = int(refit.get("last_refit_index", 0))
                self._last_refit_time = None  # wall clock doesn't survive restarts
                self.refit_events = [RefitEvent.from_obj(obj)
                                     for obj in refit.get("events", [])]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def phase_sequence(self) -> List[int]:
        with self._lock:
            return [t.phase_id for t in self.history]

    def version_sequence(self) -> List[int]:
        """Model version that classified each interval, history order."""
        with self._lock:
            return [t.model_version for t in self.history]

    def novel_fraction(self) -> float:
        with self._lock:
            if not self.history:
                return 0.0
            return sum(t.is_novel for t in self.history) / len(self.history)

    def phase_counts(self) -> Dict[int, int]:
        """Observed intervals per phase id (NOVEL included as -1)."""
        counts: Dict[int, int] = {}
        for phase_id in self.phase_sequence():
            counts[phase_id] = counts.get(phase_id, 0) + 1
        return counts

    def transitions(self) -> List[Tuple[int, int, int]]:
        """(interval, from_phase, to_phase) for every phase change."""
        out: List[Tuple[int, int, int]] = []
        seq = self.phase_sequence()
        for i in range(1, len(seq)):
            if seq[i] != seq[i - 1]:
                out.append((i, seq[i - 1], seq[i]))
        return out


# ----------------------------------------------------------------------
# cross-stream classification
# ----------------------------------------------------------------------
#: A frozen-model snapshot captured under the tracker lock:
#: (centroids, gates, phase_labels, model_version).
_ModelSnap = Tuple[np.ndarray, np.ndarray, np.ndarray, int]


def _commit_pooled(
    tracker: OnlinePhaseTracker,
    profiles: Sequence[Profile],
    nearest: np.ndarray,
    distance: np.ndarray,
    novel: np.ndarray,
    snap: _ModelSnap,
) -> List[TrackedInterval]:
    """Append pooled classification results to one tracker's history.

    Re-validates under the tracker lock that the model the pooled pass
    computed against is still installed; if a hot swap landed in between
    (``install_model`` on another thread), the stale results are thrown
    away and this stream re-classifies on its own path — correct, just
    not pooled this tick.
    """
    centroids, _gates, labels, version = snap
    with tracker._lock:
        if (tracker.model_version != version
                or tracker.centroids is not centroids):
            return tracker.classify_batch(profiles)
        start = len(tracker.history)
        tracked = [
            TrackedInterval(
                index=start + i,
                phase_id=(NOVEL if novel[i] else int(labels[nearest[i]])),
                distance=float(distance[i]),
                nearest_phase=int(labels[nearest[i]]),
                model_version=version,
            )
            for i in range(len(profiles))
        ]
        tracker.history.extend(tracked)
    return tracked


def classify_across(
    groups: Sequence[Tuple[OnlinePhaseTracker, Sequence[Profile]]],
) -> List[List[TrackedInterval]]:
    """Classify several streams' profile batches in one vectorized pass.

    Returns one result list per input group, order preserved — exactly
    what calling ``tracker.classify_batch(profiles)`` per group would
    return.  Streams whose trackers share an identical *frozen* model
    (same functions, centroids, gates, stable labels, and version — the
    common serving shape: every stream spawned from one template and
    never refit) are pooled into a single ``(n_total, k, d)`` distance
    computation, so a worker tick over N streams costs one NumPy call
    instead of N.  Adaptive trackers mutate their centroids as they
    classify, so they always take their own per-tracker path; model
    hot-swaps racing the pooled pass are caught at commit time and fall
    back likewise.
    """
    results: List[Optional[List[TrackedInterval]]] = [None] * len(groups)
    pooled: Dict[Any, List[Tuple[int, OnlinePhaseTracker,
                                 Sequence[Profile], _ModelSnap]]] = {}
    for i, (tracker, profiles) in enumerate(groups):
        if not profiles or tracker._adaptive is not None:
            results[i] = tracker.classify_batch(profiles)
            continue
        with tracker._lock:
            snap: _ModelSnap = (tracker.centroids, tracker.gates,
                                tracker.phase_labels, tracker.model_version)
        # Non-adaptive trackers never mutate these arrays in place (every
        # swap *replaces* them), so the refs stay valid outside the lock
        # and byte equality is a sound pooling key.
        key = (tuple(tracker.functions), snap[0].shape, snap[0].tobytes(),
               snap[1].tobytes(), snap[2].tobytes(), snap[3])
        pooled.setdefault(key, []).append((i, tracker, profiles, snap))
    for members in pooled.values():
        if len(members) == 1:
            i, tracker, profiles, _snap = members[0]
            results[i] = tracker.classify_batch(profiles)
            continue
        centroids, gates, _labels, _version = members[0][3]
        mat = np.vstack([trk._vectorize_batch(profiles)
                         for _i, trk, profiles, _s in members])
        diffs = mat[:, None, :] - centroids[None, :, :]
        dists = np.linalg.norm(diffs, axis=2)  # (n_total, k)
        nearest = dists.argmin(axis=1)
        distance = dists[np.arange(mat.shape[0]), nearest]
        novel = distance > gates[nearest]
        offset = 0
        for i, tracker, profiles, snap in members:
            rows = slice(offset, offset + len(profiles))
            offset += len(profiles)
            results[i] = _commit_pooled(tracker, profiles, nearest[rows],
                                        distance[rows], novel[rows], snap)
    return [r if r is not None else [] for r in results]
