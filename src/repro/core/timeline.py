"""Phase timeline rendering.

A one-line-per-run visual of *when* each phase is active — the temporal
view the paper's heartbeat figures convey, derived directly from the
interval labels.  Each phase gets a symbol; the strip shows the run's
interval sequence (optionally compressed to a display width).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import AnalysisResult
from repro.util.errors import ValidationError

_SYMBOLS = "0123456789ABCDEFGHJK"
_NOVEL_SYMBOL = "!"
_IDLE_SYMBOL = "."


def phase_strip(
    labels: Sequence[int],
    width: Optional[int] = None,
) -> str:
    """Render a label sequence as a symbol strip.

    Labels < 0 render as ``!`` (novel/unassigned).  With ``width``, the
    sequence is compressed by majority vote per bucket.
    """
    labels = list(labels)
    if not labels:
        return ""
    if width is not None and width > 0 and len(labels) > width:
        edges = np.linspace(0, len(labels), width + 1).astype(int)
        compressed = []
        for a, b in zip(edges[:-1], edges[1:]):
            bucket = labels[a:b] or [labels[min(a, len(labels) - 1)]]
            counts: Dict[int, int] = {}
            for label in bucket:
                counts[label] = counts.get(label, 0) + 1
            compressed.append(max(counts, key=counts.get))
        labels = compressed

    out = []
    for label in labels:
        if label < 0:
            out.append(_NOVEL_SYMBOL)
        elif label < len(_SYMBOLS):
            out.append(_SYMBOLS[label])
        else:
            out.append("?")
    return "".join(out)


def render_timeline(result: AnalysisResult, width: int = 100) -> str:
    """Phase timeline of an analyzed run, with a per-phase legend."""
    strip = phase_strip(result.phase_model.labels.tolist(), width=width)
    lines: List[str] = [
        f"phase timeline ({result.interval_data.n_intervals} intervals of "
        f"{result.interval_data.interval:g}s):",
        "  " + strip,
    ]
    for phase, sites in zip(result.phase_model.phases, result.selection.per_phase):
        symbol = _SYMBOLS[phase.phase_id] if phase.phase_id < len(_SYMBOLS) else "?"
        functions = ", ".join(s.function for s in sites) or "(no site)"
        share = 100.0 * len(phase.interval_indices) / max(
            1, result.interval_data.n_intervals
        )
        lines.append(f"  {symbol} = phase {phase.phase_id} ({share:.1f}%): {functions}")
    return "\n".join(lines)


def run_lengths(labels: Sequence[int]) -> List[tuple]:
    """Compress labels to (phase, length) runs — phase dwell times."""
    out: List[tuple] = []
    for label in labels:
        if out and out[-1][0] == label:
            out[-1] = (label, out[-1][1] + 1)
        else:
            out.append((label, 1))
    return out
