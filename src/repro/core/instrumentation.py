"""Algorithm 1: instrumentation-site identification.

Given the clustered intervals, per-interval function call counts, and
per-phase function *ranks* (fraction of the phase's intervals a function
is active in), select for each phase a small set of functions whose
instrumentation covers the phase:

- intervals are processed closest-to-centroid first, so the most
  representative intervals pick sites first;
- an interval already containing any selected function is covered;
- otherwise the interval's active functions are sorted by call count
  ascending (prefer long-running work over chatty utilities) then rank
  descending, and the head is selected;
- the site is tagged *body* if the function had calls in that interval,
  *loop* if it had self-time with zero calls (still running from an
  earlier invocation);
- selection stops once the selected sites cover the phase's intervals up
  to the coverage threshold (95 % in the paper — outlier intervals are
  skipped rather than chased).

Coverage shares (the tables' Phase % / App % columns) attribute each
covered interval to the earliest-selected site active in it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import IntervalData
from repro.core.model import InstType, Phase, SelectedSite, Site
from repro.core.phases import PhaseModel
from repro.util.errors import ValidationError


def function_ranks(
    data: IntervalData,
    phases: Sequence[Phase],
    active: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-phase function rank matrix, shape ``(n_phases, n_functions)``.

    ``rank[p, f]`` = fraction of phase ``p``'s intervals in which function
    ``f`` has non-zero self-time.  ``active`` lets callers that already
    hold ``data.active()`` skip recomputing it.
    """
    if active is None:
        active = data.active()
    ranks = np.zeros((len(phases), data.n_functions))
    for i, phase in enumerate(phases):
        members = np.asarray(phase.interval_indices, dtype=int)
        if members.size:
            ranks[i] = active[members].mean(axis=0)
    return ranks


@dataclass(frozen=True)
class SiteSelection:
    """The output of Algorithm 1 across all phases."""

    per_phase: Tuple[Tuple[SelectedSite, ...], ...]
    coverage_threshold: float

    def all_sites(self) -> List[SelectedSite]:
        """Every selection row in (phase, selection-order) order."""
        return [s for phase_sites in self.per_phase for s in phase_sites]

    def unique_sites(self) -> List[Site]:
        """Distinct (function, type) sites in first-seen order."""
        seen: Dict[Site, None] = {}
        for selected in self.all_sites():
            seen.setdefault(selected.site, None)
        return list(seen)

    def site_functions_by_phase(self) -> Dict[int, frozenset]:
        """Phase id -> frozenset of selected function names."""
        return {
            pid: frozenset(s.function for s in sites)
            for pid, sites in enumerate(self.per_phase)
        }

    def hb_id_of(self, site: Site) -> int:
        for selected in self.all_sites():
            if selected.site == site:
                return selected.hb_id
        raise ValidationError(f"site {site} was not selected")


def _order_by_centroid_distance(
    features: np.ndarray, phase: Phase
) -> np.ndarray:
    members = np.asarray(phase.interval_indices, dtype=int)
    if phase.centroid is None:
        return members
    deltas = features[members] - phase.centroid[None, :]
    dists = np.einsum("ij,ij->i", deltas, deltas)
    return members[np.argsort(dists, kind="stable")]


def _select_for_phase(
    data: IntervalData,
    features: np.ndarray,
    phase: Phase,
    ranks_row: np.ndarray,
    threshold: float,
    active: np.ndarray,
) -> List[Tuple[Site, int]]:
    """Run Algorithm 1's inner loop; returns sites with covering interval.

    Coverage is tracked incrementally: when a site is selected, the
    members its function is active in are marked covered once, so the
    per-interval loop costs O(1) per already-covered interval instead of
    re-scanning the whole (members x sites) activity block every step.
    """
    members = np.asarray(phase.interval_indices, dtype=int)
    n_phase = members.size
    target = math.ceil(threshold * n_phase)

    order = _order_by_centroid_distance(features, phase)
    selected: List[Tuple[Site, int]] = []
    covered = np.zeros(data.n_intervals, dtype=bool)  # by interval id
    n_covered = 0

    for interval in order:
        if n_covered >= target:
            break
        if covered[interval]:
            continue  # already covered by an existing site
        candidates = np.nonzero(active[interval])[0]
        if candidates.size == 0:
            continue  # an idle interval cannot nominate a site
        # Sort by (calls ascending, rank descending, name) — the paper's
        # line 10: prefer few-call (long-running) and high-rank functions.
        keys = sorted(
            candidates,
            key=lambda f: (int(data.calls[interval, f]), -ranks_row[f], data.functions[f]),
        )
        func = keys[0]
        inst = InstType.BODY if data.calls[interval, func] > 0 else InstType.LOOP
        site = Site(function=data.functions[func], inst_type=inst)
        if all(site != s for s, _ in selected):
            selected.append((site, int(interval)))
            newly = members[active[members, func] & ~covered[members]]
            n_covered += newly.size
            covered[newly] = True
    return selected


def _attribute_coverage(
    data: IntervalData,
    phase: Phase,
    sites: List[Tuple[Site, int]],
    active: np.ndarray,
) -> List[Tuple[Site, Tuple[int, ...]]]:
    """Attribute each phase interval to the earliest-selected active site."""
    members = np.asarray(phase.interval_indices, dtype=int)
    func_index = {name: j for j, name in enumerate(data.functions)}
    assigned = np.full(members.size, -1, dtype=int)  # member -> site position
    for pos, (site, _cover) in enumerate(sites):
        col = func_index[site.function]
        hit = (assigned == -1) & active[members, col]
        assigned[hit] = pos
    out: List[Tuple[Site, Tuple[int, ...]]] = []
    for pos, (site, _cover) in enumerate(sites):
        covered = tuple(int(i) for i in members[assigned == pos])
        out.append((site, covered))
    return out


def select_sites(
    data: IntervalData,
    phase_model: PhaseModel,
    features: Optional[np.ndarray] = None,
    coverage_threshold: float = 0.95,
) -> SiteSelection:
    """Run Algorithm 1 over every phase and compute coverage shares.

    ``features`` must be the matrix the phases were clustered on (used for
    centroid distances); it defaults to the raw self-time matrix.
    """
    if not 0.0 < coverage_threshold <= 1.0:
        raise ValidationError("coverage threshold must be in (0, 1]")
    if features is None:
        features = data.self_time
    features = np.asarray(features, dtype=float)
    if features.shape[0] != data.n_intervals:
        raise ValidationError("features row count must match interval count")

    active = data.active()
    ranks = function_ranks(data, phase_model.phases, active=active)
    total_intervals = data.n_intervals

    # First pass: run the greedy selection per phase.
    raw: List[List[Tuple[Site, int]]] = []
    for phase in phase_model.phases:
        raw.append(
            _select_for_phase(data, features, phase, ranks[phase.phase_id],
                              coverage_threshold, active)
        )

    # Assign heartbeat IDs to unique (function, type) sites in discovery
    # order — repeated sites keep their ID across phases (paper numbering).
    hb_ids: Dict[Site, int] = {}
    for phase_sites in raw:
        for site, _ in phase_sites:
            if site not in hb_ids:
                hb_ids[site] = len(hb_ids) + 1

    per_phase: List[Tuple[SelectedSite, ...]] = []
    for phase, phase_sites in zip(phase_model.phases, raw):
        n_phase = max(1, len(phase.interval_indices))
        rows: List[SelectedSite] = []
        for site, covered in _attribute_coverage(data, phase, phase_sites, active):
            rows.append(
                SelectedSite(
                    site=site,
                    phase_id=phase.phase_id,
                    hb_id=hb_ids[site],
                    phase_pct=100.0 * len(covered) / n_phase,
                    app_pct=100.0 * len(covered) / max(1, total_intervals),
                    covered_intervals=covered,
                )
            )
        per_phase.append(tuple(rows))

    return SiteSelection(per_phase=tuple(per_phase), coverage_threshold=coverage_threshold)
