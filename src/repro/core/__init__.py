"""The paper's primary contribution: phase detection and site selection.

Pipeline (Section V of the paper):

1. :mod:`repro.core.intervals` — subtract successive cumulative gmon
   snapshots into *interval profiles* (per-function self-time and call
   counts per interval);
2. :mod:`repro.core.features` — build the clustering feature matrix
   (default: the gprof 'self' time tuple);
3. :mod:`repro.core.kmeans` / :mod:`repro.core.kselect` — from-scratch
   k-means for k = 1..8 with elbow (and silhouette) selection;
4. :mod:`repro.core.phases` — interpret clusters as phases;
5. :mod:`repro.core.instrumentation` — Algorithm 1: greedy selection of
   body/loop instrumentation sites per phase with a coverage threshold;
6. :mod:`repro.core.pipeline` — the one-call driver tying it together.
"""

from repro.core.model import InstType, Site, SelectedSite, Phase
from repro.core.intervals import IntervalData, intervals_from_snapshots
from repro.core.features import FeatureConfig, build_features
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.kselect import KSelection, choose_k, wcss_curve, silhouette_score
from repro.core.phases import PhaseModel, detect_phases
from repro.core.instrumentation import SiteSelection, select_sites, function_ranks
from repro.core.pipeline import AnalysisConfig, AnalysisResult, analyze_snapshots
from repro.core.postprocess import MergedPhase, MergedPhaseModel, merge_equivalent_phases
from repro.core.callgraph_lift import LiftSuggestion, suggest_lifts
from repro.core.outliers import OutlierReport, analyze_outliers
from repro.core.online import NOVEL, OnlinePhaseTracker, TrackedInterval
from repro.core.incremental import (
    AdaptiveConfig,
    DriftConfig,
    DriftDetector,
    IncrementalAnalyzer,
    IncrementalUpdate,
    RefitEvent,
    bounded_resweep,
    calibrate_gates,
    match_phase_labels,
)
from repro.core.timeline import phase_strip, render_timeline

__all__ = [
    "InstType",
    "Site",
    "SelectedSite",
    "Phase",
    "IntervalData",
    "intervals_from_snapshots",
    "FeatureConfig",
    "build_features",
    "KMeansResult",
    "kmeans",
    "KSelection",
    "choose_k",
    "wcss_curve",
    "silhouette_score",
    "PhaseModel",
    "detect_phases",
    "SiteSelection",
    "select_sites",
    "function_ranks",
    "AnalysisConfig",
    "AnalysisResult",
    "analyze_snapshots",
    "MergedPhase",
    "MergedPhaseModel",
    "merge_equivalent_phases",
    "LiftSuggestion",
    "suggest_lifts",
    "OutlierReport",
    "analyze_outliers",
    "NOVEL",
    "OnlinePhaseTracker",
    "TrackedInterval",
    "AdaptiveConfig",
    "DriftConfig",
    "DriftDetector",
    "IncrementalAnalyzer",
    "IncrementalUpdate",
    "RefitEvent",
    "bounded_resweep",
    "calibrate_gates",
    "match_phase_labels",
    "phase_strip",
    "render_timeline",
]
