"""The end-to-end analysis driver (Section V of the paper).

``analyze_snapshots`` takes the ordered cumulative gmon snapshots IncProf
collected for one rank and returns everything the evaluation consumes:
interval data, the k sweep, the phase model, and the selected
instrumentation sites with coverage shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import FeatureConfig, build_features
from repro.core.instrumentation import SiteSelection, select_sites
from repro.core.intervals import (
    IntervalData,
    intervals_from_flat_profiles,
)
from repro.core.kselect import DEFAULT_ELBOW_THRESHOLD, DEFAULT_KMAX
from repro.core.model import SelectedSite, Site
from repro.core.phases import PhaseModel, detect_phases
from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData
from repro.gprof.reports import parse_flat_profile, render_gprof_report
from repro.util.errors import ProfileDataError


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the phase-detection pipeline (paper defaults)."""

    kmax: int = DEFAULT_KMAX
    kselect_method: str = "elbow"
    kselect_threshold: float = DEFAULT_ELBOW_THRESHOLD
    coverage_threshold: float = 0.95
    feature: FeatureConfig = field(default_factory=FeatureConfig)
    seed: int = 0
    n_init: int = 8
    drop_short_final: bool = True
    min_final_fraction: float = 0.5
    drop_inactive_functions: bool = True
    via_text_reports: bool = False
    """Round-trip snapshots through gprof text reports before analysis —
    the original tool's parse path (costs the reports' 2-decimal precision)."""


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the phase-detection pipeline produces."""

    interval_data: IntervalData
    features: np.ndarray
    phase_model: PhaseModel
    selection: SiteSelection
    config: AnalysisConfig

    @property
    def n_phases(self) -> int:
        return self.phase_model.n_phases

    def sites(self) -> List[SelectedSite]:
        return self.selection.all_sites()

    def unique_sites(self) -> List[Site]:
        return self.selection.unique_sites()

    def site_labels(self) -> Dict[int, str]:
        """Heartbeat id -> function name, for plotting legends."""
        return {s.hb_id: s.function for s in self.sites()}

    def phase_fraction(self, phase_id: int) -> float:
        return self.phase_model.phase(phase_id).fraction_of(self.interval_data.n_intervals)


def analyze_intervals(
    data: IntervalData,
    config: AnalysisConfig = AnalysisConfig(),
    workers: Optional[int] = None,
) -> AnalysisResult:
    """Run clustering + Algorithm 1 on pre-built interval data.

    ``workers`` > 1 spreads the k sweep over a process pool without
    changing any result (see :func:`repro.core.phases.detect_phases`);
    it is a runtime knob, not part of ``config``, so cached or stored
    results stay comparable across worker counts.
    """
    if config.drop_inactive_functions:
        data = data.drop_inactive_functions()
    features = build_features(data, config.feature)
    phase_model = detect_phases(
        features,
        kmax=config.kmax,
        method=config.kselect_method,
        seed=config.seed,
        n_init=config.n_init,
        threshold=config.kselect_threshold,
        workers=workers,
    )
    selection = select_sites(
        data, phase_model, features=features, coverage_threshold=config.coverage_threshold
    )
    return AnalysisResult(
        interval_data=data,
        features=features,
        phase_model=phase_model,
        selection=selection,
        config=config,
    )


def analyze_snapshots(
    snapshots: Sequence[GmonData],
    config: AnalysisConfig = AnalysisConfig(),
    workers: Optional[int] = None,
) -> AnalysisResult:
    """Full pipeline from IncProf's cumulative snapshots.

    A thin driver over the incremental engine: every snapshot is fed
    through :class:`~repro.core.incremental.IncrementalAnalyzer` (with
    live tracking off — batch analysis needs no running model) and the
    result is whatever ``finalize`` assembles, which is identical to the
    historical all-at-once implementation because both paths share
    :func:`~repro.core.intervals.assemble_interval_data`.

    With ``config.via_text_reports`` the snapshots are first rendered to
    gprof-style text and re-parsed, exercising the exact data path of the
    original tool.
    """
    if config.via_text_reports:
        profiles: List[FlatProfile] = []
        for snap in snapshots:
            profile = parse_flat_profile(render_gprof_report(snap, include_callgraph=False))
            profile.timestamp = snap.timestamp
            profiles.append(profile)
        interval = snapshots[0].timestamp if snapshots[0].timestamp > 0 else 1.0
        data = intervals_from_flat_profiles(profiles, interval=interval)
        return analyze_intervals(data, config, workers=workers)
    if len(snapshots) < 2:
        raise ProfileDataError("need at least two snapshots to form an interval")
    from repro.core.incremental import IncrementalAnalyzer  # lazy: avoids cycle

    engine = IncrementalAnalyzer(config, track=False)
    for snap in snapshots:
        engine.observe(snap)
    return engine.finalize(workers=workers)
