"""Rendering analysis results in the paper's table layout.

Tables II-VI list, per phase, the discovered site function with its
heartbeat ID, Phase %, App %, and instrumentation type, followed by the
manual instrumentation sites chosen by inspection.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.model import Site
from repro.core.pipeline import AnalysisResult
from repro.util.tables import Table


def sites_table(
    result: AnalysisResult,
    title: str = "Instrumented Functions",
    manual_sites: Optional[Sequence[Site]] = None,
) -> Table:
    """Build the paper-style per-app instrumentation table."""
    table = Table(
        headers=["Phase ID", "HB ID", "Discovered Site Function", "Phase %", "App %", "Inst. Type"],
        title=title,
    )
    for phase_sites in result.selection.per_phase:
        for selected in phase_sites:
            table.add_row(
                selected.phase_id,
                selected.hb_id,
                selected.function,
                selected.phase_pct,
                selected.app_pct,
                selected.inst_type.value,
            )
    if manual_sites:
        table.add_separator("Manual Instrumentation Sites")
        for site in manual_sites:
            table.add_row("", "", site.function, None, None, site.inst_type.value)
    return table


def phases_summary_table(result: AnalysisResult, title: str = "Phases") -> Table:
    """Per-phase summary: size, share of run, and site count."""
    table = Table(headers=["Phase ID", "Intervals", "Run %", "Sites"], title=title)
    n = result.interval_data.n_intervals
    for phase, sites in zip(result.phase_model.phases, result.selection.per_phase):
        table.add_row(
            phase.phase_id,
            len(phase.interval_indices),
            100.0 * len(phase.interval_indices) / max(1, n),
            len(sites),
        )
    return table


def kcurve_table(result: AnalysisResult, title: str = "k selection") -> Table:
    """The WCSS (or silhouette) sweep behind the chosen k."""
    selection = result.phase_model.kselection
    table = Table(headers=["k", "WCSS", "score", "chosen"], title=title, float_fmt=".4g")
    for k in sorted(selection.results):
        table.add_row(
            k,
            selection.results[k].inertia,
            selection.scores.get(k),
            "<--" if k == selection.chosen_k else "",
        )
    return table


def render_full_report(
    result: AnalysisResult,
    app_name: str,
    manual_sites: Optional[Iterable[Site]] = None,
) -> str:
    """Render a complete textual analysis report for one application."""
    parts = [
        sites_table(
            result,
            title=f"{app_name.upper()} INSTRUMENTED FUNCTIONS",
            manual_sites=list(manual_sites) if manual_sites else None,
        ).render(),
        "",
        phases_summary_table(result, title=f"{app_name}: phases").render(),
        "",
        kcurve_table(result, title=f"{app_name}: k-means sweep").render(),
    ]
    return "\n".join(parts)
