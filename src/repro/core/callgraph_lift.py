"""Call-graph-aware site lifting.

The paper's MiniFE discussion: discovery selected the low-level
``sum_in_symm_elem_matrix`` while the authors' manual choice was its
caller ``perform_element_loop`` — "extending the discovery analysis to
use the call-graph structure might be a way to improve it and select our
site, which is higher up in the call graph."  Likewise Graph500's init
phase surfaced ``make_one_edge`` under ``generate_kronecker_range``.

This module implements that extension as a *suggestion* pass: for each
selected site, walk the per-interval call arcs upward and propose a
caller when

1. the caller is the **dominant parent** — it accounts for at least
   ``dominance`` of all calls into the site within the phase's covered
   intervals;
2. the caller is **coextensive** — it calls the site in at least
   ``coverage`` of the site's covered intervals (so instrumenting the
   caller still covers the phase);
3. the caller is **coarser** — its own call count per interval is lower
   than the site's (fewer, longer activations: a better heartbeat);
4. the caller is **confined** to the phase — its calling activity across
   the whole run lies (almost) entirely inside the phase's intervals.
   This is the guard that rejects ``main`` and Gadget2's
   ``compute_accelerations``: a caller active in *every* phase cannot
   distinguish any of them, which is precisely why the paper's discovery
   beats those manual sites.

Suggestions never modify the original selection; they are reported next
to it (the CLI/benches show both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.model import SelectedSite
from repro.core.intervals import IntervalData
from repro.core.pipeline import AnalysisResult
from repro.simulate.engine import SPONTANEOUS
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class LiftSuggestion:
    """A proposed replacement of a discovered site by its caller."""

    original: SelectedSite
    caller: str
    dominance: float  # fraction of the site's calls coming from the caller
    coverage: float  # fraction of covered intervals where the caller calls it
    call_ratio: float  # caller calls per site call (< 1: coarser)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.original.function} -> {self.caller} "
                f"(dominance {self.dominance:.0%}, coverage {self.coverage:.0%})")


def _arc_stats(
    data: IntervalData, intervals: Tuple[int, ...], callee: str
) -> Tuple[Dict[str, int], Dict[str, int], int]:
    """Per-caller call counts, per-caller active-interval counts, total calls."""
    caller_calls: Dict[str, int] = {}
    caller_intervals: Dict[str, int] = {}
    total = 0
    for interval in intervals:
        gmon = data.interval_gmons[interval]
        for (caller, target), count in gmon.arcs.items():
            if target != callee or caller == SPONTANEOUS:
                continue
            caller_calls[caller] = caller_calls.get(caller, 0) + count
            caller_intervals[caller] = caller_intervals.get(caller, 0) + 1
            total += count
    return caller_calls, caller_intervals, total


def _caller_activity_intervals(data: IntervalData, caller: str) -> List[int]:
    """Intervals in which ``caller`` makes any call at all."""
    active: List[int] = []
    for interval, gmon in enumerate(data.interval_gmons):
        if any(src == caller for (src, _dst) in gmon.arcs):
            active.append(interval)
    return active


def suggest_lifts(
    result: AnalysisResult,
    dominance: float = 0.95,
    coverage: float = 0.9,
    confinement: float = 0.8,
) -> List[LiftSuggestion]:
    """Propose call-graph lifts for every selected site (see module doc)."""
    data = result.interval_data
    if data.interval_gmons is None:
        raise ValidationError(
            "call-graph lifting needs interval gmon deltas "
            "(run the analysis with keep_gmons enabled)"
        )
    if not 0 < dominance <= 1 or not 0 < coverage <= 1 or not 0 < confinement <= 1:
        raise ValidationError("dominance, coverage, confinement must be in (0, 1]")

    suggestions: List[LiftSuggestion] = []
    for selected in result.selection.all_sites():
        covered = selected.covered_intervals
        if not covered:
            continue
        caller_calls, caller_intervals, total_calls = _arc_stats(
            data, covered, selected.function
        )
        if total_calls == 0 or not caller_calls:
            continue  # loop-type site with no calls in its intervals
        best = max(caller_calls, key=caller_calls.get)
        dom = caller_calls[best] / total_calls
        cov = caller_intervals[best] / len(covered)
        if dom < dominance or cov < coverage:
            continue
        # The caller must itself be called less often than the site
        # (otherwise the lift gains nothing).
        # Never lift to the program root: a function nobody calls (except
        # <spontaneous>) is live for the entire run and cannot mark phases.
        root_only = all(
            src == SPONTANEOUS
            for gmon in data.interval_gmons
            for (src, dst) in gmon.arcs
            if dst == best
        )
        if root_only:
            continue
        # The caller's calling activity must be confined to this phase.
        activity = _caller_activity_intervals(data, best)
        covered_set = set(covered)
        confined = (sum(1 for i in activity if i in covered_set) / len(activity)
                    if activity else 0.0)
        if confined < confinement:
            continue
        # caller_total == 0 means the caller was invoked before the phase
        # began and is still live — the ideal coarse site.
        _, _, caller_total = _arc_stats(data, covered, best)
        ratio = caller_total / total_calls if total_calls else 1.0
        if ratio < 1.0:
            suggestions.append(
                LiftSuggestion(
                    original=selected,
                    caller=best,
                    dominance=dom,
                    coverage=cov,
                    call_ratio=ratio,
                )
            )
    return suggestions


def lifted_site_names(result: AnalysisResult, **kwargs) -> Dict[str, str]:
    """Convenience map: original function -> suggested caller."""
    return {s.original.function: s.caller for s in suggest_lifts(result, **kwargs)}
