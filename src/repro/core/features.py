"""Feature matrices for interval clustering.

The paper clusters intervals on the tuple of per-function gprof 'self'
times, and reports that adding other profile data (call counts, children
time) did not improve — and sometimes worsened — the results.  All the
variants are implemented here so that finding can be reproduced as an
ablation (``benchmarks/bench_ablation_features.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.intervals import IntervalData
from repro.gprof.callgraph import CallGraphProfile
from repro.util.errors import ValidationError

SOURCES = ("self_time", "self_plus_calls", "calls", "self_plus_children")
NORMALIZATIONS = (None, "l2", "minmax", "zscore")


@dataclass(frozen=True)
class FeatureConfig:
    """Which profile attributes feed the clustering.

    ``source``:
      - ``self_time`` — the paper's choice: per-function self seconds;
      - ``self_plus_calls`` — self time with call-count columns appended
        (calls scaled to comparable magnitude);
      - ``calls`` — call counts only;
      - ``self_plus_children`` — self time plus per-interval propagated
        children time (requires interval gmon deltas).

    ``normalize``: optional per-column scaling applied after assembly.
    """

    source: str = "self_time"
    normalize: str = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValidationError(f"unknown feature source {self.source!r}")
        if self.normalize not in NORMALIZATIONS:
            raise ValidationError(f"unknown normalization {self.normalize!r}")


def _children_matrix(data: IntervalData) -> np.ndarray:
    if data.interval_gmons is None:
        raise ValidationError("self_plus_children requires interval gmon deltas")
    out = np.zeros_like(data.self_time)
    index = {name: j for j, name in enumerate(data.functions)}
    for i, gmon in enumerate(data.interval_gmons):
        profile = CallGraphProfile.from_gmon(gmon)
        for name, entry in profile.entries.items():
            j = index.get(name)
            if j is not None:
                out[i, j] = entry.children_seconds
    return out


def _normalize(matrix: np.ndarray, how: str) -> np.ndarray:
    if how is None:
        return matrix
    if how == "l2":
        norms = np.linalg.norm(matrix, axis=0)
        norms[norms == 0] = 1.0
        return matrix / norms
    if how == "minmax":
        lo = matrix.min(axis=0)
        span = matrix.max(axis=0) - lo
        span[span == 0] = 1.0
        return (matrix - lo) / span
    if how == "zscore":
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        return (matrix - mean) / std
    raise ValidationError(f"unknown normalization {how!r}")


def build_features(data: IntervalData, config: FeatureConfig = FeatureConfig()) -> np.ndarray:
    """Assemble the ``(n_intervals, n_attributes)`` clustering matrix."""
    if config.source == "self_time":
        matrix = data.self_time.copy()
    elif config.source == "calls":
        matrix = data.calls.astype(float)
    elif config.source == "self_plus_calls":
        # Scale call counts so their magnitude is comparable to seconds;
        # otherwise huge call counts (batched leaf calls) dominate distance.
        calls = data.calls.astype(float)
        peak = calls.max()
        scale = (data.self_time.max() / peak) if peak > 0 else 1.0
        matrix = np.hstack([data.self_time, calls * scale])
    elif config.source == "self_plus_children":
        matrix = np.hstack([data.self_time, _children_matrix(data)])
    else:  # pragma: no cover - guarded by FeatureConfig
        raise ValidationError(config.source)
    return _normalize(matrix, config.normalize)


def feature_names(data: IntervalData, config: FeatureConfig = FeatureConfig()) -> List[str]:
    """Column labels matching :func:`build_features` output."""
    if config.source in ("self_time", "calls"):
        suffix = "" if config.source == "self_time" else ":calls"
        return [f + suffix for f in data.functions]
    extra = ":calls" if config.source == "self_plus_calls" else ":children"
    return list(data.functions) + [f + extra for f in data.functions]
