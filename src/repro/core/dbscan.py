"""DBSCAN, for the clustering-choice ablation.

The paper reports experimenting with DBSCAN and seeing no improvement —
phases should be *similar* intervals, so distance-based k-means fits the
problem better than density-chaining.  This minimal from-scratch DBSCAN
lets the ablation bench reproduce that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError

NOISE = -1


@dataclass(frozen=True)
class DBSCANResult:
    """Labels per point; ``-1`` marks noise points."""

    labels: np.ndarray
    n_clusters: int
    eps: float
    min_samples: int

    def cluster_indices(self, cluster: int) -> np.ndarray:
        return np.nonzero(self.labels == cluster)[0]


def dbscan(points: np.ndarray, eps: float, min_samples: int = 3) -> DBSCANResult:
    """Classic DBSCAN over Euclidean distance.

    O(n^2) neighbourhood computation — interval counts are hundreds, not
    millions, so clarity wins over spatial indexing here.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValidationError("points must be 2-D")
    if eps <= 0:
        raise ValidationError("eps must be positive")
    if min_samples < 1:
        raise ValidationError("min_samples must be >= 1")

    n = points.shape[0]
    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    neighbours = [np.nonzero(dists[i] <= eps)[0] for i in range(n)]
    core = np.array([len(nb) >= min_samples for nb in neighbours])

    labels = np.full(n, NOISE, dtype=int)
    cluster = 0
    for i in range(n):
        if labels[i] != NOISE or not core[i]:
            continue
        # Breadth-first expansion from a fresh core point.
        labels[i] = cluster
        frontier = list(neighbours[i])
        while frontier:
            j = frontier.pop()
            if labels[j] == NOISE:
                labels[j] = cluster
                if core[j]:
                    frontier.extend(k for k in neighbours[j] if labels[k] == NOISE)
        cluster += 1

    return DBSCANResult(labels=labels, n_clusters=cluster, eps=eps, min_samples=min_samples)


def suggest_eps(points: np.ndarray, quantile: float = 0.25) -> float:
    """A workable eps: the given quantile of nearest-neighbour distances."""
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n < 2:
        raise ValidationError("need at least two points")
    diffs = points[:, None, :] - points[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    np.fill_diagonal(dists, np.inf)
    nearest = dists.min(axis=1)
    eps = float(np.quantile(nearest, quantile))
    if eps <= 0:
        positive = nearest[nearest > 0]
        eps = float(positive.min()) if positive.size else 1.0
    return eps
